#!/usr/bin/env python3
"""Load balancing by migration: workstation owners come back, work moves.

A Monte Carlo farm (the §4.4 "easily migrated" workload) runs across
workstations whose owners come and go (stochastic busy/idle load). The
load balancer watches background load and migrates VCE work off machines
whose owners return, using the cheapest eligible §4.4 migration scheme
(dump between homogeneous workstations, checkpoint otherwise).

Run:  python examples/monte_carlo_migration.py
"""

from repro import VCEConfig, VirtualComputingEnvironment, workstation_cluster
from repro.loadbalance import MigrateOnLoadPolicy
from repro.workloads import build_monte_carlo_graph


def main() -> None:
    machines = workstation_cluster(
        8,
        # owners: idle ~60s, busy ~40s at 95% CPU
        stochastic_load=(60.0, 40.0, 0.95),
        seed=7,
    )
    vce = VirtualComputingEnvironment(machines, VCEConfig(seed=7)).boot()
    vce.enable_load_balancing(
        MigrateOnLoadPolicy(vce.migration), busy_threshold=0.5, interval=1.0
    )

    graph = build_monte_carlo_graph(
        workers=4, samples_per_worker=200_000, batches=20, work_per_batch=4.0
    )
    run = vce.submit(graph)
    vce.run_to_completion(run, timeout=2_000.0)

    print(f"run state: {run.state.value}")
    print(f"pi estimate: {run.app.results('worker')[0]:.4f}")
    print(f"makespan: {run.app.makespan:.1f}s\n")

    metrics = vce.metrics()
    migrations = metrics.migrations()
    print(f"{len(migrations)} migrations performed:")
    for stat in migrations:
        print(f"  {stat.scheme:<11} {stat.src} -> {stat.dst}  "
              f"latency {stat.latency:.2f}s")

    print("\nplacement history per worker (machine after each move):")
    for rank in range(4):
        record = run.app.record("worker", rank)
        print(f"  worker[{rank}]: {' -> '.join(record.placements)}")

    spans = metrics.suspension_spans()
    total_frozen = sum(spans)
    print(f"\n(workers were frozen only during dump transfers: "
          f"{total_frozen:.1f}s total across {len(spans)} freezes — "
          "contrast with the suspend-until-idle policy in "
          "benchmarks/bench_e6_ripple.py)")


if __name__ == "__main__":
    main()
