#!/usr/bin/env python3
"""Quickstart: boot a VCE, run an application, read the results.

Builds an 8-workstation virtual computer, develops a small application
through the SDM (problem specification → design stage → coding level),
submits it through the bidding scheduler, and prints what happened.

Run:  python examples/quickstart.py
"""

from repro import VirtualComputingEnvironment, workstation_cluster
from repro.sdm import SoftwareDevelopmentModule, SourceModule
from repro.vmpi import Compute, Recv, Send


def main() -> None:
    # --- 1. stand up the virtual computer --------------------------------
    vce = VirtualComputingEnvironment(workstation_cluster(8)).boot()
    print(f"booted: {len(vce.daemons)} scheduler daemons formed "
          f"{len(vce.directory.classes())} machine-class group(s)")

    # --- 2. develop an application through the SDM ------------------------
    # Problem specification layer: tasks + flow.
    sdm = SoftwareDevelopmentModule()
    spec = (
        sdm.specification("demo")
        .task("produce", "generate a dataset", work=5.0)
        .task("crunch", "process the dataset in parallel", work=10.0, instances=3)
        .task("report", "summarize", work=1.0, local=True)
        .flow("produce", "crunch", volume=1_000_000)
        .flow("crunch", "report", volume=10_000)
    )

    # Coding level: attach architecture-independent programs. Programs are
    # generators yielding vMPI syscalls.
    def produce(ctx):
        yield Compute(5.0)
        return "dataset-v1"

    def crunch(ctx):
        yield Compute(10.0)
        # each rank reports its share to rank 0, which combines
        if ctx.rank == 0:
            shares = [10.0]
            for _ in range(ctx.size - 1):
                _, share = yield Recv()
                shares.append(share)
            return sum(shares)
        yield Send(dst=0, data=10.0)
        return None

    def report(ctx):
        yield Compute(1.0)
        return "report written"

    sdm.coding.implement("produce", SourceModule("py", produce))
    sdm.coding.implement("crunch", SourceModule("py", crunch))
    sdm.coding.implement("report", SourceModule("py", report))

    graph = sdm.develop(spec)  # design stage classifies, coding attaches
    for node in graph:
        print(f"  task {node.name:<8} class={node.problem_class.value:<9} "
              f"instances={node.instances}")

    # --- 3. submit: bidding, placement, execution --------------------------
    run = vce.submit(graph)
    vce.run_to_completion(run)

    print(f"\nrun state: {run.state.value}")
    print(f"allocation latency: {run.allocation_latency:.3f}s "
          f"(request -> machines allocated)")
    for (task, rank), machine in sorted(run.placement.assignments.items()):
        print(f"  {task}[{rank}] ran on {machine}")
    print(f"crunch combined total: {run.app.results('crunch')[0]}")
    print(f"makespan: {run.app.makespan:.2f} simulated seconds")

    # --- 4. metrics --------------------------------------------------------
    metrics = vce.metrics()
    totals = metrics.message_totals()
    print(f"network: {totals['sent']} messages, {totals['bytes']:,} bytes")

    # --- 5. where did the makespan go? ------------------------------------
    # Every record on the app's causal path is trace-tagged; rebuild the
    # span tree and attribute the critical path (docs/OBSERVABILITY.md).
    from repro.trace import TraceAssembler, critical_path

    trace = TraceAssembler(vce.sim.log).assemble()[0]
    path = critical_path(trace)
    print("\ncritical path (sums to the makespan):")
    for kind, seconds in sorted(path.by_kind().items(), key=lambda kv: -kv[1]):
        print(f"  {kind:<11} {seconds:8.3f}s")
    print(f"  {'total':<11} {path.total:8.3f}s")


if __name__ == "__main__":
    main()
