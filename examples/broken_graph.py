"""A deliberately mis-wired application for the static verifier to reject.

Run the verifier on it::

    python -m repro lint examples/broken_graph.py

Expected findings (see docs/ANALYSIS.md for the rule catalog):

- G001 cycle: prep -> simulate -> render -> prep can never start — every
  task waits on another; without the verifier this surfaces only at
  runtime, deep inside the execution program's topological dispatch.
- G020 infeasible-class: ``simulate`` demands a terabyte of memory, which
  no machine class in the default cluster offers — anticipatory
  compilation and bidding are doomed before they begin.
- G004 orphan-task / G012 lone-synchronous: ``probe`` is wired to
  nothing, yet claims SYNCHRONOUS semantics with a single instance and
  no peer group.

``VCE.run(verify="strict")`` refuses to dispatch this graph;
``verify="warn"`` dispatches it anyway and logs the findings as
``verify.finding`` events (and the run then fails at runtime, which is
exactly the late failure the verifier exists to pre-empt).
"""

from __future__ import annotations

from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass, TaskGraph
from repro.vmpi.api import Compute


def _program(ctx):
    yield Compute(5.0)
    return "done"


def build_graph() -> TaskGraph:
    spec = ProblemSpecification("broken")
    spec.task("prep", "stage inputs", work=5)
    spec.task("simulate", "run the model", work=50, memory_mb=1_000_000)
    spec.task("render", "draw the result", work=5)
    spec.task("probe", "sample state", work=1)
    # the seeded cycle: each stage "depends" on the next run's output
    spec.flow("prep", "simulate", volume=1_000)
    spec.flow("simulate", "render", volume=1_000)
    spec.flow("render", "prep", volume=1_000)

    # NOTE: spec.build() would already raise on the cycle; the point here
    # is a graph that *reaches* the verifier, as one built by a buggy
    # generator or hand-edited description would.
    graph = spec.graph
    for node in graph:
        node.problem_class = (
            ProblemClass.SYNCHRONOUS if node.name == "probe" else ProblemClass.ASYNCHRONOUS
        )
        node.language = "py"
        node.program = _program
    return graph


if __name__ == "__main__":  # pragma: no cover - illustrative only
    from repro.analysis import verify_graph

    print(verify_graph(build_graph()).render_text())
