#!/usr/bin/env python3
"""The paper's §5 weather-forecasting application, end to end.

Feeds the *exact script from the paper* to the VCE:

    ASYNC 2 "/apps/snow/collector.vce"
    WORKSTATION 1 "/apps/snow/usercollect.vce"
    SYNC 1 "/apps/snow/predictor.vce"
    LOCAL "/apps/snow/display.vce"

on the paper's "typical heterogeneous environment" (a workstation group, a
MIMD group and a SIMD group), then walks through what the runtime did:
which group leader fielded each request, which machines won the bids, and
how the forecast flowed to the user's display.

Run:  python examples/weather_forecast.py
"""

from repro import VirtualComputingEnvironment, heterogeneous_cluster
from repro.workloads import WEATHER_SCRIPT, weather_programs


def main() -> None:
    vce = VirtualComputingEnvironment(heterogeneous_cluster(n_workstations=6)).boot()
    print("machine-class groups on line:")
    for cls in vce.directory.classes():
        leader = vce.directory.leader(cls)
        print(f"  {cls.value:<12} {vce.directory.group_size(cls)} machines, "
              f"leader on {leader.host}")

    print("\napplication script (verbatim from the paper):")
    for line in WEATHER_SCRIPT.strip().splitlines():
        print(f"  {line}")

    run = vce.run_script(
        WEATHER_SCRIPT,
        weather_programs(predict_work=200.0),
        works={"collector": 20, "usercollect": 10, "predictor": 200, "display": 2},
        name="snow",
    )
    vce.run_to_completion(run)

    print(f"\nrun state: {run.state.value}")
    print("placement decided by the bidding protocol:")
    for (task, rank), machine in sorted(run.placement.assignments.items()):
        print(f"  {task}[{rank}] -> {machine}")

    app = run.app
    print(f"\ncollector results: {app.results('collector')}")
    print(f"predictor result:  {app.results('predictor')[0]}")
    print(f"display result:    {app.results('display')[0]}")
    print(f"makespan: {app.makespan:.1f} simulated seconds")

    # scheduler's-eye view from the event log
    log = vce.sim.log
    print(f"\nbidding traffic: {log.count('sched.request')} requests led, "
          f"{sum(r.get('bids', 0) for r in log.records(category='sched.alloc'))} bids accepted")
    checkpoints = log.count("task.checkpoint")
    print(f"predictor wrote {checkpoints} checkpoints while running "
          "(ready for §4.4 checkpoint migration)")


if __name__ == "__main__":
    main()
