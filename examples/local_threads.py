#!/usr/bin/env python3
"""Real execution: the LocalBackend runs actual Python on worker threads.

Everything else in this repository executes *modelled* work on the
simulator; the LocalBackend executes *real* callables — here a blocked
matrix multiply fanned across four "machines" (threads), with the same
task-graph/placement machinery deciding what runs where and when.

Run:  python examples/local_threads.py
"""

import time

import numpy as np

from repro.runtime import LocalBackend, round_robin_local_placement
from repro.sdm import ProblemSpecification

N = 600          # matrix size
BLOCKS = 4       # row-block parallelism


def main() -> None:
    rng = np.random.default_rng(7)
    a = rng.random((N, N))
    b = rng.random((N, N))

    spec = (
        ProblemSpecification("matmul")
        .task("multiply", "one row block of A @ B", instances=BLOCKS)
        .task("assemble", "stack the blocks and verify")
    )
    spec.flow("multiply", "assemble")
    graph = spec.build()

    rows = N // BLOCKS

    def multiply(ctx):
        lo, hi = ctx.rank * rows, (ctx.rank + 1) * rows
        started = time.perf_counter()
        block = a[lo:hi] @ b
        return {"rank": ctx.rank, "block": block,
                "machine": ctx.machine,
                "seconds": time.perf_counter() - started}

    def assemble(ctx):
        parts = sorted(ctx.inputs["multiply"], key=lambda p: p["rank"])
        product = np.vstack([p["block"] for p in parts])
        max_err = float(np.abs(product - a @ b).max())
        return {"shape": product.shape, "max_err": max_err,
                "workers": [(p["rank"], p["machine"], round(p["seconds"], 3))
                            for p in parts]}

    machines = [f"cpu{i}" for i in range(BLOCKS)]
    with LocalBackend(machines) as backend:
        t0 = time.perf_counter()
        results = backend.run(
            graph,
            round_robin_local_placement(graph, machines),
            {"multiply": multiply, "assemble": assemble},
            timeout=120.0,
        )
        elapsed = time.perf_counter() - t0

    summary = results["assemble"][0]
    print(f"computed {summary['shape']} product in {elapsed:.2f}s wall")
    print(f"max error vs direct A@B: {summary['max_err']:.2e}")
    print("per-block execution:")
    for rank, machine, seconds in summary["workers"]:
        print(f"  block {rank} on {machine}: {seconds:.3f}s")
    print("\n(the same TaskGraph/Placement APIs drive both the simulator "
          "and this real-thread backend)")


if __name__ == "__main__":
    main()
