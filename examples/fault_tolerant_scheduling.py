#!/usr/bin/env python3
"""Group-leader failure and oldest-survivor recovery (§5).

Boots a workstation group, crashes its leader while applications are being
submitted, and shows Isis-style error notification promoting the oldest
surviving daemon — after which scheduling continues and every application
completes.

Run:  python examples/fault_tolerant_scheduling.py
"""

from repro import VirtualComputingEnvironment, workstation_cluster
from repro.faults import leadership_transfer_times
from repro.machines import MachineClass
from repro.workloads import build_pipeline_graph


def main() -> None:
    vce = VirtualComputingEnvironment(workstation_cluster(6)).boot()
    cls = MachineClass.WORKSTATION
    original_leader = vce.directory.leader(cls).host
    view_before = vce.directory.members(cls)
    print(f"group leader: {original_leader}")
    print(f"membership (oldest first): {[m.host for m in view_before]}")

    # first application completes under the original leader
    r1 = vce.submit(build_pipeline_graph(stages=2, stage_work=5.0, name="before"))
    vce.run_to_completion(r1)
    print(f"\napp 'before': {r1.state.value} "
          f"(alloc latency {r1.allocation_latency:.2f}s)")

    # kill the leader's machine
    vce.faults.crash_leader_at(vce.directory, cls, vce.sim.now + 1.0)
    vce.run(until=vce.sim.now + 30.0)  # failure detection + takeover

    new_leader = vce.directory.leader(cls).host
    print(f"\nleader {original_leader} crashed; "
          f"oldest survivor {new_leader} took over")
    assert new_leader == view_before[1].host, "takeover should go to rank 1"

    transfer = leadership_transfer_times(vce.sim.log, "vce.WORKSTATION")
    print(f"leadership transfer time: {transfer[0]:.1f}s "
          "(heartbeat timeout + view change)")

    # scheduling keeps working under the new leader
    r2 = vce.submit(build_pipeline_graph(stages=2, stage_work=5.0, name="after"))
    vce.run_to_completion(r2)
    print(f"\napp 'after': {r2.state.value} "
          f"(alloc latency {r2.allocation_latency:.2f}s) — "
          f"the crashed machine was never offered: "
          f"{original_leader not in set(r2.placement.assignments.values())}")

    views = [r for r in vce.sim.log.records(category="isis.view")
             if r.get("group") == "vce.WORKSTATION"]
    print("\nview history of the workstation group:")
    for record in views:
        print(f"  t={record.time:7.2f}  view#{record.get('view_id')}  "
              f"{len(record.get('members'))} members, "
              f"leader {record.get('coordinator').split('/')[0]}")


if __name__ == "__main__":
    main()
