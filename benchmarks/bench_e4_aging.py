"""E4 — starvation prevention by priority aging (§4.3).

"As a task waits to be dispatched its priority will be increased to insure
it will eventually be dispatched even if that results in a globally
suboptimal schedule."

Setup: a one-machine group is kept saturated by a stream of high-priority
jobs; one low-priority job is queued first. With aging, the old
low-priority request overtakes fresh high-priority arrivals and completes;
without aging (rate 0) it is served dead last.
"""

from benchmarks._common import fresh_vce, once, workstations
from repro.core import VCEConfig
from repro.metrics import format_table
from repro.scheduler import DaemonConfig
from repro.scheduler.execution_program import RunState
from repro.workloads import build_sweep_graph


def _run(aging_rate: float, seed=8):
    config = VCEConfig(
        seed=seed,
        daemon=DaemonConfig(
            per_instance_load=0.9,  # one job saturates the machine
            retry_interval=1.0,
            aging_rate=aging_rate,
        ),
    )
    vce = fresh_vce(workstations(1), config=config)

    runs = {}
    # a blocker saturates the single machine first...
    blocker = vce.submit(
        build_sweep_graph(points=1, work_per_point=8.0, name="blocker"),
        priority=10.0,
    )
    vce.run(until=vce.sim.now + 0.5)
    # ...so the low-priority victim queues, followed by high-priority work
    runs["victim"] = vce.submit(
        build_sweep_graph(points=1, work_per_point=4.0, name="victim"),
        priority=0.0,
        queue_if_insufficient=True,
    )
    # high-priority jobs keep *arriving* (each fresh, age zero) at roughly
    # the service rate — the arrival stream that starves un-aged requests
    for i in range(5):
        vce.run(until=vce.sim.now + 6.0)
        runs[f"vip{i}"] = vce.submit(
            build_sweep_graph(points=1, work_per_point=6.0, name=f"vip{i}"),
            priority=10.0,
            queue_if_insufficient=True,
        )
    vce.run(until=vce.sim.now + 400.0)
    completion = {
        name: (run.completed_at if run.state is RunState.DONE else None)
        for name, run in runs.items()
    }
    victim_done = completion.pop("victim")
    vip_times = [t for t in completion.values() if t is not None]
    return {
        "victim_done": victim_done,
        "vips_done_before_victim": sum(1 for t in vip_times if victim_done and t < victim_done),
        "all_done": victim_done is not None and len(vip_times) == 5,
    }


def bench_e4_priority_aging(benchmark):
    def experiment():
        return {
            "aging 2.0/s": _run(aging_rate=2.0),
            "aging 0.2/s": _run(aging_rate=0.2),
            "no aging": _run(aging_rate=0.0),
        }

    results = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["queue policy", "victim completion (s)", "VIPs served before victim (of 5)"],
            [
                [name, r["victim_done"] or "never", r["vips_done_before_victim"]]
                for name, r in results.items()
            ],
            title="E4: low-priority job vs a stream of high-priority jobs",
        )
    )
    strong, weak, none = (
        results["aging 2.0/s"],
        results["aging 0.2/s"],
        results["no aging"],
    )
    assert strong["all_done"] and weak["all_done"] and none["all_done"]
    # stronger aging serves the victim earlier in the queue order
    assert strong["vips_done_before_victim"] <= weak["vips_done_before_victim"]
    # without aging the victim loses to (nearly) every fresh arrival
    assert none["vips_done_before_victim"] >= 4
    # with strong aging the old request overtakes the fresh VIP stream
    assert strong["vips_done_before_victim"] <= 1
    assert strong["victim_done"] < none["victim_done"]
