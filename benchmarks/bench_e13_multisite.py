"""E13 (extension) — metacomputing across sites.

The paper opens with "a network of supercomputers and high-performance
workstations" as the only way to field Grand Challenge resources — i.e.
machines spanning campuses, not one LAN. This extension experiment places
a communication-heavy synchronous job (halo-exchange stencil) on a
two-campus VCE joined by a 50 ms WAN link and compares:

- site-packed placement (all ranks on one campus);
- deliberately scattered placement (ranks split across the WAN).

Shape: every stencil iteration pays a WAN round-trip when scattered, so
makespan degrades by orders of magnitude for latency-bound iteration
counts — quantifying why placement must be topology-aware once the VCE
leaves the LAN.
"""

from benchmarks._common import finish, once
from repro.core import VCEConfig, VirtualComputingEnvironment, multi_site_cluster
from repro.machines import MachineClass
from repro.metrics import format_table
from repro.netsim import LatencyModel
from repro.runtime import Placement
from repro.scheduler import site_packed_assignment
from repro.workloads import build_stencil_graph

WAN = LatencyModel(base_latency=0.05, bandwidth=125_000, jitter=0.0)
ITERATIONS = 25


def _vce(seed=31):
    machines = multi_site_cluster({"syr": 4, "cornell": 4})
    return VirtualComputingEnvironment(
        machines, VCEConfig(seed=seed, wan_latency=WAN)
    ).boot()


def _run_packed():
    vce = _vce()
    graph = build_stencil_graph(ranks=4, cells=32, iterations=ITERATIONS)
    vce.compilation.compile_all(vce.compilation.plan(graph))  # binaries ready
    run = vce.submit(
        graph,
        class_map={"grid": MachineClass.WORKSTATION},
        policy=site_packed_assignment,
    )
    finish(vce, run, timeout=10_000.0)
    sites = {run.placement.host_for("grid", r).split("-")[0] for r in range(4)}
    return run.app.makespan, sites


def _run_scattered():
    vce = _vce(seed=32)
    graph = build_stencil_graph(ranks=4, cells=32, iterations=ITERATIONS)
    vce.compilation.compile_all(vce.compilation.plan(graph))  # binaries ready
    placement = Placement()
    # alternate ranks across campuses: every halo exchange crosses the WAN
    hosts = ["syr-ws0", "cornell-ws0", "syr-ws1", "cornell-ws1"]
    for rank, host in enumerate(hosts):
        placement.assign("grid", rank, host)
    app = vce.runtime.submit(graph, placement)
    vce.run(until=vce.sim.now + 20_000.0, stop_when=lambda: app.status.terminal)
    assert app.all_done
    return app.makespan


def bench_e13_wan_placement(benchmark):
    def experiment():
        packed_ms, packed_sites = _run_packed()
        scattered_ms = _run_scattered()
        return packed_ms, packed_sites, scattered_ms

    packed_ms, packed_sites, scattered_ms = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["placement", "makespan (s)", "WAN crossings per iteration"],
            [
                [f"site-packed (all on {next(iter(packed_sites))})", packed_ms, 0],
                ["scattered across campuses", scattered_ms, "3 halo pairs"],
            ],
            title=f"E13: {ITERATIONS}-iteration stencil on a 2-campus VCE (50ms WAN)",
        )
    )
    assert len(packed_sites) == 1
    # latency-bound: each iteration pays ~one WAN round (halo exchanges in
    # both directions overlap) when scattered; packed stays at LAN latency
    assert scattered_ms > 3 * packed_ms
    assert scattered_ms > ITERATIONS * WAN.base_latency * 0.8
