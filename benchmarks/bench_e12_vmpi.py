"""E12 — vMPI collectives over channels (§4.2).

Latency of barrier / broadcast / allreduce as the communicator widens.
The library uses binomial trees for bcast/reduce, so per-collective
latency should grow ~logarithmically in the rank count (each doubling adds
about one round-trip), not linearly.
"""


from benchmarks._common import finish, fresh_vce, once, workstations
from repro.metrics import format_series, format_table
from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass
from repro.vmpi import allreduce, alltoall, barrier, bcast

SIZES = [2, 4, 8, 16, 32]
REPS = 20


def _collective_time(kind: str, n: int, seed=20):
    def program(ctx):
        # warm-up barrier aligns all ranks before timing
        yield from barrier(ctx)
        from repro.vmpi import Emit

        yield Emit("coll.begin", {"rank": ctx.rank})
        for _ in range(REPS):
            if kind == "barrier":
                yield from barrier(ctx)
            elif kind == "bcast":
                yield from bcast(ctx, "payload" if ctx.rank == 0 else None, size=1000)
            elif kind == "allreduce":
                yield from allreduce(ctx, ctx.rank, op=sum, size=1000)
            elif kind == "alltoall":
                yield from alltoall(ctx, list(range(ctx.size)), size=1000)
        yield Emit("coll.end", {"rank": ctx.rank})
        return None

    vce = fresh_vce(workstations(n), seed=seed)
    graph = ProblemSpecification(f"{kind}{n}").task("t", instances=n).build()
    node = graph.task("t")
    node.problem_class = ProblemClass.LOOSELY_SYNCHRONOUS
    node.language = "py"
    node.program = program
    run = vce.submit(graph)
    finish(vce, run, timeout=3_000.0)
    log = vce.sim.log
    begin = max(r.time for r in log.records(category="coll.begin"))
    end = max(r.time for r in log.records(category="coll.end"))
    return (end - begin) / REPS


def bench_e12_collective_scaling(benchmark):
    def experiment():
        out = {}
        for kind in ("barrier", "bcast", "allreduce", "alltoall"):
            out[kind] = {n: _collective_time(kind, n) for n in SIZES}
        return out

    results = once(benchmark, experiment)
    print()
    rows = [[n] + [results[k][n] for k in ("barrier", "bcast", "allreduce", "alltoall")] for n in SIZES]
    print(
        format_table(
            ["ranks", "barrier (s)", "bcast (s)", "allreduce (s)", "alltoall (s)"],
            rows,
            title="E12: vMPI collective latency vs communicator size",
        )
    )
    for kind in ("barrier", "bcast", "allreduce", "alltoall"):
        print(format_series(kind, SIZES, [results[kind][n] for n in SIZES]))

    for kind in ("barrier", "bcast", "allreduce"):
        times = [results[kind][n] for n in SIZES]
        # latency grows with group size...
        assert times[-1] > times[0]
        # ...but logarithmically, not linearly: growing ranks 16x (2->32)
        # costs well under 8x the latency (binomial trees: ~5 rounds vs 1)
        assert times[-1] < 8 * times[0], f"{kind} scaled worse than log"
        # each doubling adds at most ~2 extra rounds' worth
        per_double = [b / a for a, b in zip(times, times[1:])]
        assert max(per_double) < 2.5, f"{kind} doubling blew up: {per_double}"
    # allreduce = reduce + bcast, so it costs more than bcast alone
    assert results["allreduce"][16] > results["bcast"][16]
    # alltoall sends its p-1 personalized messages concurrently; under the
    # LAN model (independent per-message delivery, no per-NIC egress
    # serialization — a documented simplification) its completion time is
    # one wire latency regardless of p, unlike the multi-round trees
    a2a = [results["alltoall"][n] for n in SIZES]
    assert max(a2a) < 2 * min(a2a)  # ~flat
    assert a2a[-1] < results["allreduce"][32]  # single round beats log rounds


def bench_e12b_nic_serialization_ablation(benchmark):
    """Network-model ablation: with one NIC per host (egress
    serialization), alltoall's p-1 personalized transmissions queue for
    the wire and its latency grows ~linearly in p — the behaviour the
    plain infinite-NIC model hides. Tree collectives, whose per-round
    fan-out is 1 message per sender, barely change."""
    from repro.core import VCEConfig

    def timed(kind, n, serialize):
        config = VCEConfig(seed=20, egress_serialization=serialize)
        # reuse the measurement machinery with a custom-config VCE
        def program(ctx):
            from repro.vmpi import Emit

            yield from barrier(ctx)
            yield Emit("coll.begin", {"rank": ctx.rank})
            for _ in range(REPS):
                if kind == "alltoall":
                    yield from alltoall(ctx, list(range(ctx.size)), size=1000)
                else:
                    yield from allreduce(ctx, ctx.rank, op=sum, size=1000)
            yield Emit("coll.end", {"rank": ctx.rank})

        from repro.core import VirtualComputingEnvironment

        vce = VirtualComputingEnvironment(
            __import__("benchmarks._common", fromlist=["workstations"]).workstations(n),
            config,
        ).boot()
        graph = ProblemSpecification(f"x{kind}{n}{serialize}").task(
            "t", instances=n
        ).build()
        node = graph.task("t")
        node.problem_class = ProblemClass.LOOSELY_SYNCHRONOUS
        node.language = "py"
        node.program = program
        run = vce.submit(graph)
        finish(vce, run, timeout=5_000.0)
        log = vce.sim.log
        begin = max(r.time for r in log.records(category="coll.begin"))
        end = max(r.time for r in log.records(category="coll.end"))
        return (end - begin) / REPS

    def experiment():
        out = {}
        for n in (4, 16):
            out[n] = {
                "alltoall (infinite NIC)": timed("alltoall", n, False),
                "alltoall (one NIC)": timed("alltoall", n, True),
                "allreduce (one NIC)": timed("allreduce", n, True),
            }
        return out

    results = once(benchmark, experiment)
    print()
    rows = []
    for n, values in results.items():
        for name, v in values.items():
            rows.append([n, name, v])
    print(
        format_table(
            ["ranks", "collective / NIC model", "latency (s)"],
            rows,
            title="E12b: per-NIC egress serialization ablation",
        )
    )
    # with one NIC, widening 4 -> 16 ranks inflates alltoall sharply
    # (4x the personalized messages through one wire)...
    flat = results[16]["alltoall (infinite NIC)"] / results[4]["alltoall (infinite NIC)"]
    serialized = results[16]["alltoall (one NIC)"] / results[4]["alltoall (one NIC)"]
    assert serialized > 2 * flat
    # ...while the tree collective's growth stays modest
    assert results[16]["allreduce (one NIC)"] < results[16]["alltoall (one NIC)"] * 2
