"""E1 — the §5 weather application, script to termination.

Runs the paper's exact script through the full stack: parse → interpret →
bid per group → place → dispatch → execute → terminate. Reports the
timeline of the phases and verifies the §5 narrative: two collectors on
the (asynchronous-class) workstation group, the predictor on the SIMD
group, the display LOCAL on the user's workstation after the remote
executions have begun.
"""

from benchmarks._common import finish, fresh_vce, once
from repro.core import heterogeneous_cluster
from repro.metrics import format_table
from repro.workloads import WEATHER_SCRIPT, weather_programs


def bench_e1_weather_script(benchmark):
    def experiment():
        vce = fresh_vce(heterogeneous_cluster(n_workstations=6), seed=5)
        run = vce.run_script(
            WEATHER_SCRIPT,
            weather_programs(predict_work=200.0),
            works={"collector": 20, "usercollect": 10, "predictor": 200, "display": 2},
            name="snow",
        )
        finish(vce, run)
        vce.run(until=vce.sim.now + 5.0)  # drain terminate notices
        app = run.app
        log = vce.sim.log
        first_remote_start = min(
            r.time for r in log.records(category="task.start")
            if r.get("task") != "display"
        )
        display_start = next(
            r.time for r in log.records(category="task.start")
            if r.get("task") == "display"
        )
        return {
            "vce": vce,
            "run": run,
            "alloc": run.allocation_latency,
            "makespan": app.makespan,
            "placement": dict(run.placement.assignments),
            "display_after_remotes": display_start >= first_remote_start,
            "requests": log.count("sched.request"),
            "terminates": log.count("app.terminate") + log.count("sched.released"),
        }

    result = once(benchmark, experiment)
    placement = result["placement"]
    rows = [[f"{t}[{r}]", m] for (t, r), m in sorted(placement.items())]
    print()
    print(format_table(["module", "machine"], rows, title="E1: weather placement"))
    print(
        format_table(
            ["metric", "value"],
            [
                ["allocation latency (s)", result["alloc"]],
                ["makespan (s)", result["makespan"]],
                ["group requests", result["requests"]],
            ],
        )
    )

    # §5 narrative shape
    assert placement[("collector", 0)].startswith("ws")
    assert placement[("collector", 1)].startswith("ws")
    assert placement[("collector", 0)] != placement[("collector", 1)]
    assert placement[("predictor", 0)].startswith("simd")
    assert placement[("display", 0)] == "user"
    assert result["display_after_remotes"]
    assert result["requests"] >= 2  # workstation group + SIMD group
    assert result["terminates"] >= 1
