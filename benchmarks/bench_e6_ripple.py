"""E6 — the ripple effect: suspension vs migration on dependency graphs.

"If a virtual machine task is suspended to allow execution of local tasks,
initiation of other tasks dependent on the output of the suspended task
could be delayed. This ripple effect could adversely affect system
throughput." (§4.3)

A diamond DAG runs while one branch's machine gets a long local-work
burst. Three policies: do nothing, suspend the remote work
(Clark/Ju/Krueger), or migrate it (§4.4 schemes). The downstream sink's
start time shows the ripple; migration contains it.
"""

from benchmarks._common import fresh_vce, once, workstations
from repro.loadbalance import MigrateOnLoadPolicy, NoActionPolicy, SuspendResumePolicy
from repro.machines import ConstantLoad, TraceLoad
from repro.metrics import format_table
from repro.scheduler.execution_program import RunState
from repro.workloads import build_diamond_graph

BURST_START = 20.0
BURST_END = 220.0


def _run(policy_name: str, seed=9):
    # ws0..ws3 host the diamond; ws1 gets a long owner burst; ws4 stays idle
    loads = [ConstantLoad(0.0)] * 5
    vce = fresh_vce(workstations(5), seed=seed)
    graph = build_diamond_graph(width=3, branch_work=30.0, name=f"dag-{policy_name}")
    if policy_name == "suspend":
        vce.enable_load_balancing(SuspendResumePolicy(), busy_threshold=0.5, interval=0.5)
    elif policy_name == "migrate":
        vce.enable_load_balancing(
            MigrateOnLoadPolicy(vce.migration), busy_threshold=0.5, interval=0.5
        )
    else:
        vce.enable_load_balancing(NoActionPolicy(), busy_threshold=0.5, interval=0.5)
    run = vce.submit(graph)
    # find which machine hosts a branch, then hit it with an owner burst
    vce.run(until=vce.sim.now + 5.0)
    assert run.placement is not None
    victim = run.placement.host_for("b0", 0)
    base = vce.sim.now
    vce.database.get(victim).background_load = TraceLoad(
        [(base + BURST_START - 5.0, 0.95), (base + BURST_END, 0.0)]
    )
    vce.run_to_completion(run, timeout=3_000.0)
    assert run.state is RunState.DONE
    log = vce.sim.log
    sink_start = next(
        r.time - base for r in log.records(category="task.start") if r.get("task") == "sink"
    )
    return {
        "makespan": run.app.makespan,
        "sink_start": sink_start,
        "migrations": len(vce.metrics().migrations()),
        "suspended_for": sum(vce.metrics().suspension_spans()),
    }


def bench_e6_ripple_effect(benchmark):
    def experiment():
        return {
            "no action": _run("none"),
            "suspend (Stealth-style)": _run("suspend"),
            "migrate": _run("migrate"),
        }

    results = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["policy", "makespan (s)", "sink start (s)", "migrations", "suspended (s)"],
            [
                [k, v["makespan"], v["sink_start"], v["migrations"], v["suspended_for"]]
                for k, v in results.items()
            ],
            title="E6: diamond DAG under a ~200s owner burst on one branch host",
        )
    )
    none, susp, mig = (
        results["no action"],
        results["suspend (Stealth-style)"],
        results["migrate"],
    )
    # suspension parks the branch until the owner leaves: the sink (and the
    # whole application) ride out the burst — the ripple effect
    assert susp["sink_start"] > BURST_END * 0.8
    assert susp["makespan"] > mig["makespan"] * 2
    # migration moves the branch to an idle machine: modest overhead only
    assert mig["migrations"] >= 1
    assert mig["makespan"] < 100.0
    # doing nothing is better than suspending here (5% CPU trickles on) but
    # still far worse than migrating
    assert mig["makespan"] < none["makespan"]
