"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's index (the
paper's figures F1–F3 and the textual-claim experiments E1–E12), asserts
the *shape* the paper predicts, and prints a table/series via
``repro.metrics.report``. Wall-clock timing is taken by pytest-benchmark
(``benchmark.pedantic`` with one round — the interesting numbers are the
simulated metrics, printed to stdout).
"""

from __future__ import annotations

import sys
from pathlib import Path

# make the tests package (cluster helpers) importable from benchmarks
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.core import VCEConfig, VirtualComputingEnvironment  # noqa: E402
from repro.machines import ConstantLoad, Machine, MachineClass  # noqa: E402
from repro.scheduler.execution_program import RunState  # noqa: E402


def fresh_vce(machines, seed=0, config=None, **config_kw):
    cfg = config or VCEConfig(seed=seed, **config_kw)
    return VirtualComputingEnvironment(machines, cfg).boot()


def workstations(n, seed=0, loads=None, speeds=None):
    out = []
    for i in range(n):
        out.append(
            Machine(
                f"ws{i}",
                MachineClass.WORKSTATION,
                speed=(speeds[i] if speeds else 1.0),
                memory_mb=256,
                background_load=(loads[i] if loads else ConstantLoad(0.0)),
            )
        )
    return out


def finish(vce, run, timeout=5_000.0):
    vce.run_to_completion(run, timeout=timeout)
    assert run.state is RunState.DONE, f"run failed: {run.error}"
    return run


def once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
