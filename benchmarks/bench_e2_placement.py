"""E2 — placement quality: load-sorted bids vs baselines.

The paper's leader "sort[s] bids by load" and returns "the least loaded
processors". On a cluster whose machines differ in background load, the
load-sorted policy should beat random and round-robin placement on
makespan for a batch of independent tasks.
"""

from benchmarks._common import finish, fresh_vce, once, workstations
from repro.machines import ConstantLoad
from repro.metrics import format_table
from repro.scheduler import (
    load_sorted_assignment,
    random_assignment,
    round_robin_assignment,
)
from repro.workloads import build_sweep_graph

#: 8 machines, lightly and heavily loaded interleaved (so that name-order
#: round-robin can't accidentally match load-aware placement)
LOADS = [0.6, 0.0, 0.7, 0.1, 0.0, 0.65, 0.05, 0.75]


def _run_policy(policy, seed=6):
    vce = fresh_vce(workstations(8, loads=[ConstantLoad(l) for l in LOADS]), seed=seed)
    graph = build_sweep_graph(points=4, work_per_point=30.0, name=f"batch-{policy.__name__}")
    run = vce.submit(graph, policy=policy)
    finish(vce, run)
    hosts = {run.placement.host_for("point", r) for r in range(4)}
    light = {f"ws{i}" for i, l in enumerate(LOADS) if l < 0.3}
    return {
        "makespan": run.app.makespan,
        "on_light_machines": len(hosts & light),
    }


def bench_e2_placement_policies(benchmark):
    def experiment():
        return {
            "load-sorted (paper)": _run_policy(load_sorted_assignment),
            "round-robin": _run_policy(round_robin_assignment),
            "random": _run_policy(random_assignment),
        }

    results = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["policy", "makespan (s)", "tasks on lightly-loaded machines (of 4)"],
            [[k, v["makespan"], v["on_light_machines"]] for k, v in results.items()],
            title="E2: placement quality on a half-loaded cluster",
        )
    )
    paper = results["load-sorted (paper)"]
    # the paper's policy lands everything on the light half and wins makespan
    assert paper["on_light_machines"] == 4
    assert paper["makespan"] <= results["round-robin"]["makespan"]
    assert paper["makespan"] <= results["random"]["makespan"]
    # and the difference is material (≥20% vs the worst baseline)
    worst = max(results["round-robin"]["makespan"], results["random"]["makespan"])
    assert paper["makespan"] < 0.9 * worst
