"""E11 — heterogeneity: mapping problem classes to machine classes (§4.1).

Two measurements:

1. **Class mapping pays off**: the weather application on (a) an
   all-workstation cluster and (b) the paper's heterogeneous site, where
   the SYNC-classified predictor lands on a 40x SIMD machine. The
   design-stage classification plus the class map is what routes it there.
2. **Prepare-everything enables cross-class moves**: with binaries
   prepared for *all* feasible classes, the runtime moves a task from a
   workstation to a MIMD machine mid-run "without the need to compile a
   task while the application is running".
"""

from benchmarks._common import finish, fresh_vce, once, workstations
from repro.core import heterogeneous_cluster
from repro.machines import MachineClass
from repro.metrics import format_table
from repro.migration import RecompileMigration
from repro.runtime import AppStatus
from repro.workloads import build_weather_graph


def _weather_makespan(machines, seed=18):
    vce = fresh_vce(machines, seed=seed)
    graph = build_weather_graph(predict_work=400.0)
    run = vce.submit(graph)
    finish(vce, run)
    return run.app.makespan, run.placement.host_for("predictor", 0)


def bench_e11_class_mapping(benchmark):
    def experiment():
        homo = _weather_makespan(workstations(9))
        hetero = _weather_makespan(heterogeneous_cluster(n_workstations=6, n_mimd=2, n_simd=1))
        return homo, hetero

    (homo_ms, homo_host), (hetero_ms, hetero_host) = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["cluster", "predictor ran on", "makespan (s)"],
            [
                ["9 workstations (homogeneous)", homo_host, homo_ms],
                ["6 ws + 2 MIMD + 1 SIMD (heterogeneous)", hetero_host, hetero_ms],
            ],
            title="E11: SYNC-class predictor routed by the class map",
        )
    )
    assert homo_host.startswith("ws")
    assert hetero_host.startswith("simd")
    # the 400-unit predictor dominates; a 40x machine collapses it
    assert hetero_ms < homo_ms / 4


def bench_e11_prepared_binaries_enable_moves(benchmark):
    """Anticipatorily prepared multi-class binaries: a mid-run move to a
    different architecture costs no runtime compilation."""
    from repro.sdm import ProblemSpecification
    from repro.taskgraph import ProblemClass
    from repro.vmpi import Checkpoint, Compute

    def _graph():
        def program(ctx):
            done = ctx.restored_state or 0.0
            while done < 120.0:
                yield Compute(5.0)
                done += 5.0
                yield Checkpoint(done, size=10_000)
            return done

        graph = ProblemSpecification("movable").task("job", work=120.0).build()
        node = graph.task("job")
        node.problem_class = ProblemClass.LOOSELY_SYNCHRONOUS  # MIMD-preferred
        node.language = "hpf"
        node.program = program
        return graph

    def _run(prepare: bool, seed=19):
        machines = heterogeneous_cluster(n_workstations=3, n_mimd=1, n_simd=0)
        vce = fresh_vce(machines, seed=seed)
        graph = _graph()
        if prepare:
            vce.compilation.compile_all(vce.compilation.plan(graph))
        # force a workstation start, then move to the MIMD machine mid-run
        run = vce.submit(graph, class_map={"job": MachineClass.WORKSTATION})
        vce.run(until=vce.sim.now + 20.0)
        app = run.app
        record = app.record("job", 0)
        latencies = []
        scheme = RecompileMigration(
            vce.migration.context, use_checkpoint=True
        )
        scheme.migrate(app, record, "mimd0", on_done=latencies.append)
        vce.run_to_completion(run)
        assert app.status is AppStatus.DONE
        assert record.host_name == "mimd0"
        return latencies[0], run.app.makespan

    def experiment():
        return {
            "binaries prepared for all classes": _run(True),
            "compile at migration time": _run(False),
        }

    results = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["mode", "cross-class migration latency (s)", "makespan (s)"],
            [[k, lat, ms] for k, (lat, ms) in results.items()],
            title="E11b: workstation -> MIMD move with/without prepared binaries",
        )
    )
    prepared_lat, _ = results["binaries prepared for all classes"]
    cold_lat, _ = results["compile at migration time"]
    assert prepared_lat < 1.0
    assert cold_lat > 15.0  # the HPF compile lands on the critical path
