"""E8 — anticipatory processing (§4.5).

Two measurements:

1. **Anticipatory compilation**: the weather app's modules are compiled on
   idle machines *before* submission vs compiled on demand at dispatch.
   Start latency (submit → first task running) and makespan both drop.
2. **Anticipatory file replication**: the predictor needs an input file
   that lives on one machine; replicating it to all candidate hosts during
   the collectors' run removes the fetch from the critical path.
"""

from benchmarks._common import finish, fresh_vce, once, workstations
from repro.core import heterogeneous_cluster
from repro.metrics import format_table
from repro.vmpi import Compute, ReadFile
from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass
from repro.workloads import build_weather_graph


def _weather_run(anticipatory: bool, seed=11):
    vce = fresh_vce(heterogeneous_cluster(n_workstations=6), seed=seed)
    graph = build_weather_graph(predict_work=100.0)
    # use a compiled language so compilation costs are realistic
    for node in graph:
        node.language = "hpf"
    if anticipatory:
        vce.prepare(graph)
        vce.run(until=vce.sim.now + 120.0)  # idle time before submission
    submit_time = vce.sim.now
    run = vce.submit(graph)
    finish(vce, run)
    first_start = min(
        r.time for r in vce.sim.log.records(category="task.start")
        if r.time >= submit_time
    )
    return {
        "start_latency": first_start - submit_time,
        "makespan": run.app.makespan,
        "on_demand_compiles": vce.compilation.on_demand_compiles,
    }


def bench_e8_anticipatory_compilation(benchmark):
    def experiment():
        return {
            "anticipatory (compiled ahead)": _weather_run(True),
            "on-demand (compile at dispatch)": _weather_run(False),
        }

    results = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["mode", "start latency (s)", "makespan (s)", "on-demand compiles"],
            [
                [k, v["start_latency"], v["makespan"], v["on_demand_compiles"]]
                for k, v in results.items()
            ],
            title="E8: anticipatory vs on-demand compilation (weather app, HPF)",
        )
    )
    ahead = results["anticipatory (compiled ahead)"]
    demand = results["on-demand (compile at dispatch)"]
    assert ahead["on_demand_compiles"] == 0
    assert demand["on_demand_compiles"] >= 4
    # compile time (20s base per HPF target) leaves the critical path
    assert ahead["start_latency"] < 2.0
    assert demand["start_latency"] > 10.0
    assert ahead["makespan"] < demand["makespan"] - 10.0


def bench_e8_file_replication(benchmark):
    """Input files replicated to candidate hosts while idle: the consumer
    task no longer pays the remote fetch."""

    def _run(replicate: bool, seed=12):
        vce = fresh_vce(workstations(4), seed=seed)
        # the dataset lives on ws3 only; the bidding tie-break places the
        # consumer on ws0, so an un-replicated run pays the remote fetch
        vce.database.get("ws3").files.add("era.dat")

        def consumer(ctx):
            yield ReadFile("era.dat", size=12_500_000)  # 10s fetch if remote
            yield Compute(5.0)
            return "done"

        graph = ProblemSpecification("reader").task("consumer", work=5.0).build()
        node = graph.task("consumer")
        node.problem_class = ProblemClass.ASYNCHRONOUS
        node.language = "py"
        node.program = consumer
        node.requirements = {"min_memory_mb": 1}
        if replicate:
            vce.anticipatory.replicate_files(
                {"era.dat": 12_500_000}, [f"ws{i}" for i in range(4)]
            )
            vce.run(until=vce.sim.now + 60.0)  # replication happens while idle
        run = vce.submit(graph)
        finish(vce, run)
        return run.app.makespan

    def experiment():
        return {"replicated ahead": _run(True), "fetch on first read": _run(False)}

    results = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["mode", "makespan (s)"],
            [[k, v] for k, v in results.items()],
            title="E8b: anticipatory input-file replication (12.5 MB dataset)",
        )
    )
    assert results["replicated ahead"] < results["fetch on first read"] - 5.0
