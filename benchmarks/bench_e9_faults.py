"""E9 — fault tolerance: leader failure and daemon churn (§5).

"Isis provides error notification functions which are used to allow the
oldest surviving member of the group to assume the role of group leader in
case the group leader fails. Machines can enter or leave the group at any
time."

Measured:

1. leadership-transfer latency vs the failure-detection timeout (an
   ablation over the heartbeat knob);
2. application completion under daemon churn: machines keep crashing and
   recovering while a stream of jobs is submitted — every job whose
   machines survive completes, and new leaders keep allocating.
"""

from benchmarks._common import fresh_vce, once, workstations
from repro.core import VCEConfig
from repro.faults import leadership_transfer_times
from repro.isis import IsisConfig
from repro.machines import MachineClass
from repro.metrics import format_series, format_table
from repro.scheduler.execution_program import RunState
from repro.workloads import build_sweep_graph

TIMEOUTS = [1.0, 2.0, 4.0, 8.0]


def _transfer_time(hb_timeout: float, seed=13):
    config = VCEConfig(
        seed=seed,
        isis=IsisConfig(hb_interval=hb_timeout / 4, hb_timeout=hb_timeout),
        settle_time=20.0,
    )
    vce = fresh_vce(workstations(5), config=config)
    vce.faults.crash_leader_at(vce.directory, MachineClass.WORKSTATION, vce.sim.now + 1.0)
    vce.run(until=vce.sim.now + 40.0 + 10 * hb_timeout)
    times = leadership_transfer_times(vce.sim.log, "vce.WORKSTATION")
    assert times, f"no takeover happened for hb_timeout={hb_timeout}"
    # scheduling still works under the new leader
    run = vce.submit(build_sweep_graph(points=1, work_per_point=1.0, name="probe"))
    vce.run_to_completion(run)
    assert run.state is RunState.DONE
    return times[0]


def bench_e9_leader_recovery_latency(benchmark):
    def experiment():
        return {t: _transfer_time(t) for t in TIMEOUTS}

    results = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["hb timeout (s)", "leadership transfer (s)"],
            [[t, v] for t, v in results.items()],
            title="E9: leader-crash recovery vs failure-detection timeout",
        )
    )
    print(format_series("transfer", list(results), list(results.values())))
    # recovery latency tracks the detection timeout (rank-1 takeover fires
    # after ~2x hb_timeout plus a flush round)
    values = [results[t] for t in TIMEOUTS]
    assert all(a < b for a, b in zip(values, values[1:]))
    for timeout, value in results.items():
        assert value < 8 * timeout + 5.0


def bench_e9_churn_survival(benchmark):
    """Jobs keep completing while non-leader machines churn."""

    def experiment():
        config = VCEConfig(seed=14, settle_time=20.0)
        vce = fresh_vce(workstations(8), config=config)
        leader_host = vce.directory.leader(MachineClass.WORKSTATION).host
        # churn everything except the leader and ws7 (so capacity remains)
        vce.faults.churn(
            [f"ws{i}" for i in range(8)],
            mean_up=60.0,
            mean_down=20.0,
            until=vce.sim.now + 400.0,
            spare={leader_host, "ws7"},
        )
        outcomes = []
        for i in range(8):
            run = vce.submit(
                build_sweep_graph(points=1, work_per_point=5.0, name=f"job{i}"),
                queue_if_insufficient=True,
            )
            vce.run(until=vce.sim.now + 50.0)
            outcomes.append(run)
        vce.run(until=vce.sim.now + 300.0)
        done = sum(1 for r in outcomes if r.state is RunState.DONE)
        crashes = vce.faults.crashes
        return done, len(outcomes), crashes

    done, total, crashes = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["jobs submitted", "jobs completed", "host crashes injected"],
            [[total, done, crashes]],
            title="E9b: job survival under daemon churn",
        )
    )
    assert crashes >= 3  # the churn actually happened
    assert done >= total - 1  # at most one straggler lost to timing
