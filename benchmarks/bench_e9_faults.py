"""E9 — fault tolerance: leader failure, daemon churn, task recovery (§5).

"Isis provides error notification functions which are used to allow the
oldest surviving member of the group to assume the role of group leader in
case the group leader fails. Machines can enter or leave the group at any
time."

Measured:

1. leadership-transfer latency vs the failure-detection timeout (an
   ablation over the heartbeat knob);
2. application completion under daemon churn: machines keep crashing and
   recovering while a stream of jobs is submitted — every job whose
   machines survive completes, and new leaders keep allocating;
3. task-recovery latency under the fault-tolerant execution layer: a host
   running a pipeline stage is crash-restarted mid-run, and the strand →
   re-dispatch deltas plus the makespan penalty vs a fault-free twin are
   recorded in ``BENCH_faults.json`` at the repo root.
"""

import json
import statistics
from pathlib import Path

from benchmarks._common import fresh_vce, once, workstations
from repro.core import VCEConfig
from repro.faults import FaultSchedule, leadership_transfer_times
from repro.isis import IsisConfig
from repro.machines import MachineClass
from repro.metrics import format_series, format_table
from repro.migration.failover import FailoverConfig
from repro.scheduler.execution_program import RunState
from repro.workloads import build_pipeline_graph, build_sweep_graph

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

TIMEOUTS = [1.0, 2.0, 4.0, 8.0]


def _transfer_time(hb_timeout: float, seed=13):
    config = VCEConfig(
        seed=seed,
        isis=IsisConfig(hb_interval=hb_timeout / 4, hb_timeout=hb_timeout),
        settle_time=20.0,
    )
    vce = fresh_vce(workstations(5), config=config)
    vce.faults.crash_leader_at(vce.directory, MachineClass.WORKSTATION, vce.sim.now + 1.0)
    vce.run(until=vce.sim.now + 40.0 + 10 * hb_timeout)
    times = leadership_transfer_times(vce.sim.log, "vce.WORKSTATION")
    assert times, f"no takeover happened for hb_timeout={hb_timeout}"
    # scheduling still works under the new leader
    run = vce.submit(build_sweep_graph(points=1, work_per_point=1.0, name="probe"))
    vce.run_to_completion(run)
    assert run.state is RunState.DONE
    return times[0]


def bench_e9_leader_recovery_latency(benchmark):
    def experiment():
        return {t: _transfer_time(t) for t in TIMEOUTS}

    results = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["hb timeout (s)", "leadership transfer (s)"],
            [[t, v] for t, v in results.items()],
            title="E9: leader-crash recovery vs failure-detection timeout",
        )
    )
    print(format_series("transfer", list(results), list(results.values())))
    # recovery latency tracks the detection timeout (rank-1 takeover fires
    # after ~2x hb_timeout plus a flush round)
    values = [results[t] for t in TIMEOUTS]
    assert all(a < b for a, b in zip(values, values[1:]))
    for timeout, value in results.items():
        assert value < 8 * timeout + 5.0


def bench_e9_churn_survival(benchmark):
    """Jobs keep completing while non-leader machines churn."""

    def experiment():
        config = VCEConfig(seed=14, settle_time=20.0)
        vce = fresh_vce(workstations(8), config=config)
        leader_host = vce.directory.leader(MachineClass.WORKSTATION).host
        # churn everything except the leader and ws7 (so capacity remains)
        vce.faults.churn(
            [f"ws{i}" for i in range(8)],
            mean_up=60.0,
            mean_down=20.0,
            until=vce.sim.now + 400.0,
            spare={leader_host, "ws7"},
        )
        outcomes = []
        for i in range(8):
            run = vce.submit(
                build_sweep_graph(points=1, work_per_point=5.0, name=f"job{i}"),
                queue_if_insufficient=True,
            )
            vce.run(until=vce.sim.now + 50.0)
            outcomes.append(run)
        vce.run(until=vce.sim.now + 300.0)
        done = sum(1 for r in outcomes if r.state is RunState.DONE)
        crashes = vce.faults.crashes
        return done, len(outcomes), crashes

    done, total, crashes = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["jobs submitted", "jobs completed", "host crashes injected"],
            [[total, done, crashes]],
            title="E9b: job survival under daemon churn",
        )
    )
    assert crashes >= 3  # the churn actually happened
    assert done >= total - 1  # at most one straggler lost to timing


def _pipeline_run(seed: int, faulty: bool):
    """One 4-stage pipeline with the fault-tolerant layer on; when
    *faulty*, the host running the current stage is crash-restarted."""
    config = VCEConfig(
        seed=seed, reliable_transport=True, failover=FailoverConfig()
    )
    vce = fresh_vce(workstations(8), config=config)
    run = vce.submit(build_pipeline_graph(stages=4, stage_work=20.0, name="pipe"))
    if faulty:
        vce.run(until=vce.sim.now + 5.0)  # let a stage start executing
        victim = next(
            record.host_name
            for record in run.app.records.values()
            if record.host_name is not None
        )
        vce.chaos(FaultSchedule("bounce").bounce(0.0, victim, down_for=4.0))
    vce.run_to_completion(run, timeout=2_000.0)
    assert run.state is RunState.DONE, run.error
    vce.run(until=vce.sim.now + 10.0)  # drain trailing recovery events
    return vce, run


def _recovery_latencies(vce) -> list[float]:
    """strand → redispatch deltas per (app, task, rank) from the log."""
    strands = {}
    latencies = []
    for record in vce.sim.log.records(category="recovery.strand"):
        strands[(record.source, record.get("task"), record.get("rank"))] = record.time
    for record in vce.sim.log.records(category="recovery.redispatch"):
        key = (record.source, record.get("task"), record.get("rank"))
        if key in strands:
            latencies.append(record.time - strands.pop(key))
    return latencies


def bench_e9_task_recovery_latency(benchmark):
    """E9c: the fault-tolerant execution layer's recovery latency."""

    def experiment():
        faulty_vce, faulty_run = _pipeline_run(seed=15, faulty=True)
        calm_vce, calm_run = _pipeline_run(seed=15, faulty=False)
        latencies = _recovery_latencies(faulty_vce)
        hist = faulty_vce.telemetry.registry.get("recovery_latency_seconds")
        return {
            "latencies": latencies,
            "histogram_count": 0 if hist is None else hist.labels().count,
            "histogram_p50": None if hist is None else hist.quantile(0.5),
            "injected": faulty_vce.chaos_controller.report(),
            "retransmissions": faulty_vce.network.retransmissions,
            "makespan_faulty": faulty_run.app.makespan,
            "makespan_calm": calm_run.app.makespan,
        }

    result = once(benchmark, experiment)
    latencies = result["latencies"]
    ratio = result["makespan_faulty"] / result["makespan_calm"]
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["recoveries", len(latencies)],
                ["recovery latency mean (s)", f"{statistics.mean(latencies):.3f}"],
                ["recovery latency max (s)", f"{max(latencies):.3f}"],
                ["makespan fault-free (s)", f"{result['makespan_calm']:.2f}"],
                ["makespan under faults (s)", f"{result['makespan_faulty']:.2f}"],
                ["makespan penalty", f"{ratio:.2f}x"],
            ],
            title="E9c: task recovery under a daemon crash-restart",
        )
    )

    RESULT_PATH.write_text(
        json.dumps(
            {
                "workload": "4-stage pipeline (stage_work=20) on ws:8, seed 15, "
                            "bounce of the executing host (down 4 s)",
                "injected_faults": result["injected"],
                "recoveries": len(latencies),
                "recovery_latency_seconds": {
                    "mean": statistics.mean(latencies),
                    "p50": statistics.median(latencies),
                    "max": max(latencies),
                    "samples": latencies,
                },
                "histogram": {
                    "count": result["histogram_count"],
                    "p50": result["histogram_p50"],
                },
                "retransmissions": result["retransmissions"],
                "makespan_seconds": {
                    "fault_free": result["makespan_calm"],
                    "under_faults": result["makespan_faulty"],
                    "penalty_ratio": ratio,
                },
            },
            indent=2,
        )
        + "\n"
    )
    assert result["injected"].get("crash") == 1
    assert latencies, "the bounce never stranded a task"
    # detection delay (2 s) dominates; anything near the lease (8 s) means
    # the failure handler missed the crash
    assert max(latencies) < 6.0
    assert ratio < 3.0
