"""E10 — channel mechanics (§4.2).

Three measurements on the channel substrate:

1. interposition overhead: per-message latency through 0, 1, and 2
   interposer stages (each stage = an extra network hop + processing);
2. redirection: a receiver is rebound mid-stream (the migration hook);
   messages keep flowing to the new endpoint and none are misdelivered
   after the rebind;
3. group vs individual addressing: the *same send call* reaches 1..16
   receivers — "clients may be unaware of whether messages are being
   received by groups or individuals".
"""

from benchmarks._common import once
from repro.channels import (
    ChannelDelivery,
    ChannelManager,
    DataConversionInterposer,
    Port,
    PortDirection,
)
from repro.metrics import format_series, format_table
from repro.netsim import Address, Network, SimProcess, Simulator


class Sink(SimProcess):
    def __init__(self, name):
        super().__init__(name)
        self.got = []

    def on_message(self, src, payload):
        if isinstance(payload, ChannelDelivery):
            self.got.append((self.now, payload.data))


def _one_hop_rig(n_stages: int, messages: int = 50):
    sim = Simulator(15)
    net = Network(sim)
    mgr = ChannelManager(net)
    chan = mgr.create("c")
    src_host = net.add_host("src")
    sink_host = net.add_host("dst")
    sink = Sink("sink")
    sink_host.spawn(sink)
    chan.attach(Port("rx", sink.address, PortDirection.RECEIVE))
    for i in range(n_stages):
        ihost = net.add_host(f"i{i}")
        stage = DataConversionInterposer(f"conv{i}", seconds_per_byte=1e-7)
        ihost.spawn(stage)
        sim.run(until=sim.now + 0.01)
        chan.split(stage)
    tx = Port("tx", Address("src", "nobody"), PortDirection.SEND)
    start = sim.now
    for i in range(messages):
        chan.send(tx, i, size=1000)
    sim.run()
    assert len(sink.got) == messages
    # all messages were injected at the same instant, so each arrival time
    # minus start is that message's end-to-end delivery latency
    return sum(t - start for t, _ in sink.got) / messages


def bench_e10_interposition_overhead(benchmark):
    def experiment():
        return {n: _one_hop_rig(n) for n in (0, 1, 2)}

    results = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["interposer stages", "mean delivery latency (s)"],
            [[n, v] for n, v in results.items()],
            title="E10: channel splitting cost",
        )
    )
    # each stage adds roughly one hop of latency
    assert results[0] < results[1] < results[2]
    hop = results[1] - results[0]
    assert abs((results[2] - results[1]) - hop) < hop  # ~linear in stages


def bench_e10_redirection_midstream(benchmark):
    def experiment():
        sim = Simulator(16)
        net = Network(sim)
        chan = ChannelManager(net).create("c")
        src = net.add_host("src")
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        old, new = Sink("old"), Sink("new")
        h1.spawn(old)
        h2.spawn(new)
        chan.attach(Port("rx", old.address, PortDirection.RECEIVE))
        tx = Port("tx", Address("src", "nobody"), PortDirection.SEND)
        for i in range(20):
            chan.send(tx, ("pre", i))
        sim.run()
        chan.rebind("rx", new.address)  # the migration hook
        for i in range(20):
            chan.send(tx, ("post", i))
        sim.run()
        return [d for _, d in old.got], [d for _, d in new.got]

    old_got, new_got = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["endpoint", "pre-rebind msgs", "post-rebind msgs"],
            [
                ["old receiver", sum(1 for k, _ in old_got if k == "pre"),
                 sum(1 for k, _ in old_got if k == "post")],
                ["new receiver", sum(1 for k, _ in new_got if k == "pre"),
                 sum(1 for k, _ in new_got if k == "post")],
            ],
            title="E10b: mid-stream port redirection",
        )
    )
    assert [k for k, _ in old_got] == ["pre"] * 20
    assert [k for k, _ in new_got] == ["post"] * 20


def bench_e10_group_addressing(benchmark):
    """Identical send call; 1..16 attached receivers."""

    def _fanout(n):
        sim = Simulator(17)
        net = Network(sim)
        chan = ChannelManager(net).create("c")
        net.add_host("src")
        sinks = []
        for i in range(n):
            host = net.add_host(f"r{i}")
            sink = Sink(f"s{i}")
            host.spawn(sink)
            chan.attach(Port(f"rx{i}", sink.address, PortDirection.RECEIVE))
            sinks.append(sink)
        tx = Port("tx", Address("src", "nobody"), PortDirection.SEND)
        chan.send(tx, "hello", size=500)  # the SAME call regardless of n
        sim.run()
        assert all(len(s.got) == 1 for s in sinks)
        return max(t for s in sinks for t, _ in s.got)

    def experiment():
        return {n: _fanout(n) for n in (1, 2, 4, 8, 16)}

    results = once(benchmark, experiment)
    print()
    print(format_series("group-delivery completion (s)",
                        list(results), list(results.values())))
    # one send reaches any group size; completion time stays ~flat because
    # copies travel in parallel
    assert results[16] < 3 * results[1] + 0.01
