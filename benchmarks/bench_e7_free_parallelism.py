"""E7 — free parallelism (§4.5).

"If 100 idle machines are available and the only way to use them is to
distribute a single application over all 100 machines to realize a 10%
speed-up, it is still worth doing because the 10% speed-up comes for
'free'."

A fixed-size Monte Carlo job is spread over 1..32 idle workstations. The
per-worker fixed costs (allocation, collectives over more ranks, stage-in)
erode efficiency as the farm widens — yet speedup keeps growing: the
paper's point. Reported: speedup and efficiency vs machine count.
"""

from benchmarks._common import finish, fresh_vce, once, workstations
from repro.metrics import format_series, format_table
from repro.workloads import build_monte_carlo_graph

TOTAL_WORK = 240.0
FARM_SIZES = [1, 2, 4, 8, 16, 32]


def _run_farm(n: int, seed=10):
    vce = fresh_vce(workstations(n), seed=seed)
    batches = 20
    graph = build_monte_carlo_graph(
        workers=n,
        samples_per_worker=12_000 // n,
        batches=batches,
        work_per_batch=TOTAL_WORK / n / batches,
        sync_every_batch=True,  # periodic estimate combining: the overhead
        sync_size=40_000,       # that erodes efficiency as the farm widens
    )
    run = vce.submit(graph)
    finish(vce, run, timeout=10_000.0)
    return run.app.makespan


def bench_e7_free_parallelism(benchmark):
    def experiment():
        return {n: _run_farm(n) for n in FARM_SIZES}

    makespans = once(benchmark, experiment)
    t1 = makespans[1]
    rows = [
        [n, makespans[n], t1 / makespans[n], t1 / makespans[n] / n]
        for n in FARM_SIZES
    ]
    print()
    print(
        format_table(
            ["machines", "makespan (s)", "speedup", "efficiency"],
            rows,
            title=f"E7: fixed {TOTAL_WORK:.0f}s Monte Carlo job over idle machines",
        )
    )
    print(format_series("speedup", FARM_SIZES, [t1 / makespans[n] for n in FARM_SIZES]))

    speedups = [t1 / makespans[n] for n in FARM_SIZES]
    efficiencies = [s / n for s, n in zip(speedups, FARM_SIZES)]
    # speedup keeps rising with every doubling — the "free" gain
    for a, b in zip(speedups, speedups[1:]):
        assert b > a
    # while efficiency decays — on dedicated hardware you'd stop; on idle
    # machines you don't care
    assert efficiencies[-1] < 0.8 * efficiencies[0]
    assert speedups[-1] > 4.0
