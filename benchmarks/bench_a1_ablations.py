"""A1 — ablations over the design knobs DESIGN.md calls out.

1. **Checkpoint interval** (§4.4): frequent checkpoints cost steady-state
   overhead but bound the work lost at migration; sparse ones are cheap
   until you migrate. The sweep exposes the trade-off curve.
2. **Redundancy degree** (§4.4 redundant execution): more copies mean
   faster effective completion under machine churn but proportionally more
   burned capacity.
3. **Bidding busy-threshold** (§5 "not already excessively loaded"): too
   low and loaded-but-usable machines never bid (allocation failures); too
   high and work lands on busy machines (slow makespans).
"""

from benchmarks._common import fresh_vce, once, workstations
from repro.machines import ConstantLoad
from repro.metrics import format_table
from repro.migration import CheckpointMigration, MigrationContext, RedundantExecutionManager
from repro.runtime import AppStatus
from repro.scheduler import DaemonConfig
from repro.scheduler.execution_program import RunState
from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass
from repro.vmpi import Checkpoint, Compute

from tests.conftest import make_cluster, place_all_on


# ------------------------------------------------------- checkpoint interval

WORK = 60.0
MIGRATE_AT = 23.0
CKPT_COST_PER_UNIT = 0.05  # seconds of overhead per checkpoint (big state)


def _checkpointed_run(interval: float, migrate: bool):
    def program(ctx):
        done = ctx.restored_state or 0.0
        while done < WORK:
            chunk = min(interval, WORK - done)
            yield Compute(chunk)
            done += chunk
            yield Checkpoint(done, size=int(CKPT_COST_PER_UNIT / 2e-8))
        return done

    cluster = make_cluster(2)
    graph = ProblemSpecification(f"ck{interval}-{migrate}").task("job", work=WORK).build()
    node = graph.task("job")
    node.problem_class = ProblemClass.ASYNCHRONOUS
    node.language = "py"
    node.program = program
    app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
    if migrate:
        cluster.run(until=MIGRATE_AT)
        CheckpointMigration(
            MigrationContext(cluster.manager, cluster.net)
        ).migrate(app, app.record("job", 0), "ws1")
    cluster.run()
    assert app.status is AppStatus.DONE
    return app.makespan


def bench_a1_checkpoint_interval(benchmark):
    intervals = [1.0, 5.0, 10.0, 30.0]

    def experiment():
        return {
            i: (_checkpointed_run(i, migrate=False), _checkpointed_run(i, migrate=True))
            for i in intervals
        }

    results = once(benchmark, experiment)
    rows = [
        [i, quiet, migrated, migrated - quiet]
        for i, (quiet, migrated) in results.items()
    ]
    print()
    print(
        format_table(
            ["ckpt interval (s)", "makespan quiet (s)", "makespan w/ migration (s)",
             "migration penalty (s)"],
            rows,
            title="A1: checkpoint-interval trade-off (60s job, migrate at t=23)",
        )
    )
    quiet = {i: q for i, (q, _) in results.items()}
    penalty = {i: m - q for i, (q, m) in results.items()}
    # steady-state overhead decreases with sparser checkpoints...
    assert quiet[1.0] > quiet[30.0]
    # ...but the work lost at migration grows
    assert penalty[30.0] > penalty[1.0]


# ---------------------------------------------------------- redundancy degree


def bench_a1_redundancy_degree(benchmark):
    """k redundant copies on machines that may crash: completion
    probability/latency vs burned capacity."""

    def _run(copies: int, crash_primary: bool = True, seed=21):
        cluster = make_cluster(4, seed=seed)
        graph = ProblemSpecification(f"red{copies}").task("job", work=30.0).build()
        node = graph.task("job")
        node.problem_class = ProblemClass.ASYNCHRONOUS
        node.language = "py"

        def program(ctx):
            yield Compute(30.0)
            return "ok"

        node.program = program
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        mgr = RedundantExecutionManager(
            MigrationContext(cluster.manager, cluster.net)
        ).install()  # copies absorb primary failures
        cluster.run(until=1.0)
        record = app.record("job", 0)
        if copies > 1:
            mgr.dispatch_redundant(app, record, [f"ws{i}" for i in range(1, copies)])
        if crash_primary:
            cluster.run(until=10.0)
            cluster.hosts["ws0"].crash()
        cluster.run(until=200.0)
        survived = app.status is AppStatus.DONE
        return survived, (app.makespan if survived else None), copies

    def experiment():
        return {k: _run(k) for k in (1, 2, 3)}

    results = once(benchmark, experiment)
    rows = [
        [k, "yes" if ok else "NO", ms if ms is not None else "-", k]
        for k, (ok, ms, _) in results.items()
    ]
    print()
    print(
        format_table(
            ["copies", "survived primary crash", "makespan (s)", "capacity used (machines)"],
            rows,
            title="A1b: redundant-execution degree under a primary crash at t=10",
        )
    )
    # one copy: the crash kills the job; with redundancy it completes
    assert results[1][0] is False
    assert results[2][0] is True and results[3][0] is True


# -------------------------------------------------------------- busy threshold


def bench_a1_busy_threshold(benchmark):
    """Sweep the daemon's 'excessively loaded' cutoff on a cluster whose
    machines carry 0.0 / 0.4 / 0.6 background load."""

    LOADS = [0.0, 0.55, 0.6, 0.6]

    def _run(threshold: float, seed=22):
        from repro.core import VCEConfig
        from repro.workloads import build_sweep_graph

        config = VCEConfig(seed=seed, daemon=DaemonConfig(busy_threshold=threshold))
        machines = workstations(4, loads=[ConstantLoad(l) for l in LOADS])
        vce = fresh_vce(machines, config=config)
        graph = build_sweep_graph(points=2, work_per_point=12.0, name=f"th{threshold}")
        run = vce.submit(graph)
        vce.run_to_completion(run, timeout=500.0)
        bids = vce.metrics().bid_counts()
        if bids:
            bid_count = bids[0]
        else:  # allocation failed: the error record carries how many bid
            err = vce.sim.log.first("sched.alloc_error")
            bid_count = err.get("available", 0) if err else 0
        makespan = run.app.makespan if run.state is RunState.DONE else None
        return makespan, bid_count

    def experiment():
        return {t: _run(t) for t in (0.2, 0.58, 0.9)}

    results = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["busy threshold", "machines bidding", "makespan (s)"],
            [
                [t, bids, ms if ms is not None else "ALLOC FAILED"]
                for t, (ms, bids) in results.items()
            ],
            title="A1c: bid threshold on a [0.0, 0.55, 0.6, 0.6]-loaded cluster",
        )
    )
    # too strict: only the idle machine qualifies and a 2-instance request
    # cannot be satisfied at all
    assert results[0.2][0] is None and results[0.2][1] <= 1
    # permissive thresholds admit progressively more bidders; allocation
    # succeeds and load-sorting still lands work on the lightest machines
    assert results[0.58][0] is not None and results[0.58][1] == 2
    assert results[0.9][0] is not None and results[0.9][1] == 4
    assert results[0.9][0] <= results[0.58][0] + 1.0