"""E3 — the §4.3 machine-A example: utilization-first placement.

"The first task can only run on a particular Unix workstation (call it
machine A) because of that machine's architecture. The second task can run
on any Unix workstation, but will run fastest on machine A. In this
situation the execution layer should run the first task on machine A.
Even if there are no other idle Unix workstations available the second job
should be made to wait."

Setup: machine A is the only one with the special attribute the
constrained task requires, and it is also the fastest machine (so a greedy
flexible task covets it). Utilization-first must serve the constrained
task from A and push the flexible task elsewhere — both run concurrently
and total throughput wins. Greedy gives A to the flexible task, stranding
the constrained one.
"""

from benchmarks._common import fresh_vce, once
from repro.machines import Machine, MachineClass
from repro.metrics import format_table
from repro.scheduler import greedy_assignment, utilization_first_assignment
from repro.scheduler.execution_program import RunState
from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass
from repro.vmpi import Compute


def _machines():
    # machine A: fast and uniquely capable
    machines = [
        Machine("A", MachineClass.WORKSTATION, speed=4.0, memory_mb=512,
                attributes={"special_fpu": True}),
        Machine("B", MachineClass.WORKSTATION, speed=1.0, memory_mb=512),
    ]
    return machines


def _graph(name):
    # the flexible task is declared (and therefore considered) first —
    # greedy placement is order-sensitive, which is exactly its §4.3 flaw
    spec = (
        ProblemSpecification(name)
        .task("flexible", work=40.0)
        .task("constrained", work=40.0, requirements={"special_fpu": True})
    )
    graph = spec.build()
    for node in graph:
        node.problem_class = ProblemClass.ASYNCHRONOUS
        node.language = "py"
        work = node.work

        def program(ctx, w=work):
            yield Compute(w)

        node.program = program
    return graph


def _run(policy, seed=7):
    vce = fresh_vce(_machines(), seed=seed)
    run = vce.submit(_graph(policy.__name__), policy=policy)
    vce.run_to_completion(run, timeout=500.0)
    return vce, run


def bench_e3_machine_a_example(benchmark):
    def experiment():
        vce_u, run_u = _run(utilization_first_assignment)
        vce_g, run_g = _run(greedy_assignment)
        return {
            "utilization-first": (vce_u, run_u),
            "greedy": (vce_g, run_g),
        }

    results = once(benchmark, experiment)
    rows = []
    for name, (vce, run) in results.items():
        placement = (
            {k: v for k, v in run.placement.assignments.items()}
            if run.placement
            else {}
        )
        rows.append(
            [
                name,
                run.state.value,
                placement.get(("constrained", 0), "-"),
                placement.get(("flexible", 0), "-"),
                run.app.makespan if run.app and run.app.makespan else "-",
            ]
        )
    print()
    print(
        format_table(
            ["policy", "outcome", "constrained on", "flexible on", "makespan (s)"],
            rows,
            title="E3: the machine-A scenario (§4.3)",
        )
    )

    vce_u, run_u = results["utilization-first"]
    vce_g, run_g = results["greedy"]
    # utilization-first: both run, constrained on A, flexible pushed to B
    assert run_u.state is RunState.DONE
    assert run_u.placement.host_for("constrained", 0) == "A"
    assert run_u.placement.host_for("flexible", 0) == "B"
    # greedy: the flexible task grabbed fast machine A; the constrained task
    # has nowhere to run and the allocation fails
    assert run_g.state is RunState.FAILED
    assert "unplaced" in (run_g.error or "")
