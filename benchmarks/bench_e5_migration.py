"""E5 — the four process-migration schemes compared (§4.4).

One checkpointing task is migrated mid-run between two machines under each
scheme. Reported: the migration latency (time until the task runs at the
destination) and the completion overhead (extra makespan vs an unmigrated
run). Expected shape, straight from the paper:

- redundant: ~zero latency ("low overhead ... avoids the communication
  overhead of moving a process and its state");
- dump: transfer-bound, exact (no recomputation), homogeneous only;
- checkpoint: restore cost plus recomputation since the last record
  ("expensive and may require the cooperation of the task");
- recompile: compile-time-bound ("very expensive but may be very robust")
  — unless a binary was prepared anticipatorily.
"""

from benchmarks._common import once
from repro.compilation import CompilationManager
from repro.machines import MachineClass
from repro.metrics import format_table
from repro.migration import (
    CheckpointMigration,
    DumpMigration,
    MigrationContext,
    RecompileMigration,
    RedundantExecutionManager,
)
from repro.runtime import AppStatus
from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass
from repro.vmpi import Checkpoint, Compute

from tests.conftest import make_cluster, place_all_on

WORK = 60.0
MIGRATE_AT = 25.0  # between checkpoints: the checkpoint scheme loses work
CHECKPOINT_EVERY = 10.0  # sparse, as real long-running jobs checkpoint


def _graph(name, language="hpf", memory_mb=16):
    def program(ctx):
        done = ctx.restored_state or 0.0
        while done < WORK:
            yield Compute(CHECKPOINT_EVERY)
            done += CHECKPOINT_EVERY
            yield Checkpoint(done, size=500_000)
        return done

    graph = ProblemSpecification(name).task("job", work=WORK, memory_mb=memory_mb).build()
    node = graph.task("job")
    node.problem_class = ProblemClass.ASYNCHRONOUS
    node.language = language
    node.program = program
    return graph


def _baseline():
    cluster = make_cluster(2)
    graph = _graph("base")
    app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
    cluster.run()
    assert app.status is AppStatus.DONE
    return app.makespan


def _migrated(scheme_factory, prepare=None):
    cluster = make_cluster(2)
    comp = CompilationManager(cluster.db)
    context = MigrationContext(cluster.manager, cluster.net, comp)
    graph = _graph("mig")
    if prepare:
        prepare(comp, graph)
    app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
    scheme = scheme_factory(context)
    latencies = []
    if isinstance(scheme, RedundantExecutionManager):
        cluster.run(until=1.0)
        scheme.dispatch_redundant(app, app.record("job", 0), ["ws1"])
    cluster.run(until=MIGRATE_AT)
    scheme.migrate(app, app.record("job", 0), "ws1", on_done=latencies.append)
    cluster.run()
    assert app.status is AppStatus.DONE, "migrated app failed"
    assert app.record("job", 0).host_name == "ws1"
    return latencies[0], app.makespan


def bench_e5_scheme_comparison(benchmark):
    def experiment():
        baseline = _baseline()
        rows = {}
        rows["redundant"] = _migrated(RedundantExecutionManager)
        rows["dump"] = _migrated(DumpMigration)
        rows["checkpoint"] = _migrated(CheckpointMigration)
        rows["recompile (cold)"] = _migrated(
            lambda ctx: RecompileMigration(ctx, use_checkpoint=True)
        )
        rows["recompile (anticipatory)"] = _migrated(
            lambda ctx: RecompileMigration(ctx, use_checkpoint=True),
            prepare=lambda comp, graph: comp.compile_all(comp.plan(graph)),
        )
        return baseline, rows

    baseline, rows = once(benchmark, experiment)
    table = [
        [name, latency, makespan - baseline]
        for name, (latency, makespan) in rows.items()
    ]
    print()
    print(
        format_table(
            ["scheme", "migration latency (s)", "makespan overhead vs no-migration (s)"],
            table,
            title=f"E5: migrating a {WORK:.0f}s task at t={MIGRATE_AT:.0f}s "
                  f"(baseline makespan {baseline:.1f}s)",
        )
    )

    lat = {name: latency for name, (latency, _) in rows.items()}
    over = {name: makespan - baseline for name, (_, makespan) in rows.items()}
    # paper-predicted cost structure:
    # redundant — free: an already-running copy is adopted instantly
    assert lat["redundant"] == 0.0
    assert over["redundant"] <= 1.5
    # checkpoint — restore is quick but the work since the last record is
    # recomputed ("expensive and may require the cooperation of the task")
    assert lat["checkpoint"] < 1.0
    assert over["checkpoint"] > CHECKPOINT_EVERY / 4  # real lost work
    # dump — pays the full image transfer (frozen) but loses nothing
    assert 5.0 < lat["dump"] < lat["recompile (cold)"]
    assert abs(over["dump"] - lat["dump"]) < 2.0
    # recompile — dominated by compile time... unless a binary was prepared
    # anticipatorily (§4.5), which collapses it to near-checkpoint cost
    assert lat["recompile (cold)"] > 15.0
    assert over["recompile (cold)"] >= max(
        over["dump"], over["checkpoint"], over["redundant"]
    )
    assert lat["recompile (anticipatory)"] < lat["recompile (cold)"] / 5


def bench_e5_dump_requires_homogeneity(benchmark):
    """Dump refuses a heterogeneous pair while recompile succeeds — the
    robustness/cost trade the paper describes."""

    def experiment():
        cluster = make_cluster(1, extra_machines=[("mimd0", MachineClass.MIMD, 10.0)])
        comp = CompilationManager(cluster.db)
        context = MigrationContext(cluster.manager, cluster.net, comp)
        graph = _graph("cross", language="hpf")
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=MIGRATE_AT)
        record = app.record("job", 0)
        dump_ok, dump_reason = DumpMigration(context).can_migrate(app, record, "mimd0")
        rec = RecompileMigration(context, use_checkpoint=True)
        rec_ok, _ = rec.can_migrate(app, record, "mimd0")
        rec.migrate(app, record, "mimd0")
        cluster.run()
        return dump_ok, dump_reason, rec_ok, app.status, record.host_name

    dump_ok, dump_reason, rec_ok, status, host = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["scheme", "workstation -> MIMD migration"],
            [
                ["dump", f"refused ({dump_reason[:40]}...)"],
                ["recompile", f"succeeded, finished on {host}"],
            ],
            title="E5b: heterogeneous migration robustness",
        )
    )
    assert not dump_ok and "homogeneity" in dump_reason
    assert rec_ok and status is AppStatus.DONE and host == "mimd0"
