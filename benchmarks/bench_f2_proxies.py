"""F2 — communication via proxies (Figure 2).

Compares, between two workstations:

- raw channel messaging (one Send + one Recv each way);
- proxy method invocation (client stub → server dispatch → typed reply);
- proxy invocation across a data-conversion interposer (the heterogeneous
  case the figure motivates).

Shape: proxies add a small constant over raw messaging (marshalling +
dispatch); the conversion interposer adds per-byte cost and one extra
network hop.
"""

from benchmarks._common import fresh_vce, once, workstations
from repro.channels import DataConversionInterposer
from repro.metrics import format_table
from repro.objects import ClientStub, parse_idl, serve
from repro.runtime import Placement
from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass
from repro.vmpi import Recv, Send

CALLS = 50

IDL = "interface Echo { ping(payload: string) -> string; }"


def _two_task_graph(client_program, server_program, name):
    spec = ProblemSpecification(name).task("client").task("server")
    spec.stream("client", "server", channel="wire")
    graph = spec.build()
    for task, program in (("client", client_program), ("server", server_program)):
        node = graph.task(task)
        node.problem_class = ProblemClass.ASYNCHRONOUS
        node.language = "py"
        node.program = program
    return graph


def _run_two_tasks(graph, interposer_bytes=None, seed=4):
    vce = fresh_vce(workstations(3), seed=seed)
    channel = vce.runtime.channels.get_or_create("wire")
    if interposer_bytes is not None:
        conv = DataConversionInterposer("conv", seconds_per_byte=interposer_bytes)
        vce.network.host("ws2").spawn(conv)
        vce.run(until=vce.sim.now + 0.1)
        channel.split(conv)
    placement = Placement()
    placement.assign("client", 0, "ws0")
    placement.assign("server", 0, "ws1")
    app = vce.runtime.submit(graph, placement)
    t0 = vce.sim.now
    vce.run(until=vce.sim.now + 600.0, stop_when=lambda: app.status.terminal)
    assert app.all_done, "app did not complete"
    return (app.completed_at - t0) / CALLS


def _raw_roundtrip_time():
    def client(ctx):
        for i in range(CALLS):
            yield Send(dst="server[0]", data=f"m{i}", channel="wire", tag="q")
            yield Recv(channel="wire", tag="a")

    def server(ctx):
        for _ in range(CALLS):
            src, _ = yield Recv(channel="wire", tag="q")
            yield Send(dst=src, data="ok", channel="wire", tag="a")

    return _run_two_tasks(_two_task_graph(client, server, "raw"))


def _proxy_roundtrip_time(interposer_bytes=None):
    iface = parse_idl(IDL)["Echo"]

    def client(ctx):
        stub = ClientStub(iface, "wire", "server[0]")
        for i in range(CALLS):
            yield from stub.invoke(ctx, "ping", f"m{i}")
        yield from stub.shutdown(ctx)

    class Servant:
        def ping(self, payload):
            return payload

    def server(ctx):
        yield from serve(ctx, Servant(), iface, "wire")

    return _run_two_tasks(
        _two_task_graph(client, server, "proxy"), interposer_bytes=interposer_bytes
    )


def bench_f2_proxy_overhead(benchmark):
    def experiment():
        return {
            "raw channel": _raw_roundtrip_time(),
            "proxy RPC": _proxy_roundtrip_time(),
            "proxy + conversion interposer": _proxy_roundtrip_time(interposer_bytes=1e-6),
        }

    times = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["path", "per-call latency (sim s)"],
            [[k, v] for k, v in times.items()],
            title="F2: method invocation cost via proxies",
        )
    )
    raw = times["raw channel"]
    proxy = times["proxy RPC"]
    interposed = times["proxy + conversion interposer"]
    # proxy invocation costs within a small constant of raw messaging
    # (marshalling is cheap relative to wire latency); splitting the channel
    # with a conversion interposer adds an extra hop and per-byte work
    assert abs(proxy - raw) / raw < 0.25
    assert interposed > proxy
    assert interposed < 4 * raw
