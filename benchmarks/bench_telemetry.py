"""Telemetry overhead — E1's weather workload with telemetry off vs. on.

The live registry, cluster sampler, and watchdog run inside the hot
simulation loop, so their cost must stay a small fraction of a run.
This benchmark times the full E1 weather experiment both ways and
asserts the overhead is < 10%, recording the numbers in
``BENCH_telemetry.json`` at the repo root.

A single weather run is ~20 ms of wall clock, and shared/virtualised CI
hosts see one-sided contention bursts (co-tenants, vCPU time-slicing)
that dwarf the effect being measured. The protocol is built for that:

- every timed sample is a *batch* of runs (amortises per-run jitter),
- off/on batches are *paired* back-to-back with alternating order, so
  slow drift cancels instead of faking or masking a regression,
- two independent noise-robust estimators are computed — the median of
  paired batch ratios and the ratio of per-column minima over
  interleaved single runs. Contention can only inflate either one
  (a burst makes some column look slower; it never makes telemetry
  cheaper), so the smaller of the two is the better estimate of the
  true cost,
- a measurement that still exceeds the bound is re-taken (up to
  ``ATTEMPTS`` times, keeping the best) before the assert fires, so a
  burst that straddles one whole attempt does not fail the build.
"""

import gc
import json
import statistics
import time
from pathlib import Path

from benchmarks._common import finish, fresh_vce, once
from repro.core import heterogeneous_cluster
from repro.metrics import format_table
from repro.workloads import WEATHER_SCRIPT, weather_programs

PAIRS = 11  # paired off/on batches per attempt
BATCH = 6  # weather runs per timed batch
SINGLES = 30  # interleaved single runs per column for the min estimator
ATTEMPTS = 3  # re-measure on a suspected contention burst
MAX_OVERHEAD = 0.10

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"


def _weather_run(telemetry: bool) -> float:
    """One full E1 weather run; returns its wall-clock seconds."""
    t0 = time.perf_counter()
    vce = fresh_vce(
        heterogeneous_cluster(n_workstations=6), seed=5, telemetry=telemetry
    )
    run = vce.run_script(
        WEATHER_SCRIPT,
        weather_programs(predict_work=200.0),
        works={"collector": 20, "usercollect": 10, "predictor": 200, "display": 2},
        name="snow",
    )
    finish(vce, run)
    elapsed = time.perf_counter() - t0
    if telemetry:
        # sanity: the run actually produced live metrics
        assert vce.telemetry is not None
        assert vce.telemetry.sampler.ticks > 0
        assert vce.telemetry.registry.get("task_duration_seconds") is not None
    else:
        assert vce.sim.telemetry is None
    return elapsed


def _batch(telemetry: bool) -> float:
    gc.collect()
    t0 = time.perf_counter()
    for _ in range(BATCH):
        _weather_run(telemetry)
    return time.perf_counter() - t0


def _measure() -> dict:
    """One full measurement: paired-median and min-ratio estimators."""
    offs, ons = [], []
    for _ in range(SINGLES):
        offs.append(_weather_run(telemetry=False))
        ons.append(_weather_run(telemetry=True))
    min_ratio = min(ons) / min(offs)

    ratios = []
    for i in range(PAIRS):
        if i % 2 == 0:
            off = _batch(telemetry=False)
            on = _batch(telemetry=True)
        else:
            on = _batch(telemetry=True)
            off = _batch(telemetry=False)
        ratios.append(on / off)
    paired_median = statistics.median(ratios)

    return {
        "off": min(offs),
        "on": min(ons),
        "min_ratio": min_ratio - 1.0,
        "paired_median": paired_median - 1.0,
        "overhead": min(min_ratio, paired_median) - 1.0,
    }


def bench_telemetry_overhead(benchmark):
    def experiment():
        # warm imports/caches off the clock
        _weather_run(telemetry=False)
        _weather_run(telemetry=True)
        best = None
        for attempt in range(1, ATTEMPTS + 1):
            result = _measure()
            if best is None or result["overhead"] < best["overhead"]:
                best = result
                best["attempts"] = attempt
            if best["overhead"] < MAX_OVERHEAD:
                break
        return best

    result = once(benchmark, experiment)
    overhead = result["overhead"]
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["telemetry off (min, s)", f"{result['off']:.4f}"],
                ["telemetry on (min, s)", f"{result['on']:.4f}"],
                ["overhead (paired median)", f"{result['paired_median'] * 100:+.2f}%"],
                ["overhead (min ratio)", f"{result['min_ratio'] * 100:+.2f}%"],
                ["overhead (reported)", f"{overhead * 100:+.2f}%"],
            ],
            title="telemetry overhead (weather E1)",
        )
    )

    RESULT_PATH.write_text(
        json.dumps(
            {
                "workload": "bench_e1_weather (weather script, hetero:6,2,1, seed 5)",
                "protocol": {
                    "pairs": PAIRS,
                    "batch": BATCH,
                    "singles": SINGLES,
                    "attempts": result["attempts"],
                },
                "telemetry_off_seconds": result["off"],
                "telemetry_on_seconds": result["on"],
                "overhead_paired_median": result["paired_median"],
                "overhead_min_ratio": result["min_ratio"],
                "overhead_fraction": overhead,
                "bound": MAX_OVERHEAD,
            },
            indent=2,
        )
        + "\n"
    )
    assert overhead < MAX_OVERHEAD, (
        f"telemetry overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"(off {result['off']:.4f}s, on {result['on']:.4f}s)"
    )
