"""Telemetry + control-plane overhead on E1's weather workload.

The live registry, cluster sampler, and watchdog run inside the hot
simulation loop, so their cost must stay a small fraction of a run —
and the control-plane hub (entity model + subscription fan-out) rides
the same loop through its log observer, so it gets the same treatment.
Two gates, both < 10%, recorded per-section in ``BENCH_telemetry.json``
at the repo root:

- ``telemetry``: telemetry off vs. on (the sampler/watchdog/registry),
- ``controlplane``: telemetry on vs. telemetry on **plus** an attached
  :class:`~repro.controlplane.entities.ControlPlaneModel` with a slow
  bounded subscriber — the worst case, where every published event pays
  the translate + offer + drop-oldest path,
- ``sanitizer``: telemetry on vs. telemetry on **plus** the happens-before
  sanitizer (``VCEConfig.hb_sanitizer``) — the schedule-parent appends on
  every scheduling fast path, the instrumented read/write notes, and the
  protocol-FSM log observer together must stay under the same bound.

A single weather run is ~20 ms of wall clock, and shared/virtualised CI
hosts see one-sided contention bursts (co-tenants, vCPU time-slicing)
that dwarf the effect being measured. The protocol is built for that:

- every timed sample is a *batch* of runs (amortises per-run jitter),
- off/on batches are *paired* back-to-back with alternating order, so
  slow drift cancels instead of faking or masking a regression,
- two independent noise-robust estimators are computed — the median of
  paired batch ratios and the ratio of per-column minima over
  interleaved single runs. Contention can only inflate either one
  (a burst makes some column look slower; it never makes telemetry
  cheaper), so the smaller of the two is the better estimate of the
  true cost,
- a measurement that still exceeds the bound is re-taken (up to
  ``ATTEMPTS`` times, keeping the best) before the assert fires, so a
  burst that straddles one whole attempt does not fail the build.
"""

import gc
import json
import statistics
import time
from pathlib import Path

from benchmarks._common import finish, fresh_vce, once
from repro.core import heterogeneous_cluster
from repro.metrics import format_table
from repro.workloads import WEATHER_SCRIPT, weather_programs

PAIRS = 11  # paired off/on batches per attempt
BATCH = 6  # weather runs per timed batch
SINGLES = 30  # interleaved single runs per column for the min estimator
ATTEMPTS = 3  # re-measure on a suspected contention burst
MAX_OVERHEAD = 0.10

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"


def _weather_run(
    telemetry: bool, controlplane: bool = False, hb_sanitizer: bool = False
) -> float:
    """One full E1 weather run; returns its wall-clock seconds."""
    t0 = time.perf_counter()
    vce = fresh_vce(
        heterogeneous_cluster(n_workstations=6), seed=5,
        telemetry=telemetry, hb_sanitizer=hb_sanitizer,
    )
    if controlplane:
        from repro.controlplane import ControlPlaneModel

        model = ControlPlaneModel(vce).attach()
        # a slow subscriber that never drains: every publish beyond the
        # queue limit pays the full drop-oldest path
        slow = model.hub.subscribe("bench-slow", limit=64)
    run = vce.run_script(
        WEATHER_SCRIPT,
        weather_programs(predict_work=200.0),
        works={"collector": 20, "usercollect": 10, "predictor": 200, "display": 2},
        name="snow",
    )
    finish(vce, run)
    elapsed = time.perf_counter() - t0
    if controlplane:
        assert model.hub.published > 0 and slow.matched > 0
    if hb_sanitizer:
        # sanity: the tracker actually followed the run
        assert vce.hb_tracker is not None and vce.hb_tracker.nodes > 100
        assert vce.protocol_monitor is not None
    if telemetry:
        # sanity: the run actually produced live metrics
        assert vce.telemetry is not None
        assert vce.telemetry.sampler.ticks > 0
        assert vce.telemetry.registry.get("task_duration_seconds") is not None
    else:
        assert vce.sim.telemetry is None
    return elapsed


def _batch(**kw) -> float:
    gc.collect()
    t0 = time.perf_counter()
    for _ in range(BATCH):
        _weather_run(**kw)
    return time.perf_counter() - t0


def _measure(base_kw: dict, loaded_kw: dict) -> dict:
    """One full measurement of *loaded_kw* relative to *base_kw*:
    paired-median and min-ratio estimators."""
    offs, ons = [], []
    for _ in range(SINGLES):
        offs.append(_weather_run(**base_kw))
        ons.append(_weather_run(**loaded_kw))
    min_ratio = min(ons) / min(offs)

    ratios = []
    for i in range(PAIRS):
        if i % 2 == 0:
            off = _batch(**base_kw)
            on = _batch(**loaded_kw)
        else:
            on = _batch(**loaded_kw)
            off = _batch(**base_kw)
        ratios.append(on / off)
    paired_median = statistics.median(ratios)

    return {
        "off": min(offs),
        "on": min(ons),
        "min_ratio": min_ratio - 1.0,
        "paired_median": paired_median - 1.0,
        "overhead": min(min_ratio, paired_median) - 1.0,
    }


def _gate(benchmark, section: str, labels: tuple[str, str], base_kw: dict, loaded_kw: dict):
    """Measure, print, record under *section* in BENCH_telemetry.json,
    and assert the < MAX_OVERHEAD bound."""

    def experiment():
        # warm imports/caches off the clock
        _weather_run(**base_kw)
        _weather_run(**loaded_kw)
        best = None
        for attempt in range(1, ATTEMPTS + 1):
            result = _measure(base_kw, loaded_kw)
            if best is None or result["overhead"] < best["overhead"]:
                best = result
                best["attempts"] = attempt
            if best["overhead"] < MAX_OVERHEAD:
                break
        return best

    result = once(benchmark, experiment)
    overhead = result["overhead"]
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                [f"{labels[0]} (min, s)", f"{result['off']:.4f}"],
                [f"{labels[1]} (min, s)", f"{result['on']:.4f}"],
                ["overhead (paired median)", f"{result['paired_median'] * 100:+.2f}%"],
                ["overhead (min ratio)", f"{result['min_ratio'] * 100:+.2f}%"],
                ["overhead (reported)", f"{overhead * 100:+.2f}%"],
            ],
            title=f"{section} overhead (weather E1)",
        )
    )

    try:
        recorded = json.loads(RESULT_PATH.read_text())
    except (OSError, ValueError):
        recorded = {}
    if "telemetry_off_seconds" in recorded:  # migrate the pre-sectioned flat layout
        recorded = {}
    recorded["workload"] = "bench_e1_weather (weather script, hetero:6,2,1, seed 5)"
    recorded[section] = {
        "baseline": labels[0],
        "loaded": labels[1],
        "protocol": {
            "pairs": PAIRS,
            "batch": BATCH,
            "singles": SINGLES,
            "attempts": result["attempts"],
        },
        "baseline_seconds": result["off"],
        "loaded_seconds": result["on"],
        "overhead_paired_median": result["paired_median"],
        "overhead_min_ratio": result["min_ratio"],
        "overhead_fraction": overhead,
        "bound": MAX_OVERHEAD,
    }
    RESULT_PATH.write_text(json.dumps(recorded, indent=2) + "\n")
    assert overhead < MAX_OVERHEAD, (
        f"{section} overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"(off {result['off']:.4f}s, on {result['on']:.4f}s)"
    )


def bench_telemetry_overhead(benchmark):
    _gate(
        benchmark,
        "telemetry",
        ("telemetry off", "telemetry on"),
        {"telemetry": False},
        {"telemetry": True},
    )


def bench_controlplane_overhead(benchmark):
    """Hub-enabled overhead: the entity model + a never-draining bounded
    subscriber must cost < 10% on top of plain telemetry."""
    _gate(
        benchmark,
        "controlplane",
        ("telemetry on", "telemetry + hub"),
        {"telemetry": True},
        {"telemetry": True, "controlplane": True},
    )


def bench_sanitizer_overhead(benchmark):
    """Happens-before sanitizer overhead: HB tracking on every scheduled
    event, the instrumented access notes, and the protocol-FSM observer
    must cost < 10% on top of plain telemetry."""
    _gate(
        benchmark,
        "sanitizer",
        ("telemetry on", "telemetry + hb sanitizer"),
        {"telemetry": True},
        {"telemetry": True, "hb_sanitizer": True},
    )
