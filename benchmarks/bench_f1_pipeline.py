"""F1 — the Figure-1 layer stack, stage by stage.

Walks the weather application through every layer of the figure —
problem specification → design stage → coding level → compilation manager
→ runtime manager — and reports the cost attributable to each, in one
table. Shape: compilation dominates preparation; the runtime manager's
allocation adds milliseconds; execution dominates overall.
"""

from benchmarks._common import finish, fresh_vce, once
from repro.core import heterogeneous_cluster
from repro.metrics import format_table
from repro.sdm import CodingLevel, DesignStage, SoftwareDevelopmentModule, SourceModule
from repro.workloads.weather import weather_programs


def bench_f1_layer_stack(benchmark):
    def experiment():
        import time

        vce = fresh_vce(heterogeneous_cluster(n_workstations=6), seed=3)
        programs = weather_programs(predict_work=100.0)
        timings = {}

        # --- SDM: problem specification layer --------------------------------
        t0 = time.perf_counter()
        sdm = SoftwareDevelopmentModule()
        spec = (
            sdm.specification("weather")
            .task("collector", work=20, instances=2)
            .task("usercollect", work=10)
            # the user's hint that the model is lockstep data parallelism —
            # the design stage classifies it SYNCHRONOUS, routing it to SIMD
            .task("predictor", work=100, memory_mb=64,
                  requirements={"lockstep": True})
            .task("display", work=2, local=True)
            .flow("collector", "predictor", volume=4_000_000)
            .flow("usercollect", "predictor", volume=500_000)
            .flow("predictor", "display", volume=1_000_000)
        )
        graph = spec.build()
        timings["1 problem spec (wall ms)"] = (time.perf_counter() - t0) * 1e3

        # --- SDM: design stage -------------------------------------------------
        t0 = time.perf_counter()
        DesignStage().run(graph)
        timings["2 design stage (wall ms)"] = (time.perf_counter() - t0) * 1e3

        # --- SDM: coding level ---------------------------------------------------
        t0 = time.perf_counter()
        coding = CodingLevel()
        for task in ("collector", "usercollect", "predictor", "display"):
            coding.implement(task, SourceModule("hpf", programs[task], source_size=2000))
        coding.run(graph)
        timings["3 coding level (wall ms)"] = (time.perf_counter() - t0) * 1e3

        # --- EXM: compilation manager (simulated seconds) -----------------------
        plan = vce.compilation.plan(graph)
        timings["4 compilation (sim s)"] = vce.compilation.compile_all(plan, vce.sim.now)
        timings["4b binaries prepared"] = len(vce.compilation.cache)

        # --- EXM: runtime manager (simulated seconds) -----------------------------
        run = vce.submit(graph)
        finish(vce, run)
        timings["5 allocation (sim s)"] = run.allocation_latency
        timings["6 execution (sim s)"] = run.completed_at - run.allocated_at
        timings["makespan (sim s)"] = run.app.makespan
        return timings

    timings = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["layer / stage", "cost"],
            [[k, v] for k, v in timings.items()],
            title="F1: SDM/EXM layer costs for the weather application",
        )
    )
    # shapes: SDM layers are cheap local transformations; compilation is the
    # dominant preparation cost; allocation is tiny vs execution.
    assert timings["4 compilation (sim s)"] > 10.0
    assert timings["5 allocation (sim s)"] < 1.0
    assert timings["6 execution (sim s)"] > timings["5 allocation (sim s)"] * 5
    assert timings["4b binaries prepared"] >= 4
    # the lockstep hint routed the predictor to the 40x SIMD machine, so the
    # 100-unit model is not the makespan bottleneck
    assert timings["makespan (sim s)"] < 60.0
