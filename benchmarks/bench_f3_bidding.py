"""F3 — the runtime bidding mechanism (Figure 3).

Regenerates the figure's protocol as data: allocation latency and protocol
message count as the workstation group grows. The protocol is
constant-round (request → state-disclosure broadcast → bids → reply), so
latency should stay near-flat while messages grow linearly with group
size.
"""

from benchmarks._common import finish, fresh_vce, once, workstations
from repro.metrics import format_series, format_table
from repro.workloads import build_sweep_graph

GROUP_SIZES = [2, 4, 8, 16, 32, 64]


def _allocate_on_group(n: int):
    vce = fresh_vce(workstations(n), seed=1)
    messages_before = vce.network.messages_sent
    graph = build_sweep_graph(points=1, work_per_point=0.5, name=f"probe{n}")
    run = vce.submit(graph)
    vce.run(
        until=vce.sim.now + 60.0,
        stop_when=lambda: run.allocated_at is not None,
    )
    assert run.allocated_at is not None, "allocation never completed"
    finish(vce, run)
    return {
        "group": n,
        "alloc_latency": run.allocation_latency,
        "messages": vce.network.messages_sent - messages_before,
        "bids": vce.metrics().bid_counts()[0],
    }


def bench_f3_bidding_scaling(benchmark):
    def experiment():
        return [_allocate_on_group(n) for n in GROUP_SIZES]

    rows = once(benchmark, experiment)

    print()
    print(
        format_table(
            ["group size", "alloc latency (s)", "protocol msgs", "bids received"],
            [[r["group"], r["alloc_latency"], r["messages"], r["bids"]] for r in rows],
            title="F3: bidding allocation vs workstation-group size",
        )
    )
    print(format_series("alloc_latency", [r["group"] for r in rows],
                        [r["alloc_latency"] for r in rows]))

    # shape: every idle daemon bids; latency stays bounded (constant-round
    # protocol) while message count grows with the group
    for row in rows:
        assert row["bids"] == row["group"]
    latencies = [r["alloc_latency"] for r in rows]
    assert max(latencies) < 10 * latencies[0] + 1.0
    messages = [r["messages"] for r in rows]
    assert messages[-1] > messages[0] * 4  # roughly linear fan-out


def bench_f3_multigroup_request(benchmark):
    """One application touching all three groups of the paper's typical
    heterogeneous environment: three leaders field requests in parallel."""
    from repro.core import heterogeneous_cluster
    from repro.workloads import build_weather_graph

    def experiment():
        vce = fresh_vce(heterogeneous_cluster(n_workstations=6), seed=2)
        run = vce.submit(build_weather_graph(predict_work=50.0))
        finish(vce, run)
        return {
            "alloc_latency": run.allocation_latency,
            "groups": len({r.get("cls") for r in vce.sim.log.records(category="exec.request")}),
        }

    result = once(benchmark, experiment)
    print()
    print(
        format_table(
            ["groups contacted", "alloc latency (s)"],
            [[result["groups"], result["alloc_latency"]]],
            title="F3: multi-group allocation (workstation + SIMD)",
        )
    )
    assert result["groups"] == 2  # collector/usercollect -> WS, predictor -> SIMD
    assert result["alloc_latency"] < 5.0
