"""Kernel & scheduler throughput on the canonical workloads.

Runs the ``repro.bench`` suite in both full and quick modes and writes
``BENCH_kernel.json`` at the repo root — the checked-in baseline that the
CI perf-smoke job (``repro bench --quick --check``) gates against.

Regression gating uses the *normalized ratio* (workload events/sec over
the same-process empty-callback pump rate) so host speed cancels out; see
``repro.bench``. When a baseline is already checked in, this benchmark
asserts the fresh measurement has not regressed more than ``TOLERANCE``
below it, re-measuring up to ``ATTEMPTS`` times (keeping the best run) so
a CI contention burst does not fail the build. The freshly written
baseline keeps, per workload, the *best* ratio seen (old vs new) — the
file ratchets toward clean-machine numbers instead of decaying on noisy
ones — while event counts and digests always reflect the current code.
"""

import json
from pathlib import Path

from benchmarks._common import once
from repro.bench import check_against_baseline, run_suite
from repro.metrics import format_table

ATTEMPTS = 3
TOLERANCE = 0.25

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def _best(old: dict, new: dict) -> dict:
    """Merge suites keeping the best normalized ratio per workload (event
    counts/digests always come from the new measurement)."""
    merged = dict(new)
    merged["workloads"] = {}
    for name, result in new["workloads"].items():
        result = dict(result)
        base = old.get("workloads", {}).get(name)
        if base is not None and base.get("sim_events") == result["sim_events"]:
            result["normalized_ratio"] = max(
                result["normalized_ratio"], base["normalized_ratio"]
            )
        merged["workloads"][name] = result
    return merged


def bench_kernel_throughput(benchmark):
    baseline = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}

    def experiment():
        best_full, best_quick, failures = None, None, []
        for _ in range(ATTEMPTS):
            full = run_suite(quick=False)
            quick = run_suite(quick=True)
            best_full = full if best_full is None else _best(best_full, full)
            best_quick = quick if best_quick is None else _best(best_quick, quick)
            failures = [
                msg
                for mode, suite in (("full", best_full), ("quick", best_quick))
                if mode in baseline
                for msg in check_against_baseline(
                    suite, baseline[mode], tolerance=TOLERANCE
                )
            ]
            if not failures:
                break
        return best_full, best_quick, failures

    full, quick, failures = once(benchmark, experiment)

    print()
    for suite in (full, quick):
        rows = [
            [
                name,
                f"{r['events_per_sec']:,.0f}",
                f"{r['normalized_ratio']:.4f}",
                f"{r['dispatch_ms_per_instance']:.3f}",
                f"{r['sched_event_share'] * 100:.1f}%",
                f"{r['sim_events']:,}",
            ]
            for name, r in suite["workloads"].items()
        ]
        print(
            format_table(
                ["workload", "events/s", "ratio", "ms/task", "sched share", "events"],
                rows,
                title=f"kernel bench ({suite['mode']})",
            )
        )

    RESULT_PATH.write_text(
        json.dumps(
            {
                "full": _best(baseline.get("full", {}), full),
                "quick": _best(baseline.get("quick", {}), quick),
                "tolerance": TOLERANCE,
            },
            indent=2,
        )
        + "\n"
    )
    assert not failures, "; ".join(failures)
