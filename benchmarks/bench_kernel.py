"""Kernel & scheduler throughput on the canonical workloads.

Runs the ``repro.bench`` suite in both full and quick modes and writes
``BENCH_kernel.json`` at the repo root — the checked-in baseline that the
CI perf-smoke job (``repro bench --quick --check``) gates against.

Regression gating uses the *normalized ratio* (workload events/sec over
the same-process empty-callback pump rate) so host speed cancels out; see
``repro.bench``. When a baseline is already checked in, this benchmark
asserts the fresh measurement has not regressed more than ``TOLERANCE``
below it, re-measuring up to ``ATTEMPTS`` times (keeping the best run) so
a CI contention burst does not fail the build. The freshly written
baseline keeps, per workload, the *best* ratio seen (old vs new) — the
file ratchets toward clean-machine numbers instead of decaying on noisy
ones — while event counts and digests always reflect the current code.

The ``sharded`` section records the sharded backend the same way: a quick
suite at the CI gate's shard count (digest parity with the serial run is
asserted — backend invariance is a correctness gate, not a perf number)
plus an events/sec sweep over shard counts on randomdag-5k. Sharded
throughput is gated against the serial suite measured in the same process
(``check_sharded_overhead``), not against its own checked-in ratios: the
ratcheted maxima exist for trend-reading, and a quick suite's run-to-run
noise exceeds any tolerance tight enough to catch real regressions.
"""

import json
from pathlib import Path

from benchmarks._common import once
from repro.bench import (
    check_against_baseline,
    check_backend_parity,
    check_sharded_overhead,
    run_suite,
    sharded_scaling,
)
from repro.metrics import format_table

ATTEMPTS = 3
TOLERANCE = 0.25
#: shard count the ratcheted sharded quick section (and CI gate) runs at
SHARDED_QUICK_SHARDS = 2
#: shard counts swept by the scaling record
SCALING_SHARDS = (1, 2, 4, 8)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def _best(old: dict, new: dict) -> dict:
    """Merge suites keeping the best normalized ratio per workload (event
    counts/digests always come from the new measurement)."""
    merged = dict(new)
    merged["workloads"] = {}
    for name, result in new["workloads"].items():
        result = dict(result)
        base = old.get("workloads", {}).get(name)
        if base is not None and base.get("sim_events") == result["sim_events"]:
            result["normalized_ratio"] = max(
                result["normalized_ratio"], base["normalized_ratio"]
            )
        merged["workloads"][name] = result
    return merged


def _best_scaling(old: dict, new: dict) -> dict:
    """Ratchet the shard-scaling record: keep the best events/sec per shard
    count (and the serial reference) when the event schedule is unchanged."""
    if old.get("sim_events") != new["sim_events"]:
        return new
    merged = dict(new)
    merged["serial_events_per_sec"] = max(
        new["serial_events_per_sec"], old.get("serial_events_per_sec", 0.0)
    )
    merged["per_shards"] = {}
    for n, result in new["per_shards"].items():
        result = dict(result)
        base = old.get("per_shards", {}).get(n)
        if base is not None:
            result["events_per_sec"] = max(
                result["events_per_sec"], base["events_per_sec"]
            )
        result["speedup_vs_serial"] = round(
            result["events_per_sec"] / merged["serial_events_per_sec"], 3
        )
        merged["per_shards"][n] = result
    return merged


def bench_kernel_throughput(benchmark):
    baseline = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    sharded_baseline = baseline.get("sharded", {})

    def experiment():
        best_full, best_quick, failures = None, None, []
        for _ in range(ATTEMPTS):
            full = run_suite(quick=False)
            quick = run_suite(quick=True)
            best_full = full if best_full is None else _best(best_full, full)
            best_quick = quick if best_quick is None else _best(best_quick, quick)
            failures = [
                msg
                for mode, suite in (("full", best_full), ("quick", best_quick))
                if mode in baseline
                for msg in check_against_baseline(
                    suite, baseline[mode], tolerance=TOLERANCE
                )
            ]
            if not failures:
                break
        # sharded section: one quick suite at the CI gate's shard count
        # (digest parity vs the serial run is the hard invariant) plus the
        # shard-count scaling sweep on the big DAG
        sharded_quick = run_suite(quick=True, backend="sharded", shards=SHARDED_QUICK_SHARDS)
        failures += check_backend_parity(sharded_quick, best_quick)
        # Engine overhead is gated against the serial suite from this
        # same process (noise-immune ratio) rather than the checked-in
        # sharded ratios, whose ratcheted maxima a normal run on a busy
        # machine undershoots by more than the tolerance.
        failures += check_sharded_overhead(sharded_quick, best_quick)
        scaling = sharded_scaling(shard_counts=SCALING_SHARDS)
        return best_full, best_quick, sharded_quick, scaling, failures

    full, quick, sharded_quick, scaling, failures = once(benchmark, experiment)

    print()
    for suite in (full, quick, sharded_quick):
        rows = [
            [
                name,
                f"{r['events_per_sec']:,.0f}",
                f"{r['normalized_ratio']:.4f}",
                f"{r['dispatch_ms_per_instance']:.3f}",
                f"{r['sched_event_share'] * 100:.1f}%",
                f"{r['sim_events']:,}",
            ]
            for name, r in suite["workloads"].items()
        ]
        print(
            format_table(
                ["workload", "events/s", "ratio", "ms/task", "sched share", "events"],
                rows,
                title=f"kernel bench ({suite['mode']}, {suite['backend']})",
            )
        )
    scaling_rows = [
        [n, f"{r['events_per_sec']:,.0f}", f"{r['speedup_vs_serial']:.3f}"]
        for n, r in scaling["per_shards"].items()
    ]
    print(
        format_table(
            ["shards", "events/s", "vs serial"],
            scaling_rows,
            title=(
                f"sharded scaling ({scaling['workload']}, "
                f"serial {scaling['serial_events_per_sec']:,.0f} ev/s)"
            ),
        )
    )

    RESULT_PATH.write_text(
        json.dumps(
            {
                "full": _best(baseline.get("full", {}), full),
                "quick": _best(baseline.get("quick", {}), quick),
                "sharded": {
                    "quick": _best(sharded_baseline.get("quick", {}), sharded_quick),
                    "scaling": _best_scaling(
                        sharded_baseline.get("scaling", {}), scaling
                    ),
                },
                "tolerance": TOLERANCE,
            },
            indent=2,
        )
        + "\n"
    )
    assert not failures, "; ".join(failures)
