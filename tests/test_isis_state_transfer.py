"""Isis state transfer: joiners adopt the coordinator's snapshot."""


from repro.netsim import Address, Network, Simulator

from tests.test_isis_group import Recorder


class CounterMember(Recorder):
    """A group maintaining a replicated counter via abcast; joiners adopt
    the coordinator's current value through state transfer."""

    def __init__(self, name, contacts=None):
        super().__init__(name, contacts=contacts)
        self.counter = 0
        self.state_transfers = 0

    def increment(self):
        self.abcast("incr", 1)

    def on_abcast(self, sender, kind, payload):
        super().on_abcast(sender, kind, payload)
        if kind == "incr":
            self.counter += payload

    def get_group_state(self):
        return {"counter": self.counter}

    def on_state_received(self, state):
        self.state_transfers += 1
        self.counter = state["counter"]


def rig(n=2, seed=0):
    sim = Simulator(seed)
    net = Network(sim)
    members = []
    for i in range(n):
        host = net.add_host(f"h{i}")
        contacts = None if i == 0 else [Address("h0", "m0")]
        member = CounterMember(f"m{i}", contacts=contacts)
        host.spawn(member)
        members.append(member)
    sim.run(until=10.0)
    return sim, net, members


class TestStateTransfer:
    def test_joiner_adopts_coordinator_state(self):
        sim, net, members = rig(2)
        for _ in range(5):
            members[0].increment()
        sim.run(until=sim.now + 5.0)
        assert members[1].counter == 5
        # a late joiner starts from the transferred snapshot, not zero
        host = net.add_host("h9")
        late = CounterMember("m9", contacts=[members[0].address])
        host.spawn(late)
        sim.run(until=sim.now + 10.0)
        assert late.joined
        assert late.state_transfers == 1
        assert late.counter == 5
        # and it tracks subsequent updates
        members[0].increment()
        sim.run(until=sim.now + 5.0)
        assert late.counter == 6

    def test_survivors_do_not_receive_state(self):
        sim, net, members = rig(3)
        members[0].increment()
        sim.run(until=sim.now + 5.0)
        # members may have received transfers at their *own* joins during
        # setup; what matters is that a later view change doesn't re-send
        before = [m.state_transfers for m in members]
        host = net.add_host("h9")
        late = CounterMember("m9", contacts=[members[0].address])
        host.spawn(late)
        sim.run(until=sim.now + 10.0)
        assert [m.state_transfers for m in members] == before
        # the joiner's counter stays consistent with the group's
        assert late.counter == members[0].counter

    def test_no_state_hook_means_no_transfer(self):
        sim = Simulator(0)
        net = Network(sim)
        h0 = net.add_host("h0")
        founder = Recorder("m0")  # plain Recorder: get_group_state -> None
        h0.spawn(founder)
        sim.run(until=5.0)
        h1 = net.add_host("h1")
        joiner = Recorder("m1", contacts=[founder.address])
        h1.spawn(joiner)
        sim.run(until=15.0)
        assert joiner.joined  # transfer simply absent; join unaffected

    def test_state_reflects_coordinator_at_change_time(self):
        sim, net, members = rig(2)
        for _ in range(3):
            members[1].increment()
        sim.run(until=sim.now + 5.0)
        host = net.add_host("h9")
        late = CounterMember("m9", contacts=[members[1].address])
        host.spawn(late)
        sim.run(until=sim.now + 10.0)
        assert late.counter == 3
