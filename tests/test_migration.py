"""Tests for the four migration schemes and the selector."""

import pytest

from repro.compilation import CompilationManager
from repro.migration import (
    CheckpointMigration,
    DumpMigration,
    MigrationContext,
    MigrationSelector,
    RecompileMigration,
    RedundantExecutionManager,
)
from repro.runtime import AppStatus, InstanceState
from repro.sdm import ProblemSpecification
from repro.taskgraph import ExecutionHints, ProblemClass
from repro.util.errors import MigrationError
from repro.vmpi import Checkpoint, Compute

from tests.conftest import make_cluster, place_all_on


def checkpointing_program(total_steps=10, step_work=1.0, ckpt_size=1000):
    """A cooperative task: checkpoints after every step and resumes from
    ``ctx.restored_state``."""

    def program(ctx):
        step = ctx.restored_state or 0
        while step < total_steps:
            yield Compute(step_work)
            step += 1
            yield Checkpoint(step, size=ckpt_size)
        return step

    return program


def plain_program(work=10.0):
    def program(ctx):
        yield Compute(work)
        return "done"

    return program


def one_task_graph(program, name="app", memory_mb=1, hints=None, language="py"):
    graph = ProblemSpecification(name).task("t", work=10, memory_mb=memory_mb).build()
    node = graph.task("t")
    node.problem_class = ProblemClass.ASYNCHRONOUS
    node.language = language
    node.program = program
    if hints:
        node.hints = hints
    return graph


def setup(n=3, **kw):
    cluster = make_cluster(n, **kw)
    context = MigrationContext(cluster.manager, cluster.net)
    return cluster, context


class TestDumpMigration:
    def test_exact_migration_no_lost_work(self):
        cluster, context = setup()
        graph = one_task_graph(plain_program(10.0), memory_mb=1)
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=4.0)
        dump = DumpMigration(context)
        latencies = []
        dump.migrate(app, app.record("t", 0), "ws1", on_done=latencies.append)
        cluster.run()
        assert app.status is AppStatus.DONE
        assert latencies and latencies[0] > 0.5  # 1 MB at 1.25 MB/s
        # total = 10s compute + ~0.8s frozen transfer (no recompute)
        assert app.makespan == pytest.approx(10.0 + latencies[0], abs=0.2)
        assert app.record("t", 0).placements == ["ws0", "ws1"]

    def test_requires_homogeneity(self):
        from repro.machines import MachineClass

        cluster, context = setup(2)
        # give ws1 an alien object-code format
        cluster.hosts["ws1"].machine.object_code_format = "alien"
        graph = one_task_graph(plain_program(10.0))
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=2.0)
        dump = DumpMigration(context)
        ok, reason = dump.can_migrate(app, app.record("t", 0), "ws1")
        assert not ok and "homogeneity" in reason
        with pytest.raises(MigrationError):
            dump.migrate(app, app.record("t", 0), "ws1")

    def test_non_migratable_task_refused(self):
        cluster, context = setup()
        graph = one_task_graph(
            plain_program(10.0), hints=ExecutionHints(migratable=False)
        )
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=2.0)
        ok, reason = DumpMigration(context).can_migrate(app, app.record("t", 0), "ws1")
        assert not ok and "not migratable" in reason

    def test_transfer_scales_with_memory(self):
        def run(memory_mb):
            cluster, context = setup()
            graph = one_task_graph(plain_program(10.0), memory_mb=memory_mb)
            app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
            cluster.run(until=2.0)
            latencies = []
            DumpMigration(context).migrate(
                app, app.record("t", 0), "ws1", on_done=latencies.append
            )
            cluster.run()
            return latencies[0]

        assert run(10) > run(1) * 5

    def test_dead_destination_thaws_in_place(self):
        cluster, context = setup()
        graph = one_task_graph(plain_program(10.0), memory_mb=10)
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=2.0)
        DumpMigration(context).migrate(app, app.record("t", 0), "ws1")
        cluster.hosts["ws1"].crash()  # dies while image is in flight
        cluster.run()
        assert app.status is AppStatus.DONE
        assert app.record("t", 0).host_name == "ws0"


class TestCheckpointMigration:
    def test_resumes_from_checkpoint(self):
        cluster, context = setup()
        graph = one_task_graph(checkpointing_program(total_steps=10))
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=4.5)  # ~4 steps done and checkpointed
        ck = CheckpointMigration(context)
        latencies = []
        ck.migrate(app, app.record("t", 0), "ws2", on_done=latencies.append)
        cluster.run()
        assert app.status is AppStatus.DONE
        assert app.results("t") == [10]
        assert app.record("t", 0).host_name == "ws2"
        # lost at most one step of work: total < 4.5 + 6 steps + slack
        assert app.completed_at < 4.5 + 7.5

    def test_without_checkpoint_restarts_from_scratch(self):
        cluster, context = setup()
        graph = one_task_graph(plain_program(10.0))
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=6.0)  # 6s of work that will be lost
        CheckpointMigration(context).migrate(app, app.record("t", 0), "ws1")
        cluster.run()
        assert app.status is AppStatus.DONE
        assert app.completed_at == pytest.approx(16.0, abs=0.5)

    def test_uncooperative_task_refused(self):
        cluster, context = setup()
        graph = one_task_graph(
            plain_program(), hints=ExecutionHints(checkpointable=False)
        )
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=1.0)
        ok, reason = CheckpointMigration(context).can_migrate(
            app, app.record("t", 0), "ws1"
        )
        assert not ok and "cooperate" in reason


class TestRecompileMigration:
    def _with_compilation(self):
        cluster = make_cluster(2, extra_machines=[("mimd0", __import__("repro.machines", fromlist=["MachineClass"]).MachineClass.MIMD, 10.0)])
        comp = CompilationManager(cluster.db)
        context = MigrationContext(cluster.manager, cluster.net, comp)
        return cluster, comp, context

    def test_cross_class_migration(self):
        cluster, comp, context = self._with_compilation()
        graph = one_task_graph(checkpointing_program(total_steps=20), language="hpf")
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=5.0)
        rec = RecompileMigration(context, use_checkpoint=True)
        latencies = []
        rec.migrate(app, app.record("t", 0), "mimd0", on_done=latencies.append)
        cluster.run()
        assert app.status is AppStatus.DONE
        assert app.record("t", 0).host_name == "mimd0"
        assert latencies[0] > 15.0  # hpf compile is expensive (20s base)

    def test_prepared_binary_makes_recompile_cheap(self):
        cluster, comp, context = self._with_compilation()
        graph = one_task_graph(checkpointing_program(total_steps=20), language="hpf")
        comp.compile_all(comp.plan(graph))  # anticipatory compilation
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=5.0)
        latencies = []
        RecompileMigration(context, use_checkpoint=True).migrate(
            app, app.record("t", 0), "mimd0", on_done=latencies.append
        )
        cluster.run()
        assert app.status is AppStatus.DONE
        assert latencies[0] < 1.0

    def test_no_compiler_refused(self):
        cluster, comp, context = self._with_compilation()
        # "c" has no SIMD compiler; fake a SIMD host by changing class
        graph = one_task_graph(plain_program(), language="c")
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=1.0)
        from repro.machines import MachineClass

        cluster.db.get("mimd0").arch_class = MachineClass.SIMD
        ok, reason = RecompileMigration(context).can_migrate(
            app, app.record("t", 0), "mimd0"
        )
        assert not ok and "no compiler" in reason


class TestRedundantExecution:
    def test_first_finisher_wins(self):
        cluster, context = setup(3, speeds=[1.0, 5.0, 1.0])
        graph = one_task_graph(plain_program(10.0))
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        mgr = RedundantExecutionManager(context)
        cluster.run(until=0.5)
        record = app.record("t", 0)
        mgr.dispatch_redundant(app, record, ["ws1"])  # 5x faster host
        cluster.run()
        assert app.status is AppStatus.DONE
        # the fast copy finished first (~2.5s) and was promoted
        assert record.host_name == "ws1"
        assert app.makespan < 4.0

    def test_evict_busy_primary_promotes_copy(self):
        cluster, context = setup(3)
        graph = one_task_graph(plain_program(10.0))
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        mgr = RedundantExecutionManager(context)
        cluster.run(until=1.0)
        record = app.record("t", 0)
        mgr.dispatch_redundant(app, record, ["ws1", "ws2"])
        cluster.run(until=2.0)
        mgr.evict(app, record, "ws0")  # primary's machine got busy
        assert record.host_name in ("ws1", "ws2")
        cluster.run()
        assert app.status is AppStatus.DONE
        assert mgr.copies_killed >= 1

    def test_migrate_api_zero_transfer(self):
        cluster, context = setup(2)
        graph = one_task_graph(plain_program(10.0))
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        mgr = RedundantExecutionManager(context)
        cluster.run(until=1.0)
        record = app.record("t", 0)
        mgr.dispatch_redundant(app, record, ["ws1"])
        cluster.run(until=2.0)
        latencies = []
        mgr.migrate(app, record, "ws1", on_done=latencies.append)
        assert latencies == [0.0]  # kill-and-adopt is instantaneous
        cluster.run()
        assert app.status is AppStatus.DONE

    def test_no_copy_no_migration(self):
        cluster, context = setup(2)
        graph = one_task_graph(plain_program(10.0))
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=1.0)
        mgr = RedundantExecutionManager(context)
        ok, reason = mgr.can_migrate(app, app.record("t", 0), "ws1")
        assert not ok and "no live redundant copy" in reason

    def test_sibling_copies_killed_when_primary_finishes(self):
        cluster, context = setup(3, speeds=[5.0, 1.0, 1.0])
        graph = one_task_graph(plain_program(10.0))
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        mgr = RedundantExecutionManager(context)
        cluster.run(until=0.2)
        record = app.record("t", 0)
        copies = mgr.dispatch_redundant(app, record, ["ws1", "ws2"])
        cluster.run()
        assert app.status is AppStatus.DONE
        assert record.host_name == "ws0"  # fast primary won
        for copy in copies:
            assert copy.state in (InstanceState.KILLED, InstanceState.DONE)
        assert all(copy.state is InstanceState.KILLED for copy in copies)


class TestSelector:
    def test_prefers_redundant_when_copy_exists(self):
        cluster, context = setup(3)
        graph = one_task_graph(plain_program(10.0))
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        selector = MigrationSelector(context)
        cluster.run(until=1.0)
        record = app.record("t", 0)
        selector.redundant.dispatch_redundant(app, record, ["ws1"])
        cluster.run(until=2.0)
        assert selector.choose(app, record, "ws1").name == "redundant"

    def test_prefers_dump_for_homogeneous_pair(self):
        cluster, context = setup(3)
        graph = one_task_graph(checkpointing_program())
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        selector = MigrationSelector(context)
        cluster.run(until=1.0)
        assert selector.choose(app, app.record("t", 0), "ws1").name == "dump"

    def test_falls_back_to_checkpoint_across_formats(self):
        cluster, context = setup(2)
        cluster.hosts["ws1"].machine.object_code_format = "alien"
        graph = one_task_graph(checkpointing_program())
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        selector = MigrationSelector(context)
        cluster.run(until=2.5)
        assert selector.choose(app, app.record("t", 0), "ws1").name == "checkpoint"

    def test_raises_when_nothing_applies(self):
        cluster, context = setup(2)
        cluster.hosts["ws1"].machine.object_code_format = "alien"
        graph = one_task_graph(
            plain_program(),
            hints=ExecutionHints(migratable=False, checkpointable=False),
        )
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        selector = MigrationSelector(context)  # no compilation manager
        cluster.run(until=1.0)
        with pytest.raises(MigrationError, match="no scheme"):
            selector.choose(app, app.record("t", 0), "ws1")

    def test_migrate_runs_selected_scheme(self):
        cluster, context = setup(3)
        graph = one_task_graph(checkpointing_program())
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        selector = MigrationSelector(context)
        cluster.run(until=1.0)
        scheme = selector.migrate(app, app.record("t", 0), "ws2")
        assert scheme.name == "dump"
        cluster.run()
        assert app.status is AppStatus.DONE
        assert app.record("t", 0).host_name == "ws2"
