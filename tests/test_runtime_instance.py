"""Tests for TaskInstance syscall interpretation and RuntimeManager dispatch."""

import pytest

from repro.machines import ConstantLoad
from repro.runtime import AppStatus, InstanceState, Placement
from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass
from repro.util.errors import ConfigurationError
from repro.vmpi import (
    Checkpoint,
    Compute,
    Emit,
    ReadFile,
    Recv,
    Send,
    Sleep,
    WriteFile,
    allreduce,
    barrier,
    bcast,
    gather,
    scatter,
)

from tests.conftest import make_cluster, place_all_on, round_robin_placement


def simple_graph(program, name="app", work=1.0, instances=1, task="t"):
    spec = ProblemSpecification(name).task(task, work=work, instances=instances)
    graph = spec.build()
    node = graph.task(task)
    node.problem_class = ProblemClass.ASYNCHRONOUS
    node.language = "py"
    node.program = program
    return graph


class TestComputeAndCompletion:
    def test_compute_duration_scales_with_speed(self):
        cluster = make_cluster(2, speeds=[1.0, 4.0])

        def program(ctx):
            yield Compute(8.0)
            return "ok"

        g1 = simple_graph(program, name="a1")
        g2 = simple_graph(program, name="a2")
        app1 = cluster.manager.submit(g1, place_all_on(g1, "ws0"))
        app2 = cluster.manager.submit(g2, place_all_on(g2, "ws1"))
        cluster.run()
        assert app1.status is AppStatus.DONE and app2.status is AppStatus.DONE
        assert app1.makespan == pytest.approx(8.0, rel=1e-6)
        assert app2.makespan == pytest.approx(2.0, rel=1e-6)

    def test_result_returned(self):
        cluster = make_cluster(1)

        def program(ctx):
            yield Compute(1.0)
            return ctx.rank * 10

        graph = simple_graph(program, instances=3)
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run()
        assert app.results("t") == [0, 10, 20]

    def test_background_load_slows_compute(self):
        cluster = make_cluster(2, loads=[ConstantLoad(0.5), ConstantLoad(0.0)])

        def program(ctx):
            yield Compute(4.0)

        g1 = simple_graph(program, name="a1")
        g2 = simple_graph(program, name="a2")
        a1 = cluster.manager.submit(g1, place_all_on(g1, "ws0"))
        a2 = cluster.manager.submit(g2, place_all_on(g2, "ws1"))
        cluster.run()
        assert a1.makespan == pytest.approx(8.0, rel=1e-6)
        assert a2.makespan == pytest.approx(4.0, rel=1e-6)

    def test_co_resident_contention(self):
        cluster = make_cluster(1)

        def program(ctx):
            yield Compute(5.0)

        graph = simple_graph(program, instances=2)
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run()
        # two instances share the CPU: each takes ~10s
        assert app.makespan == pytest.approx(10.0, rel=1e-6)

    def test_saturated_machine_stalls_until_load_drops(self):
        from repro.machines import TraceLoad

        cluster = make_cluster(1, loads=[TraceLoad([(5.0, 0.0)], initial=1.0)])

        def program(ctx):
            yield Compute(2.0)

        graph = simple_graph(program)
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run()
        assert app.status is AppStatus.DONE
        assert app.completed_at >= 7.0  # stalled ~5s then computed 2s

    def test_failing_program_fails_app(self):
        cluster = make_cluster(1)

        def program(ctx):
            yield Compute(1.0)
            raise RuntimeError("boom")

        graph = simple_graph(program)
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run()
        assert app.status is AppStatus.FAILED
        assert app.record("t", 0).state is InstanceState.FAILED


class TestPrecedenceAndStaging:
    def test_successor_waits_for_predecessor(self):
        cluster = make_cluster(2)
        times = {}

        def first(ctx):
            yield Compute(5.0)
            times["first_done"] = True

        def second(ctx):
            assert times.get("first_done")
            yield Compute(1.0)

        spec = ProblemSpecification("app").task("a", work=5).task("b", work=1)
        spec.after("a", "b")
        graph = spec.build()
        graph.task("a").program = first
        graph.task("b").program = second
        placement = Placement()
        placement.assign("a", 0, "ws0")
        placement.assign("b", 0, "ws1")
        app = cluster.manager.submit(graph, placement)
        cluster.run()
        assert app.status is AppStatus.DONE
        assert app.completed_at >= 6.0

    def test_data_arc_staging_charged_cross_host(self):
        cluster = make_cluster(2)

        def noop(ctx):
            yield Compute(0.1)

        spec = ProblemSpecification("app").task("a", work=1).task("b", work=1)
        spec.flow("a", "b", volume=12_500_000)  # 10s at 1.25 MB/s
        graph = spec.build()
        graph.task("a").program = noop
        graph.task("b").program = noop
        placement = Placement()
        placement.assign("a", 0, "ws0")
        placement.assign("b", 0, "ws1")
        app = cluster.manager.submit(graph, placement)
        cluster.run()
        assert app.makespan > 10.0

    def test_data_arc_free_same_host(self):
        cluster = make_cluster(1)

        def noop(ctx):
            yield Compute(0.1)

        spec = ProblemSpecification("app").task("a", work=1).task("b", work=1)
        spec.flow("a", "b", volume=12_500_000)
        graph = spec.build()
        graph.task("a").program = noop
        graph.task("b").program = noop
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run()
        assert app.makespan < 1.0

    def test_missing_placement_rejected(self):
        cluster = make_cluster(1)
        graph = simple_graph(lambda ctx: iter(()))
        with pytest.raises(ConfigurationError):
            cluster.manager.submit(graph, Placement())


class TestMessaging:
    def test_rank_to_rank_send_recv(self):
        cluster = make_cluster(2)

        def program(ctx):
            if ctx.rank == 0:
                yield Send(dst=1, data="ping", tag="x")
                src, data = yield Recv(src=1, tag="y")
                return data
            else:
                src, data = yield Recv(src=0, tag="x")
                yield Send(dst=0, data=data + "-pong", tag="y")
                return "served"

        graph = simple_graph(program, instances=2)
        app = cluster.manager.submit(graph, round_robin_placement(graph, ["ws0", "ws1"]))
        cluster.run()
        assert app.results("t") == ["ping-pong", "served"]

    def test_recv_any_source(self):
        cluster = make_cluster(3)

        def program(ctx):
            if ctx.rank == 0:
                got = []
                for _ in range(2):
                    src, data = yield Recv()
                    got.append((src, data))
                return sorted(got)
            yield Send(dst=0, data=f"from{ctx.rank}")
            return None

        graph = simple_graph(program, instances=3)
        app = cluster.manager.submit(
            graph, round_robin_placement(graph, ["ws0", "ws1", "ws2"])
        )
        cluster.run()
        assert app.results("t")[0] == [(1, "from1"), (2, "from2")]

    def test_tag_matching_skips_nonmatching(self):
        cluster = make_cluster(2)

        def program(ctx):
            if ctx.rank == 0:
                yield Send(dst=1, data="early", tag="b")
                yield Send(dst=1, data="wanted", tag="a")
                return None
            src, data = yield Recv(tag="a")
            src2, data2 = yield Recv(tag="b")
            return (data, data2)

        graph = simple_graph(program, instances=2)
        app = cluster.manager.submit(graph, round_robin_placement(graph, ["ws0", "ws1"]))
        cluster.run()
        assert app.results("t")[1] == ("wanted", "early")

    def test_stream_channel_between_tasks(self):
        cluster = make_cluster(2)

        def producer(ctx):
            yield Send(dst="consumer[0]", data=41, channel="pipe", tag="d")
            return None

        def consumer(ctx):
            src, data = yield Recv(channel="pipe", tag="d")
            return data + 1

        spec = ProblemSpecification("app").task("producer").task("consumer")
        spec.stream("producer", "consumer", channel="pipe")
        graph = spec.build()
        graph.task("producer").program = producer
        graph.task("consumer").program = consumer
        placement = Placement()
        placement.assign("producer", 0, "ws0")
        placement.assign("consumer", 0, "ws1")
        app = cluster.manager.submit(graph, placement)
        cluster.run()
        assert app.results("consumer") == [42]

    def test_collectives(self):
        cluster = make_cluster(4)

        def program(ctx):
            value = ctx.rank + 1
            total = yield from allreduce(ctx, value, op=sum)
            part = yield from scatter(ctx, [10, 20, 30, 40] if ctx.rank == 0 else None)
            gathered = yield from gather(ctx, part * 2)
            word = yield from bcast(ctx, "hi" if ctx.rank == 0 else None)
            yield from barrier(ctx)
            return (total, part, gathered, word)

        graph = simple_graph(program, instances=4)
        app = cluster.manager.submit(
            graph, round_robin_placement(graph, [f"ws{i}" for i in range(4)])
        )
        cluster.run()
        results = app.results("t")
        assert [r[0] for r in results] == [10, 10, 10, 10]
        assert [r[1] for r in results] == [10, 20, 30, 40]
        assert results[0][2] == [20, 40, 60, 80]
        assert all(r[3] == "hi" for r in results)


class TestOtherSyscalls:
    def test_sleep_advances_time(self):
        cluster = make_cluster(1)

        def program(ctx):
            yield Sleep(3.5)

        graph = simple_graph(program)
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run()
        assert app.makespan >= 3.5

    def test_emit_logs(self):
        cluster = make_cluster(1)

        def program(ctx):
            yield Emit("custom.marker", {"value": 7})

        graph = simple_graph(program)
        cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run()
        rec = cluster.sim.log.first("custom.marker")
        assert rec is not None and rec.get("value") == 7

    def test_checkpoint_persists_state(self):
        cluster = make_cluster(1)

        def program(ctx):
            yield Compute(1.0)
            yield Checkpoint({"progress": 50}, size=1000)
            yield Compute(1.0)

        graph = simple_graph(program)
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=1.5)
        record = cluster.manager.checkpoints.get(app.id, "t", 0)
        assert record is not None and record.state == {"progress": 50}

    def test_checkpoints_dropped_on_completion(self):
        cluster = make_cluster(1)

        def program(ctx):
            yield Checkpoint("s")

        graph = simple_graph(program)
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run()
        assert cluster.manager.checkpoints.get(app.id, "t", 0) is None

    def test_remote_file_fetch_slower_than_local(self):
        def program(ctx):
            yield ReadFile("input.dat", size=2_500_000)  # 2s fetch at 1.25MB/s

        c1 = make_cluster(1)
        g1 = simple_graph(program, name="a1")
        a1 = c1.manager.submit(g1, place_all_on(g1, "ws0"))
        c1.run()
        remote_time = a1.makespan

        c2 = make_cluster(1)
        c2.hosts["ws0"].machine.files.add("input.dat")
        g2 = simple_graph(program, name="a2")
        a2 = c2.manager.submit(g2, place_all_on(g2, "ws0"))
        c2.run()
        local_time = a2.makespan
        assert remote_time > local_time + 1.0

    def test_write_file_lands_on_machine(self):
        cluster = make_cluster(1)

        def program(ctx):
            yield WriteFile("out.dat", size=100)

        graph = simple_graph(program)
        cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run()
        assert "out.dat" in cluster.hosts["ws0"].machine.files


class TestSuspendResumeKill:
    def test_suspend_pauses_progress(self):
        cluster = make_cluster(1)

        def program(ctx):
            for _ in range(10):
                yield Compute(1.0)

        graph = simple_graph(program)
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=2.5)
        inst = app.record("t", 0).instance
        inst.suspend()
        cluster.run(until=20.0)
        assert app.status is AppStatus.RUNNING  # still suspended
        inst.resume()
        cluster.run()
        assert app.status is AppStatus.DONE
        assert app.completed_at > 20.0

    def test_suspended_instance_queues_messages(self):
        cluster = make_cluster(2)

        def program(ctx):
            if ctx.rank == 0:
                yield Sleep(1.0)
                yield Send(dst=1, data="hello")
                return None
            src, data = yield Recv()
            return data

        graph = simple_graph(program, instances=2)
        app = cluster.manager.submit(graph, round_robin_placement(graph, ["ws0", "ws1"]))
        cluster.run(until=0.5)
        receiver = app.record("t", 1).instance
        receiver.suspend()
        cluster.run(until=5.0)
        assert receiver.state is InstanceState.SUSPENDED
        receiver.resume()
        cluster.run()
        assert app.results("t")[1] == "hello"

    def test_kill_terminates_instance(self):
        cluster = make_cluster(1)

        def program(ctx):
            yield Compute(100.0)

        graph = simple_graph(program)
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=1.0)
        inst = app.record("t", 0).instance
        inst.kill("test")
        assert inst.state is InstanceState.KILLED

    def test_host_crash_fails_instance(self):
        cluster = make_cluster(2)

        def program(ctx):
            yield Compute(100.0)

        graph = simple_graph(program)
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=1.0)
        cluster.hosts["ws0"].crash()
        cluster.run(until=5.0)
        assert app.status is AppStatus.FAILED


class TestTermination:
    def test_terminate_kills_everything(self):
        cluster = make_cluster(2)

        def forever(ctx):
            while True:
                yield Sleep(1.0)

        graph = simple_graph(forever, instances=2)
        app = cluster.manager.submit(graph, round_robin_placement(graph, ["ws0", "ws1"]))
        cluster.run(until=3.0)
        cluster.manager.terminate(app)
        assert app.status is AppStatus.TERMINATED
        for record in app.records.values():
            assert record.instance.state is InstanceState.KILLED
