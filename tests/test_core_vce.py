"""Integration tests for the VirtualComputingEnvironment facade."""

import pytest

from repro.core import (
    VCEConfig,
    VirtualComputingEnvironment,
    heterogeneous_cluster,
    workstation_cluster,
)
from repro.machines import MachineClass
from repro.runtime import AppStatus
from repro.scheduler.execution_program import RunState
from repro.util.errors import ConfigurationError, ScriptError
from repro.vmpi import Compute
from repro.workloads import (
    WEATHER_SCRIPT,
    build_monte_carlo_graph,
    build_pipeline_graph,
    build_weather_graph,
    weather_programs,
)


class TestBootAndSubmit:
    def test_boot_forms_groups(self):
        vce = VirtualComputingEnvironment(heterogeneous_cluster()).boot()
        assert vce.directory.has_group(MachineClass.WORKSTATION)
        assert vce.directory.has_group(MachineClass.MIMD)
        assert vce.directory.has_group(MachineClass.SIMD)

    def test_submit_before_boot_rejected(self):
        vce = VirtualComputingEnvironment(workstation_cluster(2))
        with pytest.raises(ConfigurationError, match="boot"):
            vce.submit(build_pipeline_graph(stages=2))

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualComputingEnvironment([])

    def test_pipeline_runs_to_completion(self):
        vce = VirtualComputingEnvironment(workstation_cluster(4)).boot()
        run = vce.submit(build_pipeline_graph(stages=3, stage_work=5.0))
        vce.run_to_completion(run)
        assert run.state is RunState.DONE
        assert run.app.status is AppStatus.DONE

    def test_monte_carlo_estimates_pi(self):
        vce = VirtualComputingEnvironment(workstation_cluster(4)).boot()
        run = vce.submit(build_monte_carlo_graph(workers=4, samples_per_worker=20_000))
        vce.run_to_completion(run)
        assert run.state is RunState.DONE
        estimates = run.app.results("worker")
        assert all(abs(e - 3.14159) < 0.15 for e in estimates)
        assert len(set(estimates)) == 1  # allreduce agreed everywhere

    def test_default_class_map_prefers_best_feasible(self):
        vce = VirtualComputingEnvironment(heterogeneous_cluster()).boot()
        graph = build_weather_graph()
        class_map = vce.default_class_map(graph)
        assert class_map["predictor"] is MachineClass.SIMD  # SYNC -> SIMD
        assert class_map["display"] is None  # local
        assert class_map["collector"] is MachineClass.WORKSTATION

    def test_weather_graph_end_to_end(self):
        vce = VirtualComputingEnvironment(heterogeneous_cluster()).boot()
        run = vce.submit(build_weather_graph(predict_work=100.0))
        vce.run_to_completion(run)
        assert run.state is RunState.DONE
        assert run.app.results("display") == ["displayed"]
        assert run.placement.host_for("predictor", 0).startswith("simd")
        assert run.placement.host_for("display", 0) == "user"

    def test_two_concurrent_applications(self):
        vce = VirtualComputingEnvironment(workstation_cluster(6)).boot()
        r1 = vce.submit(build_pipeline_graph(stages=2, stage_work=8.0, name="p1"))
        r2 = vce.submit(build_pipeline_graph(stages=2, stage_work=8.0, name="p2"))
        vce.run(until=vce.sim.now + 120.0)
        assert r1.state is RunState.DONE and r2.state is RunState.DONE

    def test_metrics_accessible(self):
        vce = VirtualComputingEnvironment(workstation_cluster(3)).boot()
        run = vce.submit(build_pipeline_graph(stages=2, stage_work=2.0))
        vce.run_to_completion(run)
        metrics = vce.metrics()
        assert metrics.app_makespans()
        assert metrics.message_totals()["sent"] > 0


class TestScripts:
    def test_weather_script_end_to_end(self):
        vce = VirtualComputingEnvironment(heterogeneous_cluster()).boot()
        run = vce.run_script(
            WEATHER_SCRIPT,
            weather_programs(predict_work=100.0),
            works={"collector": 20, "usercollect": 10, "predictor": 100, "display": 2},
            name="snow",
        )
        vce.run_to_completion(run)
        assert run.state is RunState.DONE
        assert run.app.results("display") == ["displayed"]
        # ASYNC 2 -> two collector instances
        assert len(run.app.task_records("collector")) == 2
        assert run.placement.host_for("predictor", 0).startswith("simd")

    def test_script_with_ranges_and_conditionals(self):
        script = '''
        SET wanted = 4
        IF AVAILABLE(WORKSTATION) >= wanted THEN
            ASYNC 4- "/apps/x/worker.vce"
        ELSE
            ASYNC 1 "/apps/x/worker.vce"
        ENDIF
        LOCAL "/apps/x/view.vce"
        '''

        def worker(ctx):
            yield Compute(2.0)
            return ctx.rank

        def view(ctx):
            yield Compute(0.5)
            return "ok"

        vce = VirtualComputingEnvironment(workstation_cluster(6)).boot()
        run = vce.run_script(script, {"worker": worker, "view": view})
        vce.run_to_completion(run)
        assert run.state is RunState.DONE
        # 4- with 6 machines available -> up to 4 instances
        assert 1 <= len(run.app.task_records("worker")) <= 4

    def test_script_channels_become_stream_arcs(self):
        script = '''
        ASYNC 1 "/a/producer.vce"
        ASYNC 1 "/a/consumer.vce"
        CHANNEL pipe FROM "/a/producer.vce" TO "/a/consumer.vce" VOLUME 100
        '''
        from repro.vmpi import Recv, Send

        def producer(ctx):
            yield Send(dst="consumer[0]", data=7, channel="pipe")

        def consumer(ctx):
            _, value = yield Recv(channel="pipe")
            return value

        vce = VirtualComputingEnvironment(workstation_cluster(3)).boot()
        run = vce.run_script(script, {"producer": producer, "consumer": consumer})
        vce.run_to_completion(run)
        assert run.state is RunState.DONE
        assert run.app.results("consumer") == [7]

    def test_missing_program_rejected(self):
        vce = VirtualComputingEnvironment(workstation_cluster(2)).boot()
        with pytest.raises(ScriptError, match="no programs"):
            vce.run_script('LOCAL "/a/ghost.vce"', {})


class TestAnticipatoryIntegration:
    def test_anticipatory_config_compiles_ahead(self):
        config = VCEConfig(anticipatory=True)
        vce = VirtualComputingEnvironment(workstation_cluster(4), config).boot()
        graph = build_pipeline_graph(stages=2, stage_work=2.0)
        run = vce.submit(graph)
        vce.run_to_completion(run)
        assert run.state is RunState.DONE
        assert vce.anticipatory.compiles_completed > 0


class TestFaultToleranceIntegration:
    def test_app_completes_despite_leader_crash_before_submit(self):
        vce = VirtualComputingEnvironment(workstation_cluster(5)).boot()
        vce.faults.crash_leader_at(
            vce.directory, MachineClass.WORKSTATION, vce.sim.now + 1.0
        )
        vce.run(until=vce.sim.now + 30.0)  # takeover completes
        run = vce.submit(build_pipeline_graph(stages=2, stage_work=3.0))
        vce.run_to_completion(run)
        assert run.state is RunState.DONE

    def test_migration_selector_wired(self):
        vce = VirtualComputingEnvironment(workstation_cluster(3)).boot()
        graph = build_pipeline_graph(stages=1, stage_work=30.0)
        run = vce.submit(graph)
        vce.run(until=vce.sim.now + 10.0)
        app = run.app
        record = app.record("s0", 0)
        src = record.host_name
        target = next(n for n in ("ws0", "ws1", "ws2") if n != src)
        scheme = vce.migration.migrate(app, record, target)
        vce.run_to_completion(run)
        assert run.state is RunState.DONE
        assert record.host_name == target
        assert scheme.name in ("dump", "checkpoint")
