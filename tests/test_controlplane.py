"""Tests for the live control plane (repro.controlplane).

Covers the subscription hub's backpressure contract (drop-oldest,
bounded queues, accurate counters — example-based and as a hypothesis
property over burst patterns), the entity model's translation of log
records, golden-digest invariance with the control plane attached, the
HTTP server end-to-end on both backends, run-directory round trips and
truncation detection, and the shared ``top --json`` metrics schema.
"""

import asyncio
import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.controlplane import (
    ControlPlaneModel,
    ControlPlaneServer,
    ServeSession,
    SubscriptionHub,
    TruncatedRunError,
    load_manifest,
    load_run_dir,
    save_run_dir,
    submit_workload,
    topic_matches,
)
from repro.core import VCEConfig, VirtualComputingEnvironment, workstation_cluster
from repro.scheduler.execution_program import RunState
from repro.trace.replay import event_log_digest


def _make_vce(seed=3, hosts=4, backend="serial", **kw):
    return VirtualComputingEnvironment(
        workstation_cluster(hosts), VCEConfig(seed=seed, backend=backend, **kw)
    ).boot()


def _run_randomdag(vce, layers=4, width=4, seed=3):
    run = submit_workload(vce, "randomdag", layers=layers, width=width, seed=seed)
    vce.run_to_completion(run, timeout=100_000.0)
    assert run.state is RunState.DONE, run.error
    return run


# ------------------------------------------------------------------ topics


class TestTopicMatches:
    def test_empty_filter_matches_everything(self):
        assert topic_matches("anything.at.all", ())

    def test_exact_and_prefix(self):
        assert topic_matches("entity.host", ("entity.host",))
        assert topic_matches("entity.host.ws1", ("entity.host",))
        assert not topic_matches("entity.hostile", ("entity.host",))

    def test_multiple_prefixes(self):
        prefixes = ("chaos", "health")
        assert topic_matches("health.raise", prefixes)
        assert not topic_matches("entity.app.x", prefixes)


# --------------------------------------------------------------------- hub


class TestSubscription:
    def test_limit_must_be_positive(self):
        hub = SubscriptionHub()
        with pytest.raises(ValueError):
            hub.subscribe("bad", limit=0)

    def test_fifo_delivery(self):
        hub = SubscriptionHub()
        sub = hub.subscribe("s", limit=10)
        for i in range(5):
            hub.publish("t", str(i), float(i))
        assert [e.key for e in sub.drain()] == ["0", "1", "2", "3", "4"]
        assert sub.delivered == 5 and sub.dropped == 0

    def test_drop_oldest_at_limit(self):
        hub = SubscriptionHub()
        sub = hub.subscribe("slow", limit=3)
        for i in range(10):
            hub.publish("t", str(i), float(i))
        assert sub.pending == 3
        assert sub.dropped == 7
        # the three *newest* survive
        assert [e.key for e in sub.drain()] == ["7", "8", "9"]

    def test_topic_filtered_subscription(self):
        hub = SubscriptionHub()
        sub = hub.subscribe("f", topics=("entity.app",))
        hub.publish("entity.app.a1", "a1", 0.0)
        hub.publish("entity.host.ws0", "ws0", 0.0)
        assert sub.matched == 1 and sub.pending == 1

    def test_coalescing_replaces_in_place(self):
        hub = SubscriptionHub()
        sub = hub.subscribe("c", limit=10, coalesce=True)
        hub.publish("m", "cluster", 1.0, {"v": 1}, coalescable=True)
        hub.publish("other", "x", 1.5)
        hub.publish("m", "cluster", 2.0, {"v": 2}, coalescable=True)
        # the refresh replaced the pending cell without moving it
        events = sub.drain()
        assert [(e.topic, e.key) for e in events] == [("m", "cluster"), ("other", "x")]
        assert events[0].data == {"v": 2}
        assert sub.coalesced == 1

    def test_coalesce_disabled_keeps_every_event(self):
        hub = SubscriptionHub()
        sub = hub.subscribe("nc", limit=10, coalesce=False)
        hub.publish("m", "cluster", 1.0, coalescable=True)
        hub.publish("m", "cluster", 2.0, coalescable=True)
        assert sub.pending == 2 and sub.coalesced == 0

    def test_drained_coalescable_requeues(self):
        hub = SubscriptionHub()
        sub = hub.subscribe("c", limit=10)
        hub.publish("m", "k", 1.0, coalescable=True)
        assert len(sub.drain()) == 1
        hub.publish("m", "k", 2.0, coalescable=True)
        assert sub.pending == 1  # not coalesced into the already-taken cell

    def test_close_detaches(self):
        hub = SubscriptionHub()
        sub = hub.subscribe("x")
        sub.close()
        hub.publish("t", "k", 0.0)
        assert sub.matched == 0
        assert hub.subscriptions == ()

    def test_drain_max_items(self):
        hub = SubscriptionHub()
        sub = hub.subscribe("s", limit=10)
        for i in range(6):
            hub.publish("t", str(i), 0.0)
        assert len(sub.drain(max_items=4)) == 4
        assert sub.pending == 2

    def test_on_enqueue_wakeup(self):
        hub = SubscriptionHub()
        calls = []
        hub.subscribe("w", on_enqueue=lambda: calls.append(1))
        hub.publish("t", "k", 0.0)
        assert calls == [1]

    def test_registry_metrics(self):
        from repro.telemetry.registry import MetricsRegistry

        registry = MetricsRegistry()
        hub = SubscriptionHub(registry)
        hub.subscribe("slow", limit=1)
        for i in range(4):
            hub.publish("t", str(i), 0.0)
        published = registry.get("controlplane_events_published_total")
        dropped = registry.get("controlplane_events_dropped_total")
        subs = registry.get("controlplane_subscriptions")
        assert published.labels().value == 4
        assert dropped.labels("slow").value == 3
        assert subs.labels().value == 1


def _conserved(sub):
    return sub.matched == sub.delivered + sub.pending + sub.dropped + sub.coalesced


# a burst pattern: publishes (topic index, coalescable flag) interleaved
# with partial drains
_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("pub"), st.integers(0, 3), st.booleans()
        ),
        st.tuples(st.just("drain"), st.integers(0, 8), st.booleans()),
    ),
    max_size=200,
)


@given(ops=_OPS, limit=st.integers(1, 8), coalesce=st.booleans())
@settings(max_examples=200, deadline=None)
def test_backpressure_property(ops, limit, coalesce):
    """For ANY burst pattern a slow subscriber sees drop-oldest with
    accurate counters: the queue never exceeds its limit, the publisher
    never blocks or errors (the simulation never stalls), and the
    conservation law ``matched == delivered + pending + dropped +
    coalesced`` holds at every instant."""
    hub = SubscriptionHub()
    sub = hub.subscribe("slow", limit=limit, coalesce=coalesce)
    fast = hub.subscribe("fast", limit=10_000)  # a fast reader is unaffected
    topics = ["a", "a.b", "c", "metrics"]
    published = 0
    seen_seq = 0
    for op in ops:
        if op[0] == "pub":
            _, idx, coalescable = op
            hub.publish(topics[idx], f"k{idx}", float(published), coalescable=coalescable)
            published += 1
        else:
            _, k, _ = op
            for event in sub.drain(max_items=k):
                if not coalesce:
                    # without coalescing, delivery is strictly FIFO; a
                    # coalesced cell keeps its (older) queue position, so
                    # a newer seq may legitimately precede an older one
                    assert event.seq > seen_seq
                    seen_seq = event.seq
        assert sub.pending <= limit
        assert _conserved(sub)
        assert _conserved(fast)
    # the fast subscriber missed nothing
    assert fast.dropped == 0 and fast.matched == published
    # total accounting closes once both drain dry
    sub.drain()
    fast.drain()
    assert _conserved(sub) and sub.pending == 0
    assert fast.delivered + fast.coalesced == published


# ------------------------------------------------------------- entity model


class TestEntityModel:
    def test_randomdag_translation(self):
        vce = _make_vce()
        model = ControlPlaneModel(vce).attach()
        feed = model.hub.subscribe("all", limit=100_000, coalesce=False)
        _run_randomdag(vce)
        topics = {e.topic.split(".")[0] for e in feed.drain()}
        assert "entity" in topics and "metrics" in topics
        apps = model.snapshot()["apps"]
        assert len(apps) == 1
        app = apps[0]
        assert app["status"] == "done"
        assert app["done"] == app["dispatched"] > 0
        assert app["inflight"] == 0

    def test_snapshot_schema(self):
        vce = _make_vce()
        model = ControlPlaneModel(vce).attach()
        snap = model.snapshot()
        assert set(snap) >= {"time", "hosts", "daemons", "apps", "instances", "hub", "health"}
        # the workstations plus the cluster's submitting "user" host
        assert {h["name"] for h in snap["hosts"]} >= {"ws0", "ws1", "ws2", "ws3"}
        assert snap["health"].keys() >= {"active", "rules"}

    def test_detach_is_idempotent_and_stops_publishing(self):
        vce = _make_vce()
        model = ControlPlaneModel(vce).attach()
        model.detach()
        model.detach()
        before = model.hub.published
        _run_randomdag(vce)
        assert model.hub.published == before

    def test_chaos_feed_events(self):
        vce = _make_vce(reliable_transport=True)
        model = ControlPlaneModel(vce).attach()
        feed = model.hub.subscribe("feed", topics=("chaos", "recovery"), limit=10_000)
        vce.chaos("daemon-bounce", seed=3)
        _run_randomdag(vce)
        topics = {e.topic for e in feed.drain()}
        assert "chaos" in topics


# ------------------------------------------------------ determinism (golden)


class TestGoldenInvariance:
    def test_digest_unchanged_with_control_plane_attached(self, tmp_path):
        """The golden randomdag digest is byte-identical with the control
        plane attached — even with a slow subscriber forcing drops — and
        a saved run directory round-trips to the same digest."""
        from pathlib import Path

        golden = (
            Path(__file__).resolve().parent / "golden" / "randomdag_seed3.digest"
        ).read_text().strip()

        from repro.workloads import build_random_dag

        graph = build_random_dag(layers=8, width=8, seed=3)
        vce = _make_vce(seed=3)
        model = ControlPlaneModel(vce).attach()
        slow = model.hub.subscribe("slow", limit=2)  # backpressure engaged
        run = vce.submit(graph, class_map={node.name: None for node in graph})
        vce.run_to_completion(run, timeout=100_000.0)
        assert run.state is RunState.DONE, run.error
        assert event_log_digest(vce.sim.log) == golden
        assert slow.dropped > 0  # the slow consumer really did fall behind
        # ... and a saved run directory verifies against its own manifest
        # (the on-disk digest covers the JSON round trip, so it is a
        # self-consistency check, not a cross-format one)
        rundir = str(tmp_path / "run")
        save_run_dir(vce, rundir)
        assert event_log_digest(load_run_dir(rundir)) == load_manifest(rundir)["digest"]

    @pytest.mark.parametrize("backend", ["serial", "sharded"])
    def test_serve_session_is_passive(self, backend):
        """Driving the same workload through ServeSession slices (the
        ``repro serve`` path) yields the same digest as a straight run."""
        from repro.workloads import build_random_dag

        def digest(with_session):
            vce = _make_vce(seed=3, backend=backend)
            if with_session:
                session = ServeSession(vce, slice_seconds=7.0)
                run = session.submit("randomdag", layers=4, width=4, seed=3)
                while not session.workload_done:
                    session.advance()
            else:
                graph = build_random_dag(layers=4, width=4, seed=3)
                run = vce.submit(graph, class_map={n.name: None for n in graph})
                vce.run_to_completion(run, timeout=100_000.0)
            assert run.state is RunState.DONE, run.error
            return event_log_digest(vce.sim.log)

        assert digest(True) == digest(False)


# -------------------------------------------------------------------- drain


class TestDrain:
    def test_drain_emits_control_events(self):
        vce = _make_vce()
        daemon = vce.drain_host("ws1")
        assert daemon.draining
        vce.drain_host("ws1")  # idempotent: no second event
        vce.undrain_host("ws1")
        assert not daemon.draining
        cats = [r.category for r in vce.sim.log if r.category.startswith("control.")]
        assert cats == ["control.drain", "control.undrain"]

    def test_drained_host_receives_no_new_instances(self):
        """A drained daemon stops bidding, so placement (stencil uses
        market bidding) routes around it mid-run."""
        vce = _make_vce(hosts=6)
        vce.drain_host("ws2")
        run = submit_workload(vce, "stencil", ranks=4, iterations=4)
        vce.run_to_completion(run, timeout=100_000.0)
        assert run.state is RunState.DONE, run.error
        hosts = {
            r.data.get("host")
            for r in vce.sim.log
            if r.category == "runtime.dispatch"
        }
        assert hosts and "ws2" not in hosts

    def test_undrained_host_bids_again(self):
        # ranks == workstations: the run can only allocate if the
        # undrained host came back into the bidding pool
        vce = _make_vce(hosts=4)
        vce.drain_host("ws1")
        vce.undrain_host("ws1")
        run = submit_workload(vce, "stencil", ranks=4, iterations=4)
        vce.run_to_completion(run, timeout=100_000.0)
        assert run.state is RunState.DONE, run.error


# ----------------------------------------------------------- run directories


class TestRunDir:
    def _saved(self, tmp_path):
        vce = _make_vce()
        _run_randomdag(vce)
        rundir = str(tmp_path / "run")
        save_run_dir(vce, rundir)
        return vce, rundir

    def test_round_trip(self, tmp_path):
        vce, rundir = self._saved(tmp_path)
        log = load_run_dir(rundir)
        assert len(log) == len(vce.sim.log)
        manifest = load_manifest(rundir)
        assert manifest["records"] == len(log)
        assert manifest["seed"] == 3 and manifest["backend"] == "serial"

    def test_truncated_events_detected(self, tmp_path):
        _, rundir = self._saved(tmp_path)
        events = f"{rundir}/events.jsonl"
        lines = open(events).read().splitlines()
        # cut mid-record: half the lines plus a torn final line
        open(events, "w").write("\n".join(lines[: len(lines) // 2] + ['{"time": 1.', ""]))
        with pytest.raises(TruncatedRunError):
            load_run_dir(rundir)

    def test_missing_manifest_detected(self, tmp_path):
        _, rundir = self._saved(tmp_path)
        import os

        os.remove(f"{rundir}/manifest.json")
        with pytest.raises(TruncatedRunError):
            load_run_dir(rundir)

    def test_tampered_record_fails_digest(self, tmp_path):
        _, rundir = self._saved(tmp_path)
        events = f"{rundir}/events.jsonl"
        lines = open(events).read().splitlines()
        record = json.loads(lines[0])
        record["time"] += 1.0
        lines[0] = json.dumps(record)
        open(events, "w").write("\n".join(lines) + "\n")
        with pytest.raises(TruncatedRunError, match="digest"):
            load_run_dir(rundir)


class TestRunDirCLI:
    @pytest.fixture
    def rundir(self, tmp_path):
        vce = _make_vce()
        _run_randomdag(vce)
        path = str(tmp_path / "run")
        save_run_dir(vce, path)
        return path

    def test_trace_reads_run_directory(self, rundir):
        from repro.cli import main

        out = io.StringIO()
        assert main(["trace", rundir], out=out) == 0
        text = out.getvalue()
        assert "run directory" in text and "critical path" in text

    def test_chaos_reads_run_directory(self, rundir):
        from repro.cli import main

        out = io.StringIO()
        assert main(["chaos", rundir], out=out) == 0
        assert "injected faults" in out.getvalue()

    @pytest.mark.parametrize("command", ["trace", "chaos"])
    def test_truncated_run_directory_friendly_error(self, rundir, command, capsys):
        from repro.cli import main

        with open(f"{rundir}/events.jsonl", "a") as fh:
            fh.write('{"time": 99')  # torn trailing write
        out = io.StringIO()
        assert main([command, rundir], out=out) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err
        assert "hint:" in err

    def test_save_run_flag(self, tmp_path, weather_file=None):
        from repro.cli import main
        from repro.workloads import WEATHER_SCRIPT

        script = tmp_path / "w.vce"
        script.write_text(WEATHER_SCRIPT)
        rundir = str(tmp_path / "saved")
        out = io.StringIO()
        assert main(["run", str(script), "--save-run", rundir], out=out) == 0
        assert "saved run directory" in out.getvalue()
        assert load_manifest(rundir)["records"] == len(load_run_dir(rundir))


# ------------------------------------------------------------- shared schema


class TestTopJsonSchema:
    def test_top_json_includes_watchdog_rules(self, tmp_path):
        from repro.cli import main
        from repro.workloads import WEATHER_SCRIPT

        script = tmp_path / "w.vce"
        script.write_text(WEATHER_SCRIPT)
        path = tmp_path / "top.json"
        out = io.StringIO()
        assert main(
            ["top", str(script), "--snapshot", "--json", str(path)], out=out
        ) == 0
        snap = json.loads(path.read_text())
        # one schema shared with GET /api/metrics on the control plane
        assert "health" in snap
        rules = snap["health"]["rules"]
        assert "host_down" in rules and "stranded" in rules
        assert all(set(v) >= {"active", "severity"} for v in rules.values())


# ------------------------------------------------------------------- server


async def _http(port, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
    if payload:
        head += f"Content-Type: application/json\r\nContent-Length: {len(payload)}\r\n"
    writer.write(head.encode() + b"\r\n" + payload)
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), timeout=30)
    writer.close()
    status_line, _, rest = raw.partition(b"\r\n")
    _, _, body_bytes = raw.partition(b"\r\n\r\n")
    return int(status_line.split(b" ")[1]), body_bytes


async def _read_sse(port, n_frames, topics=""):
    """Connect to /events and return (snapshot, frames) once *n_frames*
    unnamed data frames arrived."""
    query = f"?topics={topics}" if topics else ""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET /events{query} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    snapshot = None
    frames = []
    event_name = None
    while len(frames) < n_frames:
        line = (await asyncio.wait_for(reader.readline(), timeout=30)).decode().strip()
        if line.startswith("event:"):
            event_name = line.split(":", 1)[1].strip()
        elif line.startswith("data:"):
            obj = json.loads(line.split(":", 1)[1])
            if event_name == "snapshot":
                snapshot = obj
            else:
                frames.append(obj)
            event_name = None
    writer.close()
    return snapshot, frames


@pytest.mark.parametrize("backend", ["serial", "sharded"])
def test_server_end_to_end(backend, tmp_path):
    """Boot `repro serve`'s server on a random port, stream SSE entity
    events for a randomdag workload, drive the control API mid-run
    (chaos recipe + drain + snapshot), then shut down cleanly."""

    async def scenario():
        vce = _make_vce(seed=3, backend=backend)
        session = ServeSession(vce, slice_seconds=4.0)
        session.submit("randomdag", layers=4, width=4, seed=3)
        server = ControlPlaneServer(session, port=0)
        await server.start()
        port = server.port
        driver = asyncio.ensure_future(server.run(max_wall=60))

        snapshot, frames = await _read_sse(port, n_frames=3)
        assert snapshot is not None
        assert {h["name"] for h in snapshot["hosts"]} >= {"ws0", "ws1", "ws2", "ws3"}
        assert all("topic" in f and "seq" in f for f in frames)

        status, body = await _http(port, "GET", "/api/state")
        assert status == 200 and len(json.loads(body)["hosts"]) >= 4

        status, body = await _http(port, "GET", "/api/metrics")
        assert status == 200 and "health" in json.loads(body)

        status, body = await _http(
            port, "POST", "/api/chaos", {"schedule": "daemon-bounce", "seed": 3}
        )
        assert status == 200 and json.loads(body)["actions"] > 0

        status, body = await _http(port, "POST", "/api/drain", {"host": "ws1"})
        assert status == 200 and json.loads(body)["draining"] is True
        assert vce.daemons["ws1"].draining

        status, body = await _http(
            port, "POST", "/api/drain", {"host": "ws1", "undrain": True}
        )
        assert status == 200 and json.loads(body)["draining"] is False

        rundir = str(tmp_path / f"snap-{backend}")
        status, body = await _http(port, "POST", "/api/snapshot", {"path": rundir})
        assert status == 200

        status, body = await _http(port, "GET", "/")
        assert status == 200 and b"<!doctype html>" in body.lower()

        status, _ = await _http(port, "POST", "/api/shutdown")
        assert status == 200
        await asyncio.wait_for(driver, timeout=30)
        assert load_manifest(rundir)["backend"] == backend
        return session

    session = asyncio.run(scenario())
    assert session.hub.published > 0


def test_server_rejects_bad_requests():
    async def scenario():
        session = ServeSession(_make_vce(), slice_seconds=4.0)
        server = ControlPlaneServer(session, port=0)
        await server.start()
        port = server.port
        driver = asyncio.ensure_future(server.run(max_wall=30))
        checks = [
            ("GET", "/nope", None, 404),
            ("POST", "/api/drain", {"host": "nosuch"}, 404),
            ("POST", "/api/submit", {"workload": "frobnicate"}, 400),
            ("POST", "/api/chaos", {"schedule": "not-a-schedule"}, 400),
        ]
        for method, path, body, expect in checks:
            status, _ = await _http(port, method, path, body)
            assert status == expect, (path, status)
        await _http(port, "POST", "/api/shutdown")
        await asyncio.wait_for(driver, timeout=30)

    asyncio.run(scenario())


def test_serve_cli_headless(tmp_path):
    """`repro serve --workload ... --exit-when-done` runs unattended to
    completion (the CI smoke path, minus curl)."""
    from repro.cli import main

    out = io.StringIO()
    rundir = str(tmp_path / "run")
    code = main(
        [
            "serve",
            "--workload", "randomdag",
            "--layers", "3",
            "--width", "3",
            "--seed", "3",
            "--cluster", "ws:4",
            "--port", "0",
            "--pace", "0",
            "--exit-when-done",
            "--max-wall", "60",
            "--save-run", rundir,
        ],
        out=out,
    )
    text = out.getvalue()
    assert code == 0, text
    assert "control plane on http://" in text
    assert "stopped at t=" in text
    assert load_manifest(rundir)["records"] > 0
