"""Tests for task nodes, arcs, and the task graph analyses."""

import pytest
from hypothesis import given, strategies as st

from repro.taskgraph import (
    Arc,
    ArcKind,
    ExecutionHints,
    ProblemClass,
    TaskGraph,
    TaskNature,
    TaskNode,
)
from repro.util.errors import TaskGraphError


class TestTaskNode:
    def test_defaults(self):
        t = TaskNode("t")
        assert t.work == 1.0 and t.instances == 1
        assert not t.designed and not t.coded
        assert not t.local

    def test_validation(self):
        with pytest.raises(TaskGraphError):
            TaskNode("")
        with pytest.raises(TaskGraphError):
            TaskNode("t", work=-1)
        with pytest.raises(TaskGraphError):
            TaskNode("t", instances=0)
        with pytest.raises(TaskGraphError):
            TaskNode("t", hints=ExecutionHints(redundancy=0))

    def test_designed_and_coded_flags(self):
        t = TaskNode("t", problem_class=ProblemClass.SYNCHRONOUS)
        assert t.designed and not t.coded
        t.language = "hpf"
        t.program = lambda ctx: iter(())
        assert t.coded

    def test_hardware_requirements_merges_memory_and_files(self):
        t = TaskNode("t", memory_mb=128, input_files=["a.dat"], requirements={"os": "unix"})
        reqs = t.hardware_requirements()
        assert reqs == {"os": "unix", "min_memory_mb": 128, "files": ["a.dat"]}

    def test_hardware_requirements_explicit_not_overridden(self):
        t = TaskNode("t", memory_mb=128, requirements={"min_memory_mb": 512})
        assert t.hardware_requirements()["min_memory_mb"] == 512

    def test_problem_class_parse(self):
        assert ProblemClass.parse("sync") is ProblemClass.SYNCHRONOUS
        assert ProblemClass.parse("loosely-synchronous") is ProblemClass.LOOSELY_SYNCHRONOUS
        assert ProblemClass.parse("ASYNC") is ProblemClass.ASYNCHRONOUS
        with pytest.raises(ValueError):
            ProblemClass.parse("chaotic")

    def test_nature_flags_combine(self):
        n = TaskNature.GRAPHIC | TaskNature.INTERACTIVE
        assert TaskNature.GRAPHIC in n and TaskNature.IO_INTENSIVE not in n


class TestArc:
    def test_self_arc_rejected(self):
        with pytest.raises(TaskGraphError):
            Arc("a", "a")

    def test_negative_volume_rejected(self):
        with pytest.raises(TaskGraphError):
            Arc("a", "b", volume=-1)

    def test_precedence_kinds(self):
        assert ArcKind.DEPENDENCY.is_precedence
        assert ArcKind.DATA.is_precedence
        assert not ArcKind.STREAM.is_precedence


def diamond() -> TaskGraph:
    g = TaskGraph("diamond")
    for name, work in [("a", 1), ("b", 2), ("c", 5), ("d", 1)]:
        g.add_task(TaskNode(name, work=work))
    g.connect("a", "b")
    g.connect("a", "c")
    g.connect("b", "d")
    g.connect("c", "d")
    return g


class TestTaskGraph:
    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        g.add_task(TaskNode("x"))
        with pytest.raises(TaskGraphError):
            g.add_task(TaskNode("x"))

    def test_arc_to_unknown_task_rejected(self):
        g = TaskGraph()
        g.add_task(TaskNode("x"))
        with pytest.raises(TaskGraphError):
            g.connect("x", "ghost")

    def test_cycle_detection(self):
        g = TaskGraph()
        for n in "abc":
            g.add_task(TaskNode(n))
        g.connect("a", "b")
        g.connect("b", "c")
        g.connect("c", "a")
        with pytest.raises(TaskGraphError, match="cycle"):
            g.validate()

    def test_stream_cycles_allowed(self):
        g = TaskGraph()
        g.add_task(TaskNode("client"))
        g.add_task(TaskNode("server"))
        g.connect("client", "server", ArcKind.STREAM)
        g.connect("server", "client", ArcKind.STREAM)
        g.validate()  # no raise

    def test_topological_order(self):
        order = diamond().topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_levels(self):
        assert diamond().levels() == [["a"], ["b", "c"], ["d"]]

    def test_roots_and_sinks(self):
        g = diamond()
        assert g.roots() == ["a"]
        assert g.sinks() == ["d"]

    def test_critical_path(self):
        path, length = diamond().critical_path()
        assert path == ["a", "c", "d"]
        assert length == 7

    def test_critical_path_empty_graph(self):
        assert TaskGraph().critical_path() == ([], 0.0)

    def test_total_work_counts_instances(self):
        g = TaskGraph()
        g.add_task(TaskNode("t", work=10, instances=3))
        assert g.total_work() == 30

    def test_predecessors_ignore_stream(self):
        g = TaskGraph()
        for n in "ab":
            g.add_task(TaskNode(n))
        g.connect("a", "b", ArcKind.STREAM)
        assert g.predecessors("b") == []
        assert g.stream_peers("b") == ["a"]
        assert g.stream_peers("a") == ["b"]

    def test_subset(self):
        sub = diamond().subset(["a", "b"])
        assert len(sub) == 2
        assert len(sub.arcs) == 1

    def test_to_networkx(self):
        nxg = diamond().to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 4
        assert nxg.nodes["c"]["work"] == 5

    def test_to_dot_contains_nodes_and_edges(self):
        dot = diamond().to_dot()
        assert '"a"' in dot and '"a" -> "b"' in dot and dot.startswith("digraph")

    def test_arcs_from_into(self):
        g = diamond()
        assert {a.dst for a in g.arcs_from("a")} == {"b", "c"}
        assert {a.src for a in g.arcs_into("d")} == {"b", "c"}

    @given(st.integers(2, 15), st.integers(0))
    def test_random_layered_dag_levels_consistent(self, width, seed):
        import random

        rng = random.Random(seed)
        g = TaskGraph()
        layers = [[f"t{i}_{j}" for j in range(rng.randint(1, width))] for i in range(3)]
        for layer in layers:
            for name in layer:
                g.add_task(TaskNode(name))
        for i in range(2):
            for dst in layers[i + 1]:
                src = rng.choice(layers[i])
                g.connect(src, dst)
        levels = g.levels()
        # every task appears exactly once across levels
        flat = [n for level in levels for n in level]
        assert sorted(flat) == sorted(t.name for t in g)
        # precedence respected
        order = {n: i for i, level in enumerate(levels) for n in level}
        for arc in g.arcs:
            assert order[arc.src] < order[arc.dst]
