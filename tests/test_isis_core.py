"""Tests for vector clocks and views (the pure-data parts of repro.isis)."""

import pytest
from hypothesis import given, strategies as st

from repro.isis import VectorClock, View
from repro.netsim import Address


class TestVectorClock:
    def test_missing_entries_zero(self):
        assert VectorClock().get("a") == 0

    def test_increment_and_get(self):
        vc = VectorClock()
        vc.increment("a")
        vc.increment("a")
        vc.increment("b")
        assert vc.get("a") == 2 and vc.get("b") == 1

    def test_merge_pointwise_max(self):
        a = VectorClock({"x": 3, "y": 1})
        b = VectorClock({"x": 1, "y": 5, "z": 2})
        a.merge(b)
        assert (a.get("x"), a.get("y"), a.get("z")) == (3, 5, 2)

    def test_snapshot_independent(self):
        vc = VectorClock({"a": 1})
        snap = vc.snapshot()
        vc.increment("a")
        assert snap.get("a") == 1 and vc.get("a") == 2

    def test_bss_delivery_condition(self):
        # receiver has delivered 1 msg from s, nothing else
        recv = VectorClock({"s": 1})
        next_msg = VectorClock({"s": 2})
        assert recv.can_deliver_from("s", next_msg)
        gap_msg = VectorClock({"s": 3})
        assert not recv.can_deliver_from("s", gap_msg)
        dependent = VectorClock({"s": 2, "t": 1})  # depends on undelivered t msg
        assert not recv.can_deliver_from("s", dependent)

    def test_ordering_relations(self):
        small = VectorClock({"a": 1})
        big = VectorClock({"a": 2, "b": 1})
        assert small < big
        assert small <= big
        assert not big <= small
        assert not small.concurrent_with(big)

    def test_concurrent(self):
        x = VectorClock({"a": 1})
        y = VectorClock({"b": 1})
        assert x.concurrent_with(y)

    def test_equality_ignores_zero_entries(self):
        assert VectorClock({"a": 0}) == VectorClock()

    @given(
        st.dictionaries(st.sampled_from("abcd"), st.integers(0, 10)),
        st.dictionaries(st.sampled_from("abcd"), st.integers(0, 10)),
    )
    def test_merge_is_lub(self, d1, d2):
        a, b = VectorClock(d1), VectorClock(d2)
        merged = a.snapshot()
        merged.merge(b)
        assert a <= merged and b <= merged
        for k in "abcd":
            assert merged.get(k) == max(a.get(k), b.get(k))

    @given(st.dictionaries(st.sampled_from("abc"), st.integers(0, 5)))
    def test_le_reflexive(self, d):
        vc = VectorClock(d)
        assert vc <= vc and not vc < vc


class TestView:
    def _view(self):
        return View(3, (Address("h1", "p"), Address("h2", "p"), Address("h3", "p")))

    def test_coordinator_is_oldest(self):
        assert self._view().coordinator == Address("h1", "p")

    def test_rank(self):
        view = self._view()
        assert view.rank(Address("h1", "p")) == 0
        assert view.rank(Address("h3", "p")) == 2
        with pytest.raises(ValueError):
            view.rank(Address("h9", "p"))

    def test_contains_len(self):
        view = self._view()
        assert Address("h2", "p") in view
        assert Address("h9", "p") not in view
        assert len(view) == 3

    def test_without(self):
        view = self._view()
        assert view.without(Address("h2", "p")) == (Address("h1", "p"), Address("h3", "p"))

    def test_majority(self):
        assert self._view().majority() == 2
        assert View(1, (Address("a", "p"),)).majority() == 1
        four = View(1, tuple(Address(f"h{i}", "p") for i in range(4)))
        assert four.majority() == 3
