"""Direct unit tests for the recovery invariants in repro.faults.invariants."""

from types import SimpleNamespace

import pytest

from repro.faults.invariants import (
    leadership_transfer_times,
    surviving_leader_is_oldest,
    views_converged,
)
from repro.util.eventlog import EventLog


class TestLeadershipTransferTimes:
    def test_pairs_takeover_with_latest_prior_crash(self):
        log = EventLog()
        log.emit(2.0, "fault.crash", "ws0")
        log.emit(5.0, "fault.crash", "ws1")
        log.emit(7.5, "isis.takeover", "ws2/sched", group="sched")
        assert leadership_transfer_times(log, "sched") == [2.5]

    def test_multiple_takeovers(self):
        log = EventLog()
        log.emit(1.0, "fault.crash_leader", "ws0")
        log.emit(2.0, "isis.takeover", "ws1/sched", group="sched")
        log.emit(10.0, "fault.crash", "ws1")
        log.emit(10.4, "isis.takeover", "ws2/sched", group="sched")
        assert leadership_transfer_times(log, "sched") == pytest.approx([1.0, 0.4])

    def test_other_groups_ignored(self):
        log = EventLog()
        log.emit(1.0, "fault.crash", "ws0")
        log.emit(2.0, "isis.takeover", "ws1/other", group="other")
        assert leadership_transfer_times(log, "sched") == []

    def test_takeover_without_prior_crash_ignored(self):
        log = EventLog()
        log.emit(1.0, "isis.takeover", "ws1/sched", group="sched")
        log.emit(2.0, "fault.crash", "ws0")
        assert leadership_transfer_times(log, "sched") == []

    def test_empty_log(self):
        assert leadership_transfer_times(EventLog(), "sched") == []


class TestSurvivingLeaderIsOldest:
    MEMBERS = ["ws0/sched", "ws1/sched", "ws2/sched"]

    def test_oldest_survivor_leads(self):
        assert surviving_leader_is_oldest(self.MEMBERS, "ws1/sched", {"ws0"})

    def test_younger_survivor_leading_violates(self):
        assert not surviving_leader_is_oldest(self.MEMBERS, "ws2/sched", {"ws0"})

    def test_no_crash_keeps_original_leader(self):
        assert surviving_leader_is_oldest(self.MEMBERS, "ws0/sched", set())

    def test_no_survivors_is_violation(self):
        assert not surviving_leader_is_oldest(
            self.MEMBERS, "ws0/sched", {"ws0", "ws1", "ws2"}
        )


def _member(joined, view_id=1, members=("a", "b")):
    return SimpleNamespace(
        joined=joined, view=SimpleNamespace(view_id=view_id, members=tuple(members))
    )


class TestViewsConverged:
    def test_agreeing_members_converge(self):
        assert views_converged([_member(True), _member(True)])

    def test_view_id_disagreement(self):
        assert not views_converged([_member(True, view_id=1), _member(True, view_id=2)])

    def test_membership_disagreement(self):
        assert not views_converged(
            [_member(True, members=("a",)), _member(True, members=("a", "b"))]
        )

    def test_unjoined_members_ignored(self):
        assert views_converged([_member(True), _member(False, view_id=99)])

    def test_no_live_members_is_vacuously_converged(self):
        assert views_converged([_member(False)])
        assert views_converged([])
