"""Soak test: a busy VCE under churn, migration, and owner activity.

One long deterministic run combining most subsystems, with invariant
checks over the complete event log. This is the failure-injection
regression net: if a protocol interaction breaks (lost completions,
double-finishes, migrations to dead hosts), it shows up here.
"""

import pytest

from repro.core import VCEConfig, VirtualComputingEnvironment, workstation_cluster
from repro.loadbalance import MigrateOnLoadPolicy
from repro.machines import MachineClass
from repro.scheduler.execution_program import RunState
from repro.workloads import (
    build_monte_carlo_graph,
    build_pipeline_graph,
    build_sweep_graph,
)


def soak_run(seed=42):
    machines = workstation_cluster(
        10, stochastic_load=(45.0, 30.0, 0.9), seed=seed
    )
    vce = VirtualComputingEnvironment(machines, VCEConfig(seed=seed)).boot()
    vce.enable_load_balancing(
        MigrateOnLoadPolicy(vce.migration), busy_threshold=0.5, interval=1.0
    )
    # churn two machines (never the current leader)
    leader_host = vce.directory.leader(MachineClass.WORKSTATION).host
    churners = [n for n in ("ws8", "ws9") if n != leader_host][:2]
    vce.faults.churn(churners, mean_up=90.0, mean_down=25.0, until=vce.sim.now + 500.0)

    runs = []
    for i in range(8):
        if i % 3 == 0:
            graph = build_pipeline_graph(stages=3, stage_work=20.0, name=f"pipe{i}")
        elif i % 3 == 1:
            graph = build_sweep_graph(points=3, work_per_point=30.0, name=f"sweep{i}")
        else:
            graph = build_monte_carlo_graph(
                workers=3, samples_per_worker=9_000, batches=10,
                work_per_batch=4.0, seed=i,
            )
            graph.name = f"mc{i}"
        runs.append(vce.submit(graph, queue_if_insufficient=True))
        vce.run(until=vce.sim.now + 10.0)
    vce.run(until=vce.sim.now + 1_500.0)
    return vce, runs


@pytest.fixture(scope="module")
def soak():
    return soak_run()


class TestSoak:
    def test_every_run_reaches_a_terminal_state(self, soak):
        vce, runs = soak
        for i, run in enumerate(runs):
            assert run.state in (RunState.DONE, RunState.FAILED), (
                f"run {i} stuck in {run.state}: {run.error}"
            )

    def test_most_runs_complete(self, soak):
        vce, runs = soak
        done = sum(1 for r in runs if r.state is RunState.DONE)
        assert done >= 5, [r.error for r in runs if r.state is not RunState.DONE]

    def test_churn_and_migration_actually_happened(self, soak):
        vce, runs = soak
        assert vce.faults.crashes >= 2
        assert len(vce.metrics().migrations()) >= 1

    def test_no_instance_finishes_twice(self, soak):
        vce, runs = soak
        seen = {}
        for record in vce.sim.log.records(category="app.done"):
            assert record.source not in seen, f"app {record.source} done twice"
            seen[record.source] = record.time

    def test_no_task_started_on_downed_host(self, soak):
        vce, runs = soak
        # build up/down intervals per host from the fault log
        down_at = {}
        intervals = {name: [] for name in vce.network.hosts}
        for record in vce.sim.log:
            if record.category in ("fault.crash", "host.crash"):
                down_at[record.source] = record.time
            elif record.category in ("fault.recover", "host.recover"):
                if record.source in down_at:
                    intervals[record.source].append(
                        (down_at.pop(record.source), record.time)
                    )
        horizon = vce.sim.now
        for host, start in down_at.items():
            intervals[host].append((start, horizon))
        for record in vce.sim.log.records(category="task.start"):
            host = record.get("host")
            for lo, hi in intervals.get(host, []):
                assert not (lo < record.time < hi), (
                    f"task started on {host} at {record.time} while down ({lo},{hi})"
                )

    def test_makespans_are_sane(self, soak):
        vce, runs = soak
        for run in runs:
            if run.state is RunState.DONE:
                assert 0 < run.app.makespan < 1_500.0

    def test_deterministic_repeat(self):
        """The entire soak — churn, owner activity, migrations, queueing —
        replays identically under one seed."""

        def fingerprint(seed):
            vce, runs = soak_run(seed)
            return (
                [(r.state.value, r.completed_at) for r in runs],
                vce.faults.crashes,
                len(vce.metrics().migrations()),
                vce.network.messages_sent,
            )

        assert fingerprint(7) == fingerprint(7)


def chaos_soak_run(seed=21, backend="serial", shards=4):
    """A busy cluster under the lossy schedule plus daemon bounces, with
    the fault-tolerant execution layer on."""
    from repro.faults.schedule import FaultSchedule
    from repro.migration.failover import FailoverConfig

    machines = workstation_cluster(8)
    config = VCEConfig(
        seed=seed,
        backend=backend,
        shards=shards,
        reliable_transport=True,
        failover=FailoverConfig(),
    )
    vce = VirtualComputingEnvironment(machines, config).boot()
    vce.chaos("lossy", seed=seed)
    bounces = FaultSchedule("bounce-two")
    bounces.bounce(6.0, "ws3", down_for=5.0).bounce(20.0, "ws5", down_for=5.0)
    vce.chaos(bounces)

    runs = []
    for i in range(6):
        if i % 2 == 0:
            graph = build_pipeline_graph(stages=3, stage_work=12.0, name=f"pipe{i}")
        else:
            graph = build_sweep_graph(points=3, work_per_point=18.0, name=f"sweep{i}")
        runs.append(vce.submit(graph, queue_if_insufficient=True))
        vce.run(until=vce.sim.now + 8.0)
    vce.run(until=vce.sim.now + 1_000.0)
    return vce, runs


@pytest.fixture(scope="module")
def chaos_soak():
    return chaos_soak_run()


class TestChaosSoak:
    def test_every_run_completes_despite_faults(self, chaos_soak):
        vce, runs = chaos_soak
        for i, run in enumerate(runs):
            assert run.state is RunState.DONE, (
                f"run {i} ended {run.state}: {run.error}"
            )

    def test_faults_and_losses_happened(self, chaos_soak):
        vce, runs = chaos_soak
        report = vce.chaos_controller.report()
        assert report.get("crash", 0) == 2 and report.get("restart", 0) == 2
        # a 5% drop schedule over a busy cluster must cost retransmissions
        assert vce.network.retransmissions > 0

    def test_no_app_finishes_twice(self, chaos_soak):
        vce, runs = chaos_soak
        seen = set()
        for record in vce.sim.log.records(category="app.done"):
            assert record.source not in seen, f"app {record.source} done twice"
            seen.add(record.source)

    def test_chaos_soak_deterministic(self):
        def fingerprint(seed):
            vce, runs = chaos_soak_run(seed)
            return (
                [(r.state.value, r.completed_at) for r in runs],
                vce.network.retransmissions,
                vce.network.messages_sent,
                vce.chaos_controller.report(),
            )

        assert fingerprint(33) == fingerprint(33)


@pytest.fixture(scope="module")
def sharded_chaos_soak():
    """The same chaos soak on the sharded backend (3 shards — a count the
    golden tests don't cover, so invariance is not an artifact of one
    partitioning)."""
    return chaos_soak_run(backend="sharded", shards=3)


class TestShardedChaosSoak:
    """The fault-tolerant layer must behave identically on the sharded
    backend: exactly-once commits and recovery telemetry in parity with the
    serial run of the same soak."""

    def test_every_run_completes_despite_faults(self, sharded_chaos_soak):
        vce, runs = sharded_chaos_soak
        for i, run in enumerate(runs):
            assert run.state is RunState.DONE, (
                f"run {i} ended {run.state}: {run.error}"
            )

    def test_exactly_once_commit(self, sharded_chaos_soak):
        vce, runs = sharded_chaos_soak
        seen = set()
        for record in vce.sim.log.records(category="app.done"):
            assert record.source not in seen, f"app {record.source} done twice"
            seen.add(record.source)
        assert len(seen) == len(runs)

    def test_parity_with_serial_backend(self, chaos_soak, sharded_chaos_soak):
        """The serial and sharded soaks must be the same run: identical
        event-log digest, fault injections, and recovery telemetry."""
        from repro.trace.replay import event_log_digest

        serial_vce, _ = chaos_soak
        sharded_vce, _ = sharded_chaos_soak
        assert event_log_digest(sharded_vce.sim.log) == event_log_digest(
            serial_vce.sim.log
        )

        def counters(vce, name):
            family = vce.sim.telemetry.get(name)
            if family is None:
                return {}
            return {values: child.value for values, child in family.samples()}

        for name in ("faults_injected_total", "recovery_actions_total"):
            assert counters(sharded_vce, name) == counters(serial_vce, name), name
        assert (
            sharded_vce.network.retransmissions == serial_vce.network.retransmissions
        )

    def test_shards_shared_the_work(self, sharded_chaos_soak):
        """Partitioning sanity: more than one shard committed events, and
        cross-shard channels carried traffic."""
        vce, runs = sharded_chaos_soak
        stats = vce.sim.shard_stats()
        busy = [s for s in stats["per_shard"] if s["events"] > 0]
        assert len(busy) > 1
        assert stats["cross_shard_events"] > 0


# ----------------------------------------- multi-tenant soak (repro soak)
#
# A small seeded multi-tenant soak run (~200 applications, ~2.4k drawn
# instances on 24 workstations, fanout-4 hierarchical bidding, quotas
# tight enough that admissions must wait) is driven to completion once
# per module; the classes below assert the pinned end-state against that
# shared run: determinism across repeats and backends, exactly-once
# completion, and the quota/aging invariants actually engaging.

import dataclasses

from repro.soak import SoakConfig, run_soak

SMALL_SOAK = SoakConfig(
    tenants=6,
    apps=200,
    machines=24,
    fanout=4,
    seed=0,
    instances=(8, 16),
    work=(4.0, 8.0),
    mean_quota=80,  # tight: forces a visible admission backlog
    arrival_span=120.0,
    telemetry_interval=200.0,
    pulse=2.0,
    settle=20.0,
)


@pytest.fixture(scope="module")
def small_soak():
    return run_soak(SMALL_SOAK)


class TestTenantSoakEndState:
    def test_everything_admitted_completes(self, small_soak):
        _, driver, report = small_soak
        assert report.submitted == SMALL_SOAK.apps
        assert report.failed == 0
        assert report.completed == report.admitted == SMALL_SOAK.apps
        assert driver.finished

    def test_exactly_once_completion(self, small_soak):
        _, driver, report = small_soak
        assert driver._duplicate_finishes == 0
        assert len(driver._done_app_ids) == report.completed + report.failed

    def test_admission_control_engaged(self, small_soak):
        vce, driver, report = small_soak
        # tight quotas: some arrivals waited, all were eventually admitted
        assert report.held > 0
        assert report.max_admission_wait > 0.0
        assert not driver.pending
        waited = vce.sim.log.records(category="soak.admit_held")
        assert len(waited) == report.held

    def test_no_tenant_exceeds_quota_and_none_starves(self, small_soak):
        _, _, report = small_soak
        assert report.tenants  # snapshot present
        for name, t in report.tenants.items():
            assert t["peak_admitted"] <= t["quota"], name
            assert t["admitted"] == 0, name  # all capacity released at end
            assert t["apps_completed"] == t["apps_admitted"], name
            assert t["apps_failed"] == 0, name

    def test_hierarchy_engaged(self, small_soak):
        _, _, report = small_soak
        assert report.delegations > 0
        # per-round polling well under the flat broadcast's fan-out
        assert 0 < report.bid_fanout_per_round < SMALL_SOAK.machines
        assert 0.0 < report.sched_event_share < 1.0

    def test_live_instance_peak_recorded(self, small_soak):
        _, _, report = small_soak
        assert report.peak_live_instances > 0
        assert report.peak_admitted_instances >= report.peak_live_instances


class TestTenantSoakDeterminism:
    def test_repeat_run_is_byte_identical(self, small_soak):
        _, _, first = small_soak
        _, _, second = run_soak(SMALL_SOAK)
        assert second.digest == first.digest
        assert second.to_dict() == first.to_dict()

    def test_sharded_backend_is_byte_identical(self, small_soak):
        _, _, serial = small_soak
        for shards in (2, 3):
            cfg = dataclasses.replace(SMALL_SOAK, backend="sharded", shards=shards)
            _, _, sharded = run_soak(cfg)
            assert sharded.digest == serial.digest, shards
            assert dict(sharded.to_dict(), backend="serial") == serial.to_dict()

    def test_seed_changes_the_schedule(self, small_soak):
        _, _, base = small_soak
        _, _, other = run_soak(dataclasses.replace(SMALL_SOAK, seed=1))
        assert other.digest != base.digest
        # but the same invariants hold on any seed
        assert other.failed == 0
        assert other.completed == other.admitted == SMALL_SOAK.apps


class TestTenantSoakUnderChaos:
    def test_partition_merge_does_not_strand_queued_requests(self):
        """Regression: a request age-queued by the leader of a minority
        partition view must survive the group merge — the ex-leader hands
        its replicated queue mirror to the winning coordinator — instead
        of wedging the run until max_sim_time with one app never placed.
        At seed 0 this config partitions the group right as an allocation
        falls short and gets queued on the minority side."""
        cfg = SoakConfig(
            tenants=4,
            apps=30,
            machines=16,
            fanout=4,
            seed=0,
            instances=(8, 16),
            work=(4.0, 8.0),
            arrival_span=30.0,
            chaos="chaos-mix",
            max_sim_time=5_000.0,
        )
        _, driver, report = run_soak(cfg)
        assert driver.finished
        assert report.completed == report.admitted == cfg.apps
        assert report.makespan < cfg.max_sim_time

    def test_chaos_mix_still_completes_exactly_once(self):
        cfg = dataclasses.replace(
            SMALL_SOAK, apps=60, arrival_span=60.0, chaos="chaos-mix"
        )
        _, driver, report = run_soak(cfg)
        assert report.submitted == cfg.apps
        assert report.completed + report.failed == report.admitted == cfg.apps
        assert report.completed == cfg.apps  # failover keeps every app alive
        assert driver._duplicate_finishes == 0
        assert len(driver._done_app_ids) == cfg.apps
        for name, t in report.tenants.items():
            assert t["peak_admitted"] <= t["quota"], name
