"""Tests for the LocalBackend (real threaded execution)."""

import threading
import time

import pytest

from repro.runtime import Placement
from repro.runtime.local import (
    LocalBackend,
    LocalExecutionError,
    round_robin_local_placement,
)
from repro.sdm import ProblemSpecification
from repro.util.errors import ConfigurationError


def simple_graph(instances=1):
    spec = ProblemSpecification("local").task("t", instances=instances)
    return spec.build()


class TestLocalBackend:
    def test_single_task_returns_result(self):
        graph = simple_graph()
        with LocalBackend(["m0"]) as backend:
            results = backend.run(
                graph,
                round_robin_local_placement(graph, ["m0"]),
                {"t": lambda ctx: 40 + 2},
            )
        assert results == {"t": [42]}

    def test_ranks_get_distinct_contexts(self):
        graph = simple_graph(instances=4)
        with LocalBackend(["m0", "m1"]) as backend:
            results = backend.run(
                graph,
                round_robin_local_placement(graph, ["m0", "m1"]),
                {"t": lambda ctx: (ctx.rank, ctx.size, ctx.machine)},
            )
        assert [r[0] for r in results["t"]] == [0, 1, 2, 3]
        assert all(r[1] == 4 for r in results["t"])
        assert {r[2] for r in results["t"]} == {"m0", "m1"}

    def test_precedence_and_inputs(self):
        spec = (
            ProblemSpecification("pipe")
            .task("produce", instances=2)
            .task("combine")
            .flow("produce", "combine")
        )
        graph = spec.build()

        def produce(ctx):
            return (ctx.rank + 1) * 10

        def combine(ctx):
            return sum(ctx.inputs["produce"])

        with LocalBackend(["m0", "m1"]) as backend:
            results = backend.run(
                graph,
                round_robin_local_placement(graph, ["m0", "m1"]),
                {"produce": produce, "combine": combine},
            )
        assert results["combine"] == [30]

    def test_real_parallelism_across_machines(self):
        """Two 0.2s sleeps on two machines overlap in wall time.

        Asserts on *overlap* (every rank starts before any rank ends),
        not on total elapsed time — absolute thresholds flake under CI
        load, overlap only fails if a ready thread sat unscheduled for
        the whole 0.2s nap.  (Single-machine serialization is covered by
        ``test_same_machine_serializes``.)
        """
        graph = simple_graph(instances=2)
        spans = {}
        lock = threading.Lock()

        def nap(ctx):
            start = time.perf_counter()
            time.sleep(0.2)
            with lock:
                spans[ctx.rank] = (start, time.perf_counter())
            return ctx.rank

        machines = ["m0", "m1"]
        with LocalBackend(machines) as backend:
            backend.run(
                graph,
                round_robin_local_placement(graph, machines),
                {"t": nap},
                timeout=5.0,
            )
        assert len(spans) == 2
        latest_start = max(start for start, _ in spans.values())
        earliest_end = min(end for _, end in spans.values())
        assert latest_start < earliest_end, f"no overlap: {spans}"

    def test_same_machine_serializes(self):
        graph = simple_graph(instances=3)
        order = []
        lock = threading.Lock()

        def record(ctx):
            with lock:
                order.append(("start", ctx.rank))
            time.sleep(0.01)
            with lock:
                order.append(("end", ctx.rank))

        with LocalBackend(["m0"]) as backend:
            backend.run(
                graph, round_robin_local_placement(graph, ["m0"]), {"t": record}
            )
        # strictly alternating start/end: no overlap on one machine
        for i in range(0, len(order), 2):
            assert order[i][0] == "start" and order[i + 1][0] == "end"
            assert order[i][1] == order[i + 1][1]

    def test_task_exception_raises(self):
        graph = simple_graph()

        def boom(ctx):
            raise ValueError("kaput")

        with LocalBackend(["m0"]) as backend:
            with pytest.raises(LocalExecutionError) as info:
                backend.run(
                    graph, round_robin_local_placement(graph, ["m0"]), {"t": boom}
                )
        assert isinstance(info.value.__cause__, ValueError)

    def test_params_passed(self):
        graph = simple_graph()
        with LocalBackend(["m0"]) as backend:
            results = backend.run(
                graph,
                round_robin_local_placement(graph, ["m0"]),
                {"t": lambda ctx: ctx.params["x"] * 2},
                params={"x": 21},
            )
        assert results["t"] == [42]

    def test_validation_errors(self):
        graph = simple_graph()
        with pytest.raises(ConfigurationError):
            LocalBackend([])
        with pytest.raises(ConfigurationError):
            LocalBackend(["a", "a"])
        backend = LocalBackend(["m0"])
        with pytest.raises(ConfigurationError, match="placement"):
            backend.run(graph, Placement(), {"t": lambda ctx: 1})
        with pytest.raises(ConfigurationError, match="no local programs"):
            backend.run(
                graph, round_robin_local_placement(graph, ["m0"]), {}
            )
        bad = Placement()
        bad.assign("t", 0, "ghost")
        with pytest.raises(ConfigurationError, match="unknown machine"):
            backend.run(graph, bad, {"t": lambda ctx: 1})
        backend.close()
        with pytest.raises(ConfigurationError, match="closed"):
            backend.run(graph, round_robin_local_placement(graph, ["m0"]), {"t": lambda c: 1})

    def test_diamond_order(self):
        spec = (
            ProblemSpecification("d")
            .task("a")
            .task("b")
            .task("c")
            .task("d")
        )
        spec.flow("a", "b").flow("a", "c").flow("b", "d").flow("c", "d")
        graph = spec.build()
        seen = []
        lock = threading.Lock()

        def mk(name):
            def fn(ctx):
                with lock:
                    seen.append(name)
                return name

            return fn

        with LocalBackend(["m0", "m1"]) as backend:
            backend.run(
                graph,
                round_robin_local_placement(graph, ["m0", "m1"]),
                {n: mk(n) for n in "abcd"},
            )
        assert seen[0] == "a" and seen[-1] == "d"
        assert set(seen[1:3]) == {"b", "c"}
