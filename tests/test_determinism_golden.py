"""Golden replay digests: the whole-run determinism regression gate.

Each scenario runs a workload to completion and digests the full event log
(:func:`event_log_digest`). The digests are checked against golden files
in ``tests/golden/`` that were generated in a *different* process — so any
nondeterminism that leaks into the event schedule (hash-randomized set
iteration, unseeded RNG, wall-clock reads) fails these tests under CI's
randomized ``PYTHONHASHSEED`` even when a single process is self-consistent.

Each scenario also runs twice in-process to pin rerun determinism (fresh
simulator state, same digest).

Regenerate after an *intended* event-schedule change::

    PYTHONPATH=src python tests/test_determinism_golden.py

and commit the updated files with the change that caused them.
"""

from pathlib import Path

import pytest

from repro.trace.replay import event_log_digest

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _randomdag(seed: int, backend: str = "serial", shards: int = 4):
    from repro.core import VCEConfig, VirtualComputingEnvironment, workstation_cluster
    from repro.scheduler.execution_program import RunState
    from repro.workloads import build_random_dag

    graph = build_random_dag(layers=8, width=8, seed=seed)
    vce = VirtualComputingEnvironment(
        workstation_cluster(4), VCEConfig(seed=seed, backend=backend, shards=shards)
    ).boot()
    run = vce.submit(graph, class_map={node.name: None for node in graph})
    vce.run_to_completion(run, timeout=100_000.0)
    assert run.state is RunState.DONE, run.error
    return vce.sim.log


def _chaos_mix(seed: int, backend: str = "serial", shards: int = 4):
    from repro.core import VCEConfig, VirtualComputingEnvironment, heterogeneous_cluster
    from repro.migration.failover import FailoverConfig
    from repro.scheduler.execution_program import RunState
    from repro.workloads import WEATHER_SCRIPT, build_pipeline_graph, weather_programs

    config = VCEConfig(
        seed=seed,
        backend=backend,
        shards=shards,
        reliable_transport=True,
        failover=FailoverConfig(),
    )
    vce = VirtualComputingEnvironment(heterogeneous_cluster(), config).boot()
    vce.chaos("chaos-mix", seed=seed)
    runs = [
        vce.run_script(WEATHER_SCRIPT, weather_programs(), name="weather"),
        vce.submit(build_pipeline_graph(stages=4, stage_work=15.0, name="pipe")),
    ]
    for run in runs:
        vce.run_to_completion(run, timeout=2_000.0)
        assert run.state is RunState.DONE, run.error
    vce.run(until=vce.sim.now + 30.0)
    return vce.sim.log


SCENARIOS = {
    "randomdag_seed3": lambda: _randomdag(3),
    "randomdag_seed11": lambda: _randomdag(11),
    "chaosmix_seed3": lambda: _chaos_mix(3),
    "chaosmix_seed11": lambda: _chaos_mix(11),
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_digest_matches_golden(name):
    golden_path = GOLDEN_DIR / f"{name}.digest"
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; regenerate with "
        f"`PYTHONPATH=src python {Path(__file__).name}`"
    )
    digest = event_log_digest(SCENARIOS[name]())
    assert digest == golden_path.read_text().strip(), (
        f"{name}: replay digest diverged from the golden recording — either "
        "nondeterminism leaked into the event schedule, or an intended "
        "change needs regenerated goldens (see module docstring)"
    )


@pytest.mark.parametrize("name", ["randomdag_seed3", "chaosmix_seed3"])
def test_digest_stable_across_reruns(name):
    scenario = SCENARIOS[name]
    assert event_log_digest(scenario()) == event_log_digest(scenario())


if __name__ == "__main__":
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, scenario in sorted(SCENARIOS.items()):
        digest = event_log_digest(scenario())
        (GOLDEN_DIR / f"{name}.digest").write_text(digest + "\n")
        print(f"{name}: {digest}")
