"""Randomized membership convergence.

A seeded adversary performs a random sequence of joins, graceful leaves,
and crashes against a process group; after a quiescence period, every
surviving member must agree on a single view containing exactly the
survivors, with the oldest survivor as coordinator. Run across several
seeds — a deterministic stand-in for stateful property testing of the
membership protocol.
"""

import random

import pytest

from repro.faults import views_converged
from repro.netsim import Network, Simulator

from tests.test_isis_group import Recorder


def adversarial_run(seed: int, operations: int = 12):
    rng = random.Random(seed)
    sim = Simulator(seed)
    net = Network(sim)
    members = []
    counter = [0]

    def spawn_member():
        i = counter[0]
        counter[0] += 1
        host = net.add_host(f"h{i}")
        contacts = None
        alive = [m for m in members if m.joined and m.host.up]
        if alive:
            contacts = [m.address for m in rng.sample(alive, k=min(2, len(alive)))]
        elif members:
            contacts = [members[0].address]
        member = Recorder(f"m{i}", contacts=contacts)
        host.spawn(member)
        members.append(member)
        return member

    spawn_member()
    sim.run(until=5.0)

    for _ in range(operations):
        candidates = [m for m in members if m.joined and m.host.up]
        op = rng.choice(["join", "join", "crash", "leave"])
        if op == "join" or len(candidates) <= 2:
            spawn_member()
        elif op == "crash":
            victim = rng.choice(candidates)
            victim.host.crash()
        else:
            rng.choice(candidates).leave()
        sim.run(until=sim.now + rng.uniform(1.0, 8.0))

    # quiescence: generous time for detection + takeover chains
    sim.run(until=sim.now + 120.0)
    return sim, members


@pytest.mark.parametrize("seed", [1, 2, 3, 5, 8, 13, 21])
def test_membership_converges_under_random_churn(seed):
    sim, members = adversarial_run(seed)
    live = [m for m in members if m.joined and m.host.up]
    assert live, f"seed {seed}: everyone died (adversary too strong?)"
    assert views_converged(live), (
        f"seed {seed}: views diverged: "
        + str({m.name: (m.view.view_id, [str(x) for x in m.view.members]) for m in live})
    )
    view = live[0].view
    # the agreed view contains exactly the live members
    assert {m.address for m in live} == set(view.members), (
        f"seed {seed}: view {view} vs live {[m.name for m in live]}"
    )
    # exactly one coordinator, and it is the view's oldest member
    coordinators = [m for m in live if m.is_coordinator]
    assert len(coordinators) == 1
    assert coordinators[0].address == view.coordinator


@pytest.mark.parametrize("seed", [4, 9])
def test_multicast_works_after_churn(seed):
    sim, members = adversarial_run(seed)
    live = [m for m in members if m.joined and m.host.up]
    sender = live[-1]
    sender.abcast("post-churn", seed)
    sender.cbcast("post-churn-cb", seed)
    sim.run(until=sim.now + 10.0)
    for m in live:
        assert ("post-churn" in [k for (_, k, _) in m.ab_deliveries])
        assert ("post-churn-cb" in [k for (_, k, _) in m.cb_deliveries])
