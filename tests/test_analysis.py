"""Tests for repro.analysis: the task-graph verifier and detlint."""

import io
import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import (
    AnalysisReport,
    Finding,
    Severity,
    lint_paths,
    lint_source,
    verify_graph,
)
from repro.cli import main
from repro.compilation.manager import CompilationManager
from repro.core import (
    VCEConfig,
    VirtualComputingEnvironment,
    heterogeneous_cluster,
    workstation_cluster,
)
from repro.machines import Machine, MachineClass, MachineDatabase
from repro.scheduler.execution_program import RunState
from repro.sdm import ProblemSpecification
from repro.taskgraph import Arc, ArcKind, ProblemClass, TaskGraph, TaskNode
from repro.util.errors import ConfigurationError, VerificationError
from repro.vmpi.api import Compute, Recv, Send
from repro.workloads import (
    build_diamond_graph,
    build_monte_carlo_graph,
    build_pipeline_graph,
    build_random_dag,
    build_stencil_graph,
    build_sweep_graph,
    build_weather_graph,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BROKEN_EXAMPLE = str(REPO_ROOT / "examples" / "broken_graph.py")
SNOW_EXAMPLE = str(REPO_ROOT / "examples" / "apps" / "snow.vce")


def _noop(ctx):
    yield Compute(1.0)
    return None


def annotate(graph, cls=ProblemClass.ASYNCHRONOUS, program=_noop):
    for node in graph:
        node.problem_class = cls
        node.language = "py"
        node.program = program
    return graph


def broken_graph() -> TaskGraph:
    """The golden broken graph: a cycle, an infeasible task, an orphan
    that is also a lone-synchronous task, and a dangling arc."""
    spec = ProblemSpecification("broken")
    spec.task("prep", work=5)
    spec.task("simulate", work=50, memory_mb=1_000_000)
    spec.task("render", work=5)
    spec.task("probe", work=1)
    spec.flow("prep", "simulate", volume=1_000)
    spec.flow("simulate", "render", volume=1_000)
    spec.flow("render", "prep", volume=1_000)
    graph = spec.graph
    annotate(graph)
    graph.task("probe").problem_class = ProblemClass.SYNCHRONOUS
    # a dangling arc can only enter a graph by bypassing add_arc; the
    # verifier must not trust its input
    graph._arcs.append(Arc("render", "ghost", ArcKind.DATA))
    return graph


def hetero_compilation() -> CompilationManager:
    db = MachineDatabase()
    for machine in heterogeneous_cluster():
        db.register(machine)
    return CompilationManager(db)


# ------------------------------------------------------------------ report


class TestReport:
    def test_finding_round_trips_through_dict(self):
        f = Finding("G001", Severity.ERROR, "boom", locus="task a", hint="fix")
        assert Finding.from_dict(f.to_dict()) == f

    def test_exit_codes(self):
        report = AnalysisReport("x")
        assert report.clean and report.ok and report.exit_code() == 0
        report.add("G004", Severity.WARNING, "w")
        assert report.ok and report.exit_code() == 0
        assert report.exit_code(strict=True) == 1
        report.add("G001", Severity.ERROR, "e")
        assert not report.ok and report.exit_code() == 1

    def test_sorted_findings_put_errors_first(self):
        report = AnalysisReport("x")
        report.add("G012", Severity.WARNING, "w")
        report.add("G020", Severity.ERROR, "e")
        assert [f.rule for f in report.sorted_findings()] == ["G020", "G012"]

    def test_render_text_and_json(self):
        report = AnalysisReport("subject")
        report.add("G001", Severity.ERROR, "a cycle", locus="task t", hint="cut it")
        text = report.render_text()
        assert "subject: 1 error(s), 0 warning(s)" in text
        assert "G001" in text and "[task t]" in text and "fix: cut it" in text
        data = json.loads(report.to_json())
        assert data["errors"] == 1
        assert data["findings"][0]["rule"] == "G001"


# ---------------------------------------------------------------- verifier


class TestGraphVerifier:
    def test_golden_broken_graph(self):
        report = verify_graph(broken_graph(), compilation=hetero_compilation())
        rules = {f.rule for f in report.findings}
        assert {"G001", "G003", "G004", "G012", "G020"} <= rules
        assert not report.ok

        (cycle,) = report.by_rule("G001")
        assert cycle.locus == "task prep"
        assert "prep" in cycle.message and "->" in cycle.message

        dangling = report.by_rule("G003")
        assert [f.locus for f in dangling] == ["arc render->ghost"]

        (orphan,) = report.by_rule("G004")
        assert orphan.locus == "task probe"

        (infeasible,) = report.by_rule("G020")
        assert infeasible.locus == "task simulate"
        assert infeasible.severity is Severity.ERROR

    def test_one_finding_per_cycle_component(self):
        spec = ProblemSpecification("loops")
        for name in "abcd":
            spec.task(name)
        spec.after("a", "b").after("b", "a")  # component 1
        spec.after("c", "d").after("d", "c")  # component 2
        report = verify_graph(annotate(spec.graph))
        assert [f.locus for f in report.by_rule("G001")] == ["task a", "task c"]

    def test_self_arc_detected(self):
        graph = annotate(ProblemSpecification("s").task("a").task("b").graph)
        graph.connect("a", "b")
        arc = Arc("a", "b")
        object.__setattr__(arc, "dst", "a")
        graph._arcs.append(arc)
        (finding,) = verify_graph(graph).by_rule("G002")
        assert finding.severity is Severity.ERROR

    def test_stream_cycles_are_legal(self):
        spec = ProblemSpecification("ring")
        spec.task("a").task("b")
        spec.stream("a", "b", channel="fwd").stream("b", "a", channel="bwd")
        assert verify_graph(annotate(spec.graph)).clean

    def test_channel_on_precedence_arc(self):
        graph = annotate(ProblemSpecification("c").task("a").task("b").graph)
        graph.connect("a", "b", ArcKind.DATA, channel="oops")
        (finding,) = verify_graph(graph).by_rule("G005")
        assert finding.locus == "arc a->b"

    def test_missing_annotations(self):
        graph = ProblemSpecification("bare").task("a").task("b").graph
        graph.connect("a", "b")
        report = verify_graph(graph)
        assert len(report.by_rule("G010")) == 2  # never design-classified
        assert len(report.by_rule("G011")) == 2  # never coded

    def test_lockstep_async_contradiction(self):
        spec = ProblemSpecification("x")
        spec.task("a", requirements={"lockstep": True}).task("b")
        graph = annotate(spec.graph)
        graph.connect("a", "b")
        assert verify_graph(graph).by_rule("G013")

    def test_undeclared_channel_in_program(self):
        def talker(ctx):
            yield Send("peer", data=1, channel="ether")
            return None

        spec = ProblemSpecification("u")
        spec.task("a").task("b")
        spec.stream("a", "b", channel="wire")
        graph = annotate(spec.graph)
        graph.task("a").program = talker
        (finding,) = verify_graph(graph).by_rule("G006")
        assert "ether" in finding.message and finding.locus == "task a"

    def test_constant_rank_out_of_range(self):
        def sender(ctx):
            yield Send(3, data=1)
            return None

        graph = annotate(ProblemSpecification("r").task("a", instances=2).graph)
        graph.task("a").program = sender
        (finding,) = verify_graph(graph).by_rule("G007")
        assert "rank 3" in finding.message

    def test_unmatched_tagged_send(self):
        def sender(ctx):
            yield Send(0, data=1, tag="result")
            return None

        def receiver(ctx):
            src, data = yield Recv(tag="other")
            return data

        spec = ProblemSpecification("t")
        spec.task("a", instances=2).task("b")
        spec.stream("a", "b", channel="c")
        graph = annotate(spec.graph)
        graph.task("a").program = sender
        graph.task("b").program = receiver
        (finding,) = verify_graph(graph).by_rule("G008")
        assert "'result'" in finding.message

    def test_matched_send_is_silent(self):
        def sender(ctx):
            yield Send(0, data=1, tag="result")
            return None

        def receiver(ctx):
            src, data = yield Recv(tag="result")
            return data

        graph = annotate(ProblemSpecification("m").task("a", instances=2).graph)
        graph.task("a").program = sender
        graph.add_task(TaskNode("b", program=receiver, work=1.0))
        graph.task("b").problem_class = ProblemClass.ASYNCHRONOUS
        graph.task("b").language = "py"
        graph.connect("a", "b")
        assert not verify_graph(graph).by_rule("G008")


class TestFeasibility:
    def test_degraded_mapping_warns(self):
        # SYNCHRONOUS prefers SIMD; a workstation-only VCE degrades it
        db = MachineDatabase()
        for machine in workstation_cluster(4):
            db.register(machine)
        graph = annotate(
            ProblemSpecification("d").task("model", instances=2).graph,
            cls=ProblemClass.SYNCHRONOUS,
        )
        graph.add_task(TaskNode("sink", work=1.0, problem_class=ProblemClass.ASYNCHRONOUS,
                                language="py", program=_noop))
        graph.connect("model", "sink")
        report = verify_graph(graph, compilation=CompilationManager(db))
        (degraded,) = report.by_rule("G021")
        assert degraded.locus == "task model"
        assert "SIMD" in degraded.message and "WORKSTATION" in degraded.message
        assert report.ok  # degraded is a warning, not an error

    def test_insufficient_instances_warns(self):
        db = MachineDatabase()
        for machine in workstation_cluster(2):
            db.register(machine)
        graph = annotate(ProblemSpecification("i").task("farm", instances=9).graph)
        (finding,) = verify_graph(graph, compilation=CompilationManager(db)).by_rule("G022")
        assert "9 instances" in finding.message and "2 feasible" in finding.message

    def test_local_tasks_exempt(self):
        db = MachineDatabase()
        db.register(Machine("ws0", MachineClass.WORKSTATION))
        graph = annotate(ProblemSpecification("l").task("ui", local=True).graph,
                         cls=ProblemClass.SYNCHRONOUS)
        report = verify_graph(graph, compilation=CompilationManager(db))
        assert not report.by_rule("G020") and not report.by_rule("G021")


class TestWorkloadBuildersAreSound:
    BUILDERS = {
        "weather": build_weather_graph,
        "montecarlo": build_monte_carlo_graph,
        "pipeline": build_pipeline_graph,
        "diamond": build_diamond_graph,
        "randomdag": build_random_dag,
        "sweep": build_sweep_graph,
        "stencil": build_stencil_graph,
    }

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_builder_has_no_errors(self, name):
        report = verify_graph(self.BUILDERS[name](), compilation=hetero_compilation())
        assert report.ok, report.render_text()
        # structural warnings would be builder bugs too; the weather
        # predictor's G012 (single-instance SYNC on SIMD) is the one
        # advisory we accept, matching the paper's own §5 application
        unexpected = [f for f in report.findings if f.rule != "G012"]
        assert not unexpected, report.render_text()

    @pytest.mark.parametrize("seed", range(12))
    def test_random_dags_never_orphan_tasks(self, seed):
        report = verify_graph(build_random_dag(layers=4, width=4, seed=seed))
        assert report.clean, report.render_text()


# ------------------------------------------------------------- VCE wiring


class TestVCEVerification:
    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="verify"):
            VirtualComputingEnvironment(
                workstation_cluster(2), VCEConfig(verify="loose")
            )

    def test_strict_refuses_to_dispatch(self):
        vce = VirtualComputingEnvironment(
            heterogeneous_cluster(), VCEConfig(verify="strict")
        ).boot()
        with pytest.raises(VerificationError) as exc:
            vce.submit(broken_graph())
        assert exc.value.report is not None
        assert {"G001", "G020"} <= {f.rule for f in exc.value.report.errors}
        assert vce._exec_count == 0  # no execution program was ever spawned

    def test_warn_dispatches_and_logs_findings(self):
        vce = VirtualComputingEnvironment(
            heterogeneous_cluster(), VCEConfig(verify="warn")
        ).boot()
        graph = broken_graph()
        class_map = {t.name: MachineClass.WORKSTATION for t in graph}
        run = vce.submit(graph, class_map=class_map)
        assert vce.sim.log.count("verify.finding") >= 4
        rules = {r.data["rule"] for r in vce.sim.log.records("verify.finding")}
        assert {"G001", "G020"} <= rules
        vce.run(until=vce.sim.now + 60.0)
        assert run.state is not RunState.DONE  # the cycle can never finish

    def test_run_verify_checks_graphs_submitted_while_off(self):
        vce = VirtualComputingEnvironment(heterogeneous_cluster()).boot()
        graph = broken_graph()
        class_map = {t.name: MachineClass.WORKSTATION for t in graph}
        vce.submit(graph, class_map=class_map)
        before = vce.sim.now
        with pytest.raises(VerificationError):
            vce.run(until=before + 50.0, verify="strict")
        assert vce.sim.now == before  # refused before advancing
        with pytest.raises(ConfigurationError):
            vce.run(verify="loose")

    def test_strict_passes_clean_graphs(self):
        vce = VirtualComputingEnvironment(
            workstation_cluster(4), VCEConfig(verify="strict")
        ).boot()
        run = vce.submit(build_pipeline_graph(stages=3, stage_work=5.0))
        vce.run_to_completion(run)
        assert run.state is RunState.DONE

    def test_verify_graph_method(self):
        vce = VirtualComputingEnvironment(heterogeneous_cluster()).boot()
        assert vce.verify_graph(build_pipeline_graph(stages=2)).ok
        assert not vce.verify_graph(broken_graph()).ok


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000), layers=st.integers(2, 4),
       width=st.integers(1, 3))
def test_verifier_clean_random_dags_run_to_done(seed, layers, width):
    """Any random DAG the verifier passes reaches dispatch and completes
    without graph-shaped runtime errors — strict mode never blocks a
    graph the runtime could have handled."""
    graph = build_random_dag(layers=layers, width=width, seed=seed,
                             min_work=1.0, max_work=3.0, volume=1_000)
    assert verify_graph(graph).clean
    vce = VirtualComputingEnvironment(
        workstation_cluster(len(graph)), VCEConfig(verify="strict")
    ).boot()
    run = vce.submit(graph)
    vce.run_to_completion(run)
    assert run.state is RunState.DONE


# ----------------------------------------------------------------- detlint


class TestDetlint:
    def test_wall_clock_flagged(self):
        src = "import time\nstamp = time.time()\n"
        (f,) = lint_source(src, "src/repro/core/x.py")
        assert f.rule == "D001" and f.severity is Severity.ERROR
        assert f.locus == "src/repro/core/x.py:2"

    def test_from_import_and_aliases(self):
        src = (
            "from time import monotonic\nimport time as t\n"
            "a = monotonic()\nb = t.perf_counter()\n"
        )
        findings = lint_source(src, "m.py")
        assert [f.rule for f in findings] == ["D001", "D001"]

    def test_datetime_now_flagged(self):
        src = "import datetime\nwhen = datetime.datetime.now()\n"
        assert [f.rule for f in lint_source(src, "m.py")] == ["D001"]

    def test_global_random_flagged_seeded_rng_not(self):
        src = (
            "import random\n"
            "x = random.random()\n"          # D002: process-global
            "r = random.Random()\n"          # D002: OS-entropy seeded
            "ok = random.Random(42)\n"       # fine: explicit seed
            "y = ok.random()\n"              # fine: instance draw
        )
        findings = lint_source(src, "m.py")
        assert [f.rule for f in findings] == ["D002", "D002"]
        assert [f.locus for f in findings] == ["m.py:2", "m.py:3"]

    def test_set_iteration_only_in_order_sensitive_dirs(self):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert [f.rule for f in lint_source(src, "src/repro/scheduler/p.py")] == ["D003"]
        assert lint_source(src, "src/repro/workloads/p.py") == []

    def test_set_valued_names_tracked_per_scope(self):
        src = (
            "def a(items):\n"
            "    free = {i for i in items}\n"
            "    for x in free:\n"          # D003: set-valued binding
            "        print(x)\n"
            "def b(bids):\n"
            "    free = sorted(bids)\n"
            "    for x in free:\n"          # fine: list in this scope
            "        print(x)\n"
        )
        findings = lint_source(src, "src/repro/scheduler/p.py")
        assert [f.locus for f in findings] == ["src/repro/scheduler/p.py:3"]

    def test_set_algebra_and_keys_views(self):
        src = (
            "def f(a, b):\n"
            "    for x in a.keys() | b.keys():\n"
            "        print(x)\n"
            "    for y in sorted(a.keys() | b.keys()):\n"
            "        print(y)\n"
        )
        findings = lint_source(src, "src/repro/netsim/k.py")
        assert [f.locus for f in findings] == ["src/repro/netsim/k.py:2"]

    def test_suppression_comment(self):
        src = (
            "import time\n"
            "a = time.time()  # detlint: ok(D001) host profiling only\n"
            "b = time.time()  # detlint: ok(D003)\n"  # wrong rule: no waiver
        )
        findings = lint_source(src, "m.py")
        assert [f.locus for f in findings] == ["m.py:3"]

    def test_syntax_error_reported_not_raised(self):
        (f,) = lint_source("def broken(:\n", "m.py")
        assert f.rule == "D000" and f.severity is Severity.ERROR

    def test_baseline_waives_known_findings(self, tmp_path):
        bad = tmp_path / "scheduler" / "old.py"
        bad.parent.mkdir()
        bad.write_text("import time\nx = time.time()\n")
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("# grandfathered\nD001 scheduler/old.py:2\n")
        assert not lint_paths([bad], root=tmp_path).clean
        assert lint_paths([bad], baseline=baseline, root=tmp_path).clean
        # a waiver for another line does not apply
        baseline.write_text("D001 scheduler/old.py:9\n")
        assert not lint_paths([bad], baseline=baseline, root=tmp_path).clean

    def test_repo_source_tree_is_clean(self):
        """The gate the CI job enforces: zero unsuppressed findings in
        src/repro, warnings included."""
        report = lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
        assert report.exit_code(strict=True) == 0, report.render_text()


# --------------------------------------------------------------------- CLI


class TestLintCLI:
    def test_broken_example_exits_nonzero_with_loci(self):
        out = io.StringIO()
        assert main(["lint", BROKEN_EXAMPLE], out=out) == 1
        text = out.getvalue()
        assert "G001" in text and "task prep" in text
        assert "G020" in text and "task simulate" in text

    def test_json_output_parses(self):
        out = io.StringIO()
        assert main(["lint", "--json", BROKEN_EXAMPLE], out=out) == 1
        (report,) = json.loads(out.getvalue())
        assert report["errors"] >= 2
        assert {"G001", "G020"} <= {f["rule"] for f in report["findings"]}

    def test_warnings_only_exits_zero_strict_promotes(self):
        assert main(["lint", SNOW_EXAMPLE], out=io.StringIO()) == 0
        assert main(["lint", "--strict", SNOW_EXAMPLE], out=io.StringIO()) == 1

    def test_det_mode(self, tmp_path):
        bad = tmp_path / "x.py"
        bad.write_text("import time\nt = time.time()\n")
        out = io.StringIO()
        assert main(["lint", "--det", str(bad)], out=out) == 1
        assert "D001" in out.getvalue()
        bad.write_text("import time\nt = time.time()  # detlint: ok(D001)\n")
        assert main(["lint", "--det", str(bad)], out=io.StringIO()) == 0

    def test_graph_target_must_define_build_graph(self, tmp_path):
        stub = tmp_path / "nothing.py"
        stub.write_text("x = 1\n")
        assert main(["lint", str(stub)], out=io.StringIO()) == 2

    def test_missing_target_exits_2(self):
        assert main(["lint", "/nonexistent.vce"], out=io.StringIO()) == 2
