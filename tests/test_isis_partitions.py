"""Partition behaviour: split-brain without quorum, safety with it.

The paper's prototype ran on a single LAN and did not address partitions;
the `require_majority` extension adds the standard quorum rule. These
tests document both modes.
"""


from repro.isis import IsisConfig
from repro.netsim import Address, Network, Simulator

from tests.test_isis_group import Recorder


def build_partitionable_group(n, seed=0, config=None, settle=10.0):
    sim = Simulator(seed)
    net = Network(sim)
    members = []
    founder = Address("h0", "m0")
    for i in range(n):
        host = net.add_host(f"h{i}")
        member = Recorder(
            f"m{i}", contacts=(None if i == 0 else [founder]), config=config
        )
        host.spawn(member)
        members.append(member)
    sim.run(until=settle)
    assert all(m.joined for m in members)
    return sim, net, members


def seniority_ordered(members):
    by_addr = {m.address: m for m in members}
    return [by_addr[a] for a in members[0].view.members]


class TestWithoutQuorum:
    def test_partition_causes_split_brain(self):
        """Documented limitation of the paper-faithful mode: both sides
        evict each other and elect their own leaders."""
        sim, net, members = build_partitionable_group(5)
        ordered = seniority_ordered(members)
        majority = {m.address.host for m in ordered[:3]}
        minority = {m.address.host for m in ordered[3:]}
        net.partition(majority, minority)
        sim.run(until=sim.now + 60.0)
        major_views = {m.view.members for m in ordered[:3]}
        minor_views = {m.view.members for m in ordered[3:]}
        assert len(major_views) == 1 and len(minor_views) == 1
        # two disjoint groups, each with its own coordinator: split brain
        assert major_views != minor_views
        assert ordered[0].is_coordinator
        assert ordered[3].is_coordinator


class TestWithQuorum:
    CFG = IsisConfig(require_majority=True)

    def test_minority_side_stalls(self):
        sim, net, members = build_partitionable_group(5, config=self.CFG)
        ordered = seniority_ordered(members)
        view_before = ordered[0].view
        majority = {m.address.host for m in ordered[:3]}
        minority = {m.address.host for m in ordered[3:]}
        net.partition(majority, minority)
        sim.run(until=sim.now + 60.0)
        # majority side installed a 3-member view
        for m in ordered[:3]:
            assert len(m.view) == 3
            assert m.view.coordinator == ordered[0].address
        # minority side is blocked: it still holds the old 5-member view
        for m in ordered[3:]:
            assert m.view.view_id == view_before.view_id
            assert len(m.view) == 5
            assert not m.is_coordinator
        blocked = sim.log.records(category="isis.quorum_blocked")
        assert blocked, "minority never hit the quorum guard"

    def test_heal_evicts_and_rejoins_minority(self):
        sim, net, members = build_partitionable_group(5, config=self.CFG)
        ordered = seniority_ordered(members)
        majority = {m.address.host for m in ordered[:3]}
        minority = {m.address.host for m in ordered[3:]}
        net.partition(majority, minority)
        sim.run(until=sim.now + 40.0)
        net.heal()
        sim.run(until=sim.now + 60.0)
        # everyone converges on one 5-member view led by the original
        # coordinator; the minority members rejoined after eviction
        final_views = {m.view.members for m in members if m.joined}
        assert len(final_views) == 1
        assert len(members[0].view) == 5
        assert members[0].view.coordinator == ordered[0].address
        evictions = sim.log.records(category="isis.evicted")
        assert len(evictions) >= 2  # both minority members rejoined

    def test_group_request_still_works_after_heal(self):
        sim, net, members = build_partitionable_group(5, config=self.CFG)
        ordered = seniority_ordered(members)
        net.partition(
            {m.address.host for m in ordered[:3]},
            {m.address.host for m in ordered[3:]},
        )
        sim.run(until=sim.now + 40.0)
        net.heal()
        sim.run(until=sim.now + 60.0)
        results = {}
        ordered[0].group_request(
            "state?", on_done=lambda r, t: results.update(r=r, t=t)
        )
        sim.run(until=sim.now + 10.0)
        assert results["t"] is False
        assert len(results["r"]) == 5

    def test_majority_side_keeps_multicasting_during_partition(self):
        sim, net, members = build_partitionable_group(5, config=self.CFG)
        ordered = seniority_ordered(members)
        net.partition(
            {m.address.host for m in ordered[:3]},
            {m.address.host for m in ordered[3:]},
        )
        sim.run(until=sim.now + 40.0)
        ordered[1].abcast("during-partition", "x")
        sim.run(until=sim.now + 5.0)
        for m in ordered[:3]:
            assert ("during-partition" in [k for (_, k, _) in m.ab_deliveries])
        for m in ordered[3:]:
            assert "during-partition" not in [k for (_, k, _) in m.ab_deliveries]
