"""Performance *contracts* for the kernel and scheduler hot paths.

These tests pin the algorithmic properties the perf pass bought —
instrumentation-based, never wall-clock, so they are immune to CI noise:

- ``Simulator.pending`` is O(1): it must not iterate the heap.
- Cancel-heavy churn cannot grow the heap without bound: tombstones are
  compacted once they dominate.
- ``AgingQueue`` index operations (push/contains/remove/reprioritize/
  peek/pop) never take a linear pass over the queued items.
- Kernel pop order is the (time, seq) total order and ``pending`` always
  equals the brute-force live-entry count — property-tested over random
  interleavings of schedule/schedule_at/call_soon/cancel.
"""

from hypothesis import given, settings, strategies as st

from repro.netsim.kernel import Simulator
from repro.scheduler.messages import ResourceRequest
from repro.scheduler.queue import AgingQueue


class _CountingHeap(list):
    """A heap list that counts full iterations (len() stays free)."""

    def __init__(self, *args):
        super().__init__(*args)
        self.iterations = 0

    def __iter__(self):
        self.iterations += 1
        return super().__iter__()


class TestKernelContracts:
    def test_pending_is_o1(self):
        """``pending`` must come from counters, not a heap scan."""
        sim = Simulator(0)
        timers = [sim.schedule(float(i % 7) + 0.5, lambda: None) for i in range(500)]
        for timer in timers[::3]:
            timer.cancel()
        probe = _CountingHeap(sim._heap)
        sim._heap = probe
        live = 500 - len(timers[::3])
        for _ in range(200):
            assert sim.pending == live
        assert probe.iterations == 0, "pending iterated the heap"

    def test_cancel_churn_keeps_heap_bounded(self):
        """Retry-timer churn (schedule then cancel, repeatedly) must not
        accumulate tombstones past the compaction threshold."""
        sim = Simulator(0)
        keep = [sim.schedule(1e6 + i, lambda: None) for i in range(10)]
        for _ in range(200):
            batch = [sim.schedule(100.0 + i, lambda: None) for i in range(50)]
            for timer in batch:
                timer.cancel()
        assert sim.pending == len(keep)
        assert sim.compactions > 0
        # heap may hold up to ~half tombstones between compactions, never
        # the 10k cancelled entries this loop produced
        assert len(sim._heap) <= 2 * len(keep) + 128
        sim.run(until=50.0)
        assert sim.pending == len(keep)

    def test_cancelling_fired_timer_is_inert(self):
        """A cancel after firing must not corrupt the live-event counter
        (which would make run() stop early or spin)."""
        sim = Simulator(0)
        fired = []
        timer = sim.schedule(1.0, lambda: fired.append(1))
        anchor = sim.schedule(5.0, lambda: fired.append(2))
        sim.run(until=2.0)
        assert fired == [1]
        timer.cancel()  # already fired: must be a no-op
        assert sim.pending == 1
        sim.run()
        assert fired == [1, 2]


def _request(req_id: str, priority: float = 0.0) -> ResourceRequest:
    return ResourceRequest(
        req_id=req_id,
        app=f"app-{req_id}",
        machine_class=None,
        modules=(),
        reply_to=None,
        priority=priority,
    )


class TestAgingQueueContracts:
    def test_index_operations_take_no_linear_pass(self):
        """push/contains/remove/reprioritize/peek/pop on a populated queue
        must not visit the other queued items (``stats['item_visits']``
        counts elements touched by linear passes)."""
        queue = AgingQueue(aging_rate=0.1)
        for i in range(300):
            queue.push(_request(f"r{i}", priority=float(i % 11)), now=float(i))
        queue.stats["item_visits"] = 0
        for i in range(0, 300, 7):
            assert f"r{i}" in queue
        queue.push(_request("r3"), now=5.0)  # duplicate: O(1) no-op
        queue.remove("r7")
        queue.reprioritize("r11", 99.0)
        assert queue.peek(now=500.0) is not None
        popped = queue.pop(now=500.0)
        assert popped.request.req_id == "r11"
        assert queue.stats["item_visits"] == 0, (
            "an index operation rescanned the queue"
        )

    def test_items_snapshot_is_the_linear_pass(self):
        queue = AgingQueue()
        for i in range(10):
            queue.push(_request(f"r{i}"), now=float(i))
        queue.stats["item_visits"] = 0
        assert len(queue.items()) == 10
        assert queue.stats["item_visits"] == 10

    def test_remove_churn_keeps_heap_bounded(self):
        """Coordinator-side churn (push + satisfied-elsewhere removals)
        must compact stale heap entries instead of accumulating them."""
        queue = AgingQueue()
        for round_ in range(100):
            for i in range(20):
                queue.push(_request(f"r{round_}.{i}"), now=float(round_))
            for i in range(20):
                queue.remove(f"r{round_}.{i}")
        assert len(queue) == 0
        assert queue.stats["compactions"] > 0
        assert len(queue._heap) <= 64

    def test_aged_order_survives_rate_change(self):
        """Setting ``aging_rate`` re-keys the heap; order must follow the
        new rate immediately."""
        queue = AgingQueue(aging_rate=0.0)
        queue.push(_request("old", priority=0.0), now=0.0)
        queue.push(_request("vip", priority=5.0), now=100.0)
        assert queue.peek(now=100.0).request.req_id == "vip"
        queue.aging_rate = 1.0  # now the old request's age dominates
        assert queue.peek(now=100.0).request.req_id == "old"


# --------------------------------------------------------- property tests

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["schedule", "schedule_at", "call_soon", "cancel", "cancel_fired"]),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.integers(min_value=0, max_value=500),
    ),
    min_size=1,
    max_size=60,
)


class TestKernelProperties:
    @settings(deadline=None, max_examples=120)
    @given(ops=_OPS)
    def test_pop_order_and_pending_count(self, ops):
        """Under arbitrary interleavings of the scheduling API the kernel
        must (a) report ``pending`` equal to the brute-force count of live
        unfired entries and (b) fire callbacks in exact (time, seq) order."""
        sim = Simulator(0)
        timers = []
        fired: list[tuple[float, int]] = []

        def make_cb(entry):
            return lambda: fired.append((entry.time, entry.seq))

        for op, delay, index in ops:
            if op == "schedule":
                timer = sim.schedule(delay, lambda: None)
                timer._entry.callback = make_cb(timer._entry)
                timers.append(timer)
            elif op == "schedule_at":
                timer = sim.schedule_at(delay, lambda: None)
                timer._entry.callback = make_cb(timer._entry)
                timers.append(timer)
            elif op == "call_soon":
                timer = sim.call_soon(lambda: None)
                timer._entry.callback = make_cb(timer._entry)
                timers.append(timer)
            elif op == "cancel" and timers:
                timers[index % len(timers)].cancel()
            elif op == "cancel_fired" and timers:
                # cancel twice: double-cancel must also be inert
                timer = timers[index % len(timers)]
                timer.cancel()
                timer.cancel()
            brute = sum(
                1 for e in sim._heap if not e.cancelled and not e.fired
            )
            assert sim.pending == brute

        expected = sorted(
            (t._entry.time, t._entry.seq)
            for t in timers
            if not t._entry.cancelled
        )
        sim.run()
        assert fired == expected
        assert sim.pending == 0
