"""Tests for the three SDM layers and the module facade."""

import pytest

from repro.sdm import (
    CodingLevel,
    DesignStage,
    ProblemSpecification,
    SoftwareDevelopmentModule,
    SourceModule,
)
from repro.taskgraph import ArcKind, ExecutionHints, ProblemClass, TaskNature
from repro.util.errors import TaskGraphError


def noop_program(ctx):
    return iter(())


class TestProblemSpecification:
    def test_fluent_build(self):
        graph = (
            ProblemSpecification("app")
            .task("a", "first", work=2)
            .task("b", "second", work=3)
            .flow("a", "b", volume=100)
            .build()
        )
        assert len(graph) == 2
        assert graph.arcs[0].kind is ArcKind.DATA
        assert graph.predecessors("b") == ["a"]

    def test_empty_spec_rejected(self):
        with pytest.raises(TaskGraphError, match="no tasks"):
            ProblemSpecification("empty").build()

    def test_after_is_pure_dependency(self):
        graph = (
            ProblemSpecification("app").task("a").task("b").after("a", "b").build()
        )
        assert graph.arcs[0].kind is ArcKind.DEPENDENCY

    def test_stream_does_not_add_precedence(self):
        graph = (
            ProblemSpecification("app").task("a").task("b").stream("a", "b").build()
        )
        assert graph.predecessors("b") == []

    def test_local_flag_and_requirements(self):
        graph = (
            ProblemSpecification("app")
            .task("display", local=True, requirements={"graphics": True})
            .build()
        )
        node = graph.task("display")
        assert node.local and node.requirements["graphics"] is True


class TestDesignStage:
    def test_single_independent_task_is_async(self):
        graph = ProblemSpecification("a").task("solo").build()
        DesignStage().run(graph)
        assert graph.task("solo").problem_class is ProblemClass.ASYNCHRONOUS

    def test_wide_streaming_task_is_synchronous(self):
        spec = ProblemSpecification("a").task("grid", instances=8).task("sink")
        spec.stream("grid", "sink")
        graph = spec.build()
        DesignStage().run(graph)
        assert graph.task("grid").problem_class is ProblemClass.SYNCHRONOUS

    def test_lockstep_requirement_forces_synchronous(self):
        graph = (
            ProblemSpecification("a")
            .task("stencil", requirements={"lockstep": True})
            .build()
        )
        DesignStage().run(graph)
        assert graph.task("stencil").problem_class is ProblemClass.SYNCHRONOUS

    def test_phase_coupled_multiinstance_is_loosely_synchronous(self):
        graph = (
            ProblemSpecification("a")
            .task("part", instances=3)
            .task("combine")
            .flow("part", "combine")
            .build()
        )
        DesignStage().run(graph)
        assert graph.task("part").problem_class is ProblemClass.LOOSELY_SYNCHRONOUS

    def test_user_annotation_preserved(self):
        graph = ProblemSpecification("a").task("t", instances=8).build()
        graph.task("t").problem_class = ProblemClass.ASYNCHRONOUS
        DesignStage().run(graph)
        assert graph.task("t").problem_class is ProblemClass.ASYNCHRONOUS

    def test_local_task_marked_interactive(self):
        graph = ProblemSpecification("a").task("display", local=True).build()
        DesignStage().run(graph)
        assert TaskNature.INTERACTIVE in graph.task("display").nature

    def test_compute_intensive_nature(self):
        graph = ProblemSpecification("a").task("big", work=500).build()
        DesignStage().run(graph)
        assert TaskNature.COMPUTE_INTENSIVE in graph.task("big").nature

    def test_io_intensive_nature(self):
        spec = ProblemSpecification("a").task("mover", work=1).task("sink")
        spec.flow("mover", "sink", volume=10_000)
        DesignStage().run(spec.build())

    def test_check_complete(self):
        graph = ProblemSpecification("a").task("t").build()
        with pytest.raises(TaskGraphError, match="unclassified"):
            DesignStage.check_complete(graph)
        DesignStage().run(graph)
        DesignStage.check_complete(graph)

    def test_default_class_override(self):
        graph = ProblemSpecification("a").task("t").build()
        DesignStage(default_class=ProblemClass.LOOSELY_SYNCHRONOUS).run(graph)
        assert graph.task("t").problem_class is ProblemClass.LOOSELY_SYNCHRONOUS


class TestCodingLevel:
    def test_implement_attaches_language_and_program(self):
        graph = ProblemSpecification("a").task("t").build()
        coding = CodingLevel().implement("t", SourceModule("hpf", noop_program))
        coding.run(graph)
        node = graph.task("t")
        assert node.language == "hpf" and node.program is noop_program

    def test_unknown_task_rejected(self):
        graph = ProblemSpecification("a").task("t").build()
        coding = CodingLevel().implement("ghost", SourceModule("c", noop_program))
        with pytest.raises(TaskGraphError, match="unknown tasks"):
            coding.run(graph)

    def test_hint_override(self):
        graph = ProblemSpecification("a").task("t").build()
        coding = (
            CodingLevel()
            .implement("t", SourceModule("c", noop_program))
            .hint("t", ExecutionHints(runtime_weight=9.0, priority=2.0))
        )
        coding.run(graph)
        assert graph.task("t").hints.runtime_weight == 9.0

    def test_check_complete(self):
        graph = ProblemSpecification("a").task("t").build()
        with pytest.raises(TaskGraphError, match="unimplemented"):
            CodingLevel.check_complete(graph)

    def test_source_for(self):
        module = SourceModule("c", noop_program)
        coding = CodingLevel().implement("t", module)
        assert coding.source_for("t") is module
        assert coding.source_for("other") is None


class TestSoftwareDevelopmentModule:
    def test_full_pipeline(self):
        sdm = SoftwareDevelopmentModule()
        spec = (
            sdm.specification("weather")
            .task("collect", work=10, instances=2)
            .task("predict", work=100)
            .flow("collect", "predict")
        )
        sdm.coding.implement("collect", SourceModule("c", noop_program))
        sdm.coding.implement("predict", SourceModule("hpf", noop_program))
        graph = sdm.develop(spec)
        for node in graph:
            assert node.designed and node.coded

    def test_develop_fails_without_implementations(self):
        sdm = SoftwareDevelopmentModule()
        spec = sdm.specification("x").task("t")
        with pytest.raises(TaskGraphError, match="unimplemented"):
            sdm.develop(spec)
