"""Integration tests for the Isis-style process group protocol."""

import pytest

from repro.isis import ALL, MAJORITY, IsisMember
from repro.netsim import Address, Network, Simulator
from repro.util.errors import MembershipError


class Recorder(IsisMember):
    """Member that records every delivery and view change."""

    def __init__(self, name, group="g", contacts=None, config=None, bid_value=None):
        super().__init__(name, group, contacts, config)
        self.views = []
        self.cb_deliveries = []
        self.ab_deliveries = []
        self.requests_seen = []
        self.bid_value = bid_value if bid_value is not None else name

    def on_view_change(self, view, joined, left):
        self.views.append((view.view_id, tuple(view.members), tuple(joined), tuple(left)))

    def on_cbcast(self, sender, kind, payload):
        self.cb_deliveries.append((sender, kind, payload))

    def on_abcast(self, sender, kind, payload):
        self.ab_deliveries.append((sender, kind, payload))

    def on_group_request(self, requester, body, reply):
        self.requests_seen.append(body)
        if body != "no-reply-please":
            reply(self.bid_value)


def build_group(n, seed=0, config=None, settle=10.0):
    """Spin up n members on n hosts; member 0 founds the group."""
    sim = Simulator(seed)
    net = Network(sim)
    members = []
    founder_addr = Address("h0", "m0")
    for i in range(n):
        host = net.add_host(f"h{i}")
        contacts = None if i == 0 else [founder_addr]
        member = Recorder(f"m{i}", contacts=contacts, config=config)
        host.spawn(member)
        members.append(member)
    sim.run(until=settle)
    return sim, net, members


class TestFormation:
    def test_founder_is_coordinator_of_singleton_view(self):
        sim, net, (m,) = build_group(1)
        assert m.joined and m.is_coordinator
        assert m.view.view_id == 1
        assert m.view.members == (m.address,)

    def test_three_members_converge(self):
        sim, net, members = build_group(3)
        views = {m.view.view_id for m in members}
        assert len(views) == 1
        membership = {m.view.members for m in members}
        assert len(membership) == 1
        assert len(members[0].view) == 3

    def test_founder_remains_coordinator(self):
        sim, net, members = build_group(4)
        for m in members:
            assert m.view.coordinator == members[0].address
        assert members[0].is_coordinator
        assert not members[1].is_coordinator

    def test_join_through_non_coordinator_contact(self):
        sim = Simulator(0)
        net = Network(sim)
        h0, h1, h2 = (net.add_host(f"h{i}") for i in range(3))
        m0 = Recorder("m0")
        h0.spawn(m0)
        m1 = Recorder("m1", contacts=[Address("h0", "m0")])
        h1.spawn(m1)
        sim.run(until=5.0)
        # m2 joins via m1, who is not the coordinator
        m2 = Recorder("m2", contacts=[Address("h1", "m1")])
        h2.spawn(m2)
        sim.run(until=10.0)
        assert m2.joined
        assert len(m2.view) == 3
        assert m2.view.coordinator == m0.address

    def test_view_change_callbacks_report_joined(self):
        sim, net, members = build_group(2)
        first_view = members[0].views[0]
        assert first_view[0] == 1
        assert members[0].address in first_view[2]  # founder joined itself
        last_view = members[0].views[-1]
        assert members[1].address in last_view[2]

    def test_members_can_join_at_any_time(self):
        sim, net, members = build_group(2)
        host = net.add_host("h9")
        late = Recorder("m9", contacts=[members[0].address])
        host.spawn(late)
        sim.run(until=sim.now + 10.0)
        assert late.joined
        assert len(late.view) == 3
        for m in members:
            assert late.address in m.view

    def test_join_retries_through_second_contact(self):
        sim = Simulator(0)
        net = Network(sim)
        h0, h1, h2 = (net.add_host(f"h{i}") for i in range(3))
        m0 = Recorder("m0")
        h0.spawn(m0)
        m1 = Recorder("m1", contacts=[Address("h0", "m0")])
        h1.spawn(m1)
        sim.run(until=5.0)
        h0.crash()  # coordinator gone; m1 will take over
        joiner = Recorder("m2", contacts=[Address("h0", "m0"), Address("h1", "m1")])
        h2.spawn(joiner)
        sim.run(until=40.0)
        assert joiner.joined
        assert joiner.view.coordinator == m1.address


class TestMulticast:
    def test_cbcast_reaches_everyone_including_sender(self):
        sim, net, members = build_group(3)
        members[1].cbcast("news", {"x": 1})
        sim.run(until=sim.now + 5.0)
        for m in members:
            assert (members[1].address, "news", {"x": 1}) in m.cb_deliveries

    def test_cbcast_fifo_per_sender(self):
        sim, net, members = build_group(4)
        for i in range(10):
            members[0].cbcast("seq", i)
        sim.run(until=sim.now + 5.0)
        for m in members:
            seqs = [p for (_, k, p) in m.cb_deliveries if k == "seq"]
            assert seqs == list(range(10))

    def test_cbcast_causal_across_senders(self):
        # m1 multicasts "question"; m2 multicasts "answer" only after
        # delivering it. No member may see the answer before the question.
        sim, net, members = build_group(3)
        m1, m2 = members[1], members[2]

        original = m2.on_cbcast

        def reactive(sender, kind, payload):
            original(sender, kind, payload)
            if kind == "question":
                m2.cbcast("answer", "42")

        m2.on_cbcast = reactive
        m1.cbcast("question", "what?")
        sim.run(until=sim.now + 5.0)
        for m in members:
            kinds = [k for (_, k, _) in m.cb_deliveries]
            assert "question" in kinds and "answer" in kinds
            assert kinds.index("question") < kinds.index("answer")

    def test_abcast_total_order(self):
        sim, net, members = build_group(5)
        # two members multicast interleaved streams
        for i in range(5):
            members[1].abcast("t", f"a{i}")
            members[3].abcast("t", f"b{i}")
        sim.run(until=sim.now + 10.0)
        orders = [[p for (_, _, p) in m.ab_deliveries] for m in members]
        assert all(len(o) == 10 for o in orders)
        assert all(o == orders[0] for o in orders)

    def test_multicast_before_join_raises(self):
        sim = Simulator()
        net = Network(sim)
        h = net.add_host("h")
        m = Recorder("m", contacts=[Address("nowhere", "x")])
        h.spawn(m)
        with pytest.raises(MembershipError):
            m.cbcast("x", 1)
        with pytest.raises(MembershipError):
            m.abcast("x", 1)


class TestRequestReply:
    def test_collect_all_replies(self):
        sim, net, members = build_group(3)
        results = {}
        members[0].group_request(
            "state?", n_wanted=ALL, on_done=lambda r, t: results.update(r=r, t=t)
        )
        sim.run(until=sim.now + 5.0)
        assert results["t"] is False
        assert len(results["r"]) == 3
        assert {v for (_, v) in results["r"]} == {"m0", "m1", "m2"}

    def test_collect_n_wanted_subset(self):
        sim, net, members = build_group(5)
        results = {}
        members[2].group_request(
            "state?", n_wanted=2, on_done=lambda r, t: results.update(r=r, t=t)
        )
        sim.run(until=sim.now + 5.0)
        assert results["t"] is False
        assert len(results["r"]) == 2

    def test_majority(self):
        sim, net, members = build_group(5)
        results = {}
        members[0].group_request(
            "state?", n_wanted=MAJORITY, on_done=lambda r, t: results.update(r=r, t=t)
        )
        sim.run(until=sim.now + 5.0)
        assert len(results["r"]) == 3

    def test_timeout_with_partial_replies(self):
        sim, net, members = build_group(3)
        results = {}
        members[0].group_request(
            "no-reply-please",
            n_wanted=ALL,
            timeout=2.0,
            on_done=lambda r, t: results.update(r=r, t=t),
        )
        sim.run(until=sim.now + 5.0)
        assert results["t"] is True
        assert results["r"] == []

    def test_all_members_see_request(self):
        sim, net, members = build_group(3)
        members[1].group_request("state?", on_done=lambda r, t: None)
        sim.run(until=sim.now + 5.0)
        for m in members:
            assert "state?" in m.requests_seen


class TestLeaveAndFailure:
    def test_graceful_leave_non_coordinator(self):
        sim, net, members = build_group(3)
        members[2].leave()
        sim.run(until=sim.now + 10.0)
        for m in members[:2]:
            assert members[2].address not in m.view
            assert len(m.view) == 2

    def test_coordinator_graceful_leave_hands_off(self):
        sim, net, members = build_group(3)
        by_addr = {m.address: m for m in members}
        second_oldest = by_addr[members[0].view.members[1]]
        members[0].leave()
        sim.run(until=sim.now + 10.0)
        for m in members[1:]:
            assert m.view.coordinator == second_oldest.address
            assert len(m.view) == 2
        assert second_oldest.is_coordinator

    def test_member_crash_detected_and_evicted(self):
        sim, net, members = build_group(3)
        net.host("h2").crash()
        sim.run(until=sim.now + 15.0)
        for m in members[:2]:
            assert members[2].address not in m.view
        failures = sim.log.records(category="isis.failure_detected")
        assert any(r.get("failed") == str(members[2].address) for r in failures)

    def test_coordinator_crash_oldest_survivor_takes_over(self):
        sim, net, members = build_group(4)
        by_addr = {m.address: m for m in members}
        second_oldest = by_addr[members[0].view.members[1]]
        net.host("h0").crash()
        sim.run(until=sim.now + 30.0)
        for m in members[1:]:
            assert m.view.coordinator == second_oldest.address
            assert members[0].address not in m.view
            assert len(m.view) == 3
        assert second_oldest.is_coordinator
        takeovers = sim.log.records(category="isis.takeover")
        assert takeovers and takeovers[0].get("new_coordinator") == str(second_oldest.address)

    def test_double_crash_third_member_takes_over(self):
        sim, net, members = build_group(4)
        by_addr = {m.address: m for m in members}
        ordered = [by_addr[a] for a in members[0].view.members]
        # crash the two most senior members
        net.host(ordered[0].address.host).crash()
        net.host(ordered[1].address.host).crash()
        sim.run(until=sim.now + 60.0)
        survivors = ordered[2:]
        for m in survivors:
            assert m.view.coordinator == ordered[2].address
            assert len(m.view) == 2

    def test_group_survives_leader_churn_and_accepts_joins(self):
        sim, net, members = build_group(3)
        by_addr = {m.address: m for m in members}
        second_oldest = by_addr[members[0].view.members[1]]
        net.host("h0").crash()
        sim.run(until=sim.now + 30.0)
        host = net.add_host("h9")
        joiner = Recorder("m9", contacts=[members[1].address])
        host.spawn(joiner)
        sim.run(until=sim.now + 15.0)
        assert joiner.joined
        assert joiner.view.coordinator == second_oldest.address

    def test_multicast_still_works_after_takeover(self):
        sim, net, members = build_group(3)
        net.host("h0").crash()
        sim.run(until=sim.now + 30.0)
        members[2].abcast("post-fail", "hello")
        members[1].cbcast("post-fail-cb", "hi")
        sim.run(until=sim.now + 5.0)
        for m in members[1:]:
            assert ("post-fail" in [k for (_, k, _) in m.ab_deliveries])
            assert ("post-fail-cb" in [k for (_, k, _) in m.cb_deliveries])


class TestDeterminism:
    def test_same_seed_same_view_history(self):
        def history(seed):
            sim, net, members = build_group(4, seed=seed)
            net.host("h0").crash()
            sim.run(until=sim.now + 30.0)
            return [m.views for m in members]

        assert history(11) == history(11)


class TestSuspectReports:
    def test_member_report_evicts_suspect(self):
        """A member that noticed a dead peer (e.g. an unanswered reply)
        reports it; the coordinator evicts."""
        from repro.isis.messages import Suspect

        sim, net, members = build_group(4)
        by_addr = {m.address: m for m in members}
        ordered = [by_addr[a] for a in members[0].view.members]
        victim = ordered[3]
        net.host(victim.address.host).crash()
        # a peer reports the failure directly rather than waiting for the
        # heartbeat timeout
        reporter = ordered[2]
        reporter.send(members[0].view.coordinator, Suspect(victim.address, reporter.address))
        sim.run(until=sim.now + 10.0)
        for m in ordered[:3]:
            assert victim.address not in m.view

    def test_suspect_of_live_member_is_retracted_by_heartbeat(self):
        from repro.isis.messages import Suspect

        sim, net, members = build_group(3)
        by_addr = {m.address: m for m in members}
        ordered = [by_addr[a] for a in members[0].view.members]
        target = ordered[2]  # alive and heartbeating
        coordinator = ordered[0]
        # a (mistaken) suspicion lands just after a heartbeat: the queued
        # leave is retracted by the next heartbeat before the view change
        # only if the change hasn't started; at minimum the group must
        # re-admit or never diverge — run and check the group stays sane
        reporter = ordered[1]
        reporter.send(coordinator.address, Suspect(target.address, reporter.address))
        sim.run(until=sim.now + 20.0)
        live = [m for m in ordered if m.joined and m.host.up]
        views = {m.view.members for m in live}
        assert len(views) == 1  # everyone agrees, whatever the outcome
