"""Shard-invariance goldens and deadlock-freedom for the sharded backend.

The sharded backend's headline guarantee (docs/PARALLELISM.md) is that
partitioning is invisible to the event schedule: the same workload replays
byte-identically to the serial kernel at *any* shard count. These tests pin
that against the golden digests in ``tests/golden/`` — recorded from the
serial backend in a different process — by re-running the golden scenarios
(random DAG and the chaos-mix fault soak, seeds 3 and 11) on the sharded
backend at 1, 2, and 4 shards (plus an 8-shard spot check).

Conservative synchronization is deadlock-free only with positive lookahead
on every cross-shard link; the backend enforces that eagerly, and the
rejection tests here pin the error's clarity.
"""

import pytest

from repro.netsim.network import LatencyModel, Network
from repro.netsim.sharded import ShardedSimulator
from repro.trace.replay import event_log_digest
from repro.util.errors import SimulationError

from tests.test_determinism_golden import GOLDEN_DIR, _chaos_mix, _randomdag

SHARD_COUNTS = (1, 2, 4)


def _golden(name: str) -> str:
    return (GOLDEN_DIR / f"{name}.digest").read_text().strip()


class TestShardInvariance:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_randomdag_matches_serial_golden(self, seed, shards):
        log = _randomdag(seed, backend="sharded", shards=shards)
        assert event_log_digest(log) == _golden(f"randomdag_seed{seed}"), (
            f"randomdag seed {seed} at {shards} shards diverged from the "
            "serial golden digest — shard interleaving leaked into the "
            "event schedule"
        )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_chaos_mix_matches_serial_golden(self, seed, shards):
        log = _chaos_mix(seed, backend="sharded", shards=shards)
        assert event_log_digest(log) == _golden(f"chaosmix_seed{seed}"), (
            f"chaos-mix seed {seed} at {shards} shards diverged from the "
            "serial golden digest"
        )

    def test_eight_shards_spot_check(self):
        log = _randomdag(3, backend="sharded", shards=8)
        assert event_log_digest(log) == _golden("randomdag_seed3")


class TestShardStats:
    def test_stats_account_for_every_event(self):
        """Per-shard commit counts must sum to the global event count, and
        a networked workload must actually cross shards."""
        import repro.core as core

        vce = core.VirtualComputingEnvironment(
            core.workstation_cluster(4),
            core.VCEConfig(seed=3, backend="sharded", shards=4),
        ).boot()
        sim = vce.sim
        assert isinstance(sim, ShardedSimulator)
        stats = sim.shard_stats()
        assert stats["events"] == sim.events_processed > 0
        assert sum(s["events"] for s in stats["per_shard"]) == stats["events"]
        assert sum(s["hosts"] for s in stats["per_shard"]) == len(vce.network.hosts)
        assert stats["cross_shard_events"] > 0  # daemons talk across shards
        # link latencies were registered, so every shard has a finite horizon
        assert all(s["horizon"] is not None for s in stats["per_shard"])


class TestDeadlockFreedom:
    def test_zero_lookahead_default_link_rejected(self):
        """A zero-latency default link model would let shards exchange
        messages with no time in between — conservative sync would deadlock,
        so the network refuses to build on a multi-shard backend."""
        sim = ShardedSimulator(0, shards=2)
        with pytest.raises(SimulationError) as exc:
            Network(sim, LatencyModel(base_latency=0.0))
        message = str(exc.value)
        assert "zero-lookahead" in message
        assert "serial backend" in message  # the error tells you the way out

    def test_zero_lookahead_route_rejected_across_shards(self):
        sim = ShardedSimulator(0, shards=2)
        net = Network(sim)  # default model has positive base latency
        names = [f"m{i}" for i in range(8)]
        for name in names:
            net.add_host(name)
        by_shard: dict[int, str] = {}
        for name in names:
            by_shard.setdefault(sim.shard_of(name), name)
        a, b = list(by_shard.values())[:2]  # two hosts on different shards
        with pytest.raises(SimulationError, match="zero-lookahead"):
            net.set_route(a, b, LatencyModel(base_latency=0.0))

    def test_zero_lookahead_allowed_within_a_shard(self):
        """Intra-shard links impose no channel bound; a zero-latency route
        between co-located hosts is fine (and on one shard, always)."""
        sim = ShardedSimulator(0, shards=1)
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.set_route("a", "b", LatencyModel(base_latency=0.0))  # no raise

    def test_bad_shard_count_rejected(self):
        with pytest.raises(SimulationError, match="shard count"):
            ShardedSimulator(0, shards=0)
