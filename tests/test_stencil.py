"""Tests for the synchronous stencil workload (real numerics over vMPI)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import VirtualComputingEnvironment, heterogeneous_cluster, workstation_cluster
from repro.machines import MachineClass
from repro.scheduler.execution_program import RunState
from repro.workloads import build_stencil_graph, heat_reference

from tests.conftest import make_cluster, round_robin_placement


class TestStencilCorrectness:
    def test_distributed_matches_reference(self):
        cluster = make_cluster(4)
        graph = build_stencil_graph(ranks=4, cells=64, iterations=10)
        app = cluster.manager.submit(
            graph, round_robin_placement(graph, [f"ws{i}" for i in range(4)])
        )
        cluster.run()
        result = app.results("grid")[0]
        ref = heat_reference(64, 10)
        assert np.abs(result - ref).max() < 1e-12

    def test_single_rank_degenerate(self):
        cluster = make_cluster(1)
        graph = build_stencil_graph(ranks=1, cells=16, iterations=5)
        app = cluster.manager.submit(graph, round_robin_placement(graph, ["ws0"]))
        cluster.run()
        assert np.abs(app.results("grid")[0] - heat_reference(16, 5)).max() < 1e-12

    @settings(deadline=None, max_examples=8)
    @given(
        ranks=st.sampled_from([2, 4, 8]),
        iterations=st.integers(1, 12),
    )
    def test_rank_count_invariance(self, ranks, iterations):
        """The physics must not depend on the decomposition width."""
        cells = 32
        cluster = make_cluster(ranks, seed=ranks * 100 + iterations)
        graph = build_stencil_graph(ranks=ranks, cells=cells, iterations=iterations)
        app = cluster.manager.submit(
            graph, round_robin_placement(graph, [f"ws{i}" for i in range(ranks)])
        )
        cluster.run()
        result = app.results("grid")[0]
        assert np.abs(result - heat_reference(cells, iterations)).max() < 1e-10

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError, match="divide evenly"):
            build_stencil_graph(ranks=3, cells=64)

    def test_heat_conserves_mass(self):
        # fixed-boundary diffusion loses mass only through the walls; with a
        # centred spike and few iterations nothing reaches the walls
        ref = heat_reference(64, 10)
        assert ref.sum() == pytest.approx(100.0)


class TestStencilScheduling:
    def test_classified_synchronous_routed_to_simd(self):
        vce = VirtualComputingEnvironment(heterogeneous_cluster()).boot()
        graph = build_stencil_graph(ranks=1, cells=32, iterations=4)
        class_map = vce.default_class_map(graph)
        assert class_map["grid"] is MachineClass.SIMD

    def test_runs_through_full_vce(self):
        vce = VirtualComputingEnvironment(workstation_cluster(4)).boot()
        graph = build_stencil_graph(ranks=4, cells=32, iterations=6)
        run = vce.submit(graph, class_map={"grid": MachineClass.WORKSTATION})
        vce.run_to_completion(run)
        assert run.state is RunState.DONE
        result = run.app.results("grid")[0]
        assert np.abs(result - heat_reference(32, 6)).max() < 1e-10
