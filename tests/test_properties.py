"""Property-based tests (hypothesis) on core invariants.

These complement the example-based suites: each property is an invariant
the system must hold for *any* input in the strategy's domain.
"""

import random

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.isis import VectorClock
from repro.machines import MachineClass
from repro.metrics.collector import _merge
from repro.objects import wire_size
from repro.scheduler import (
    AgingQueue,
    MachineBid,
    ResourceRequest,
    greedy_assignment,
    load_sorted_assignment,
    random_assignment,
    round_robin_assignment,
    utilization_first_assignment,
)
from repro.scheduler.messages import ModuleNeed
from repro.taskgraph import TaskGraph, TaskNode
from repro.util.rng import RngStreams


# ---------------------------------------------------------------- intervals


@given(
    st.lists(
        st.tuples(
            st.floats(0, 1000, allow_nan=False), st.floats(0, 1000, allow_nan=False)
        ).map(lambda t: (min(t), max(t))),
        max_size=30,
    )
)
def test_merge_intervals_invariants(intervals):
    merged = _merge(intervals)
    # sorted, disjoint, non-touching
    for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
        assert e1 < s2
    # total coverage preserved: every input point is inside some output
    for s, e in intervals:
        assert any(ms <= s and e <= me for ms, me in merged)
    # merged length >= max single interval, <= sum of lengths
    if intervals:
        total = sum(e - s for s, e in merged)
        assert total <= sum(e - s for s, e in intervals) + 1e-9
        assert total >= max(e - s for s, e in intervals) - 1e-9


# -------------------------------------------------------------- vector clocks


@given(st.lists(st.sampled_from("abcd"), min_size=1, max_size=40))
def test_vector_clock_counts_increments(events):
    vc = VectorClock()
    for who in events:
        vc.increment(who)
    for who in "abcd":
        assert vc.get(who) == events.count(who)


@given(
    st.lists(st.tuples(st.sampled_from("abc"), st.integers(0, 8)), max_size=6).map(dict),
    st.lists(st.tuples(st.sampled_from("abc"), st.integers(0, 8)), max_size=6).map(dict),
    st.lists(st.tuples(st.sampled_from("abc"), st.integers(0, 8)), max_size=6).map(dict),
)
def test_vector_clock_partial_order_transitive(d1, d2, d3):
    a, b, c = VectorClock(d1), VectorClock(d2), VectorClock(d3)
    if a <= b and b <= c:
        assert a <= c
    # antisymmetry
    if a <= b and b <= a:
        assert a == b


# ------------------------------------------------------------------ marshal


@given(
    st.recursive(
        st.one_of(
            st.none(),
            st.booleans(),
            st.integers(-(2**40), 2**40),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=50),
        ),
        lambda children: st.one_of(
            st.lists(children, max_size=5),
            st.dictionaries(st.text(max_size=8), children, max_size=5),
        ),
        max_leaves=20,
    )
)
def test_wire_size_positive_and_4_aligned_for_leaves(value):
    size = wire_size(value)
    assert size >= 4
    assert isinstance(size, int)


@given(st.text(max_size=200))
def test_wire_size_string_monotone_in_length(s):
    assert wire_size(s + "x") >= wire_size(s)


# ------------------------------------------------------------------- graphs


@st.composite
def random_dags(draw):
    n = draw(st.integers(2, 12))
    graph = TaskGraph("prop")
    for i in range(n):
        graph.add_task(TaskNode(f"t{i}", work=draw(st.floats(0.1, 10))))
    for j in range(1, n):
        # edges only from lower to higher index: guaranteed acyclic
        parents = draw(
            st.lists(st.integers(0, j - 1), unique=True, max_size=min(3, j))
        )
        for p in parents:
            graph.connect(f"t{p}", f"t{j}")
    return graph


@given(random_dags())
def test_topological_order_respects_arcs(graph):
    order = {name: i for i, name in enumerate(graph.topological_order())}
    for arc in graph.arcs:
        assert order[arc.src] < order[arc.dst]


@given(random_dags())
def test_critical_path_bounds(graph):
    path, length = graph.critical_path()
    assert length <= graph.total_work() + 1e-9
    assert length >= max(t.work for t in graph) - 1e-9
    # the path is a real chain in the graph
    for a, b in zip(path, path[1:]):
        assert b in graph.successors(a)
    assert abs(sum(graph.task(p).work for p in path) - length) < 1e-9


@given(random_dags())
def test_levels_partition_and_respect_depth(graph):
    levels = graph.levels()
    flat = [n for level in levels for n in level]
    assert sorted(flat) == sorted(t.name for t in graph)
    index = {n: i for i, level in enumerate(levels) for n in level}
    for arc in graph.arcs:
        assert index[arc.src] < index[arc.dst]


# ---------------------------------------------------------------- scheduler


def _bids(names):
    return [
        MachineBid(m, None, load, 1.0, MachineClass.WORKSTATION)
        for m, load in names
    ]


@st.composite
def assignment_problems(draw):
    n_machines = draw(st.integers(1, 8))
    machines = [f"m{i}" for i in range(n_machines)]
    bids = _bids(
        [(m, draw(st.floats(0, 0.79, allow_nan=False))) for m in machines]
    )
    n_tasks = draw(st.integers(1, 8))
    needs = []
    for t in range(n_tasks):
        candidates = draw(
            st.lists(st.sampled_from(machines), unique=True, min_size=1)
        )
        needs.append((f"task{t}", 0, candidates))
    return needs, bids


@given(assignment_problems())
@settings(suppress_health_check=[HealthCheck.too_slow])
def test_policies_produce_feasible_injective_assignments(problem):
    needs, bids = problem
    for policy in (
        load_sorted_assignment,
        greedy_assignment,
        utilization_first_assignment,
        round_robin_assignment,
        lambda n, b: random_assignment(n, b, random.Random(0)),
    ):
        out = policy(needs, bids)
        # feasibility: every assignment is among the instance's candidates
        candidates = {(t, r): set(c) for t, r, c in needs}
        for key, machine in out.items():
            assert machine in candidates[key]
        # injectivity: one instance per machine
        assert len(set(out.values())) == len(out)


@given(assignment_problems())
@settings(suppress_health_check=[HealthCheck.too_slow])
def test_assignments_are_maximal_matchings(problem):
    """Every policy yields a *maximal* matching: no unplaced instance could
    still be put on a free feasible machine."""
    needs, bids = problem
    for policy in (greedy_assignment, utilization_first_assignment, load_sorted_assignment):
        out = policy(needs, bids)
        free = {b.machine for b in bids} - set(out.values())
        for task, rank, candidates in needs:
            if (task, rank) not in out:
                assert not (set(candidates) & free), (
                    f"{policy.__name__} left ({task},{rank}) unplaced though "
                    f"{set(candidates) & free} was free"
                )


@given(
    st.lists(
        st.tuples(st.floats(0, 100, allow_nan=False), st.floats(0, 10, allow_nan=False)),
        min_size=1,
        max_size=12,
    ),
    st.floats(0.01, 5.0),
    st.floats(100, 1000),
)
def test_aging_queue_pop_order_matches_effective_priority(arrivals, rate, now):
    queue = AgingQueue(aging_rate=rate)
    for i, (enq, prio) in enumerate(arrivals):
        request = ResourceRequest(
            f"r{i}", "app", MachineClass.WORKSTATION,
            (ModuleNeed("t"),), None, priority=prio,
        )
        queue.push(request, enq)
    popped = []
    while queue:
        item = queue.pop(now)
        popped.append(item.effective_priority(now, rate))
    assert popped == sorted(popped, reverse=True)


@given(
    st.floats(0.01, 2.0),
    st.floats(0.1, 10.0),
    st.floats(0.1, 5.0),
)
def test_aging_queue_never_starves(rate, high_priority, dt):
    """§4.3 no-starvation: with aging_rate > 0 a zero-priority request is
    eventually popped even under a steady stream of fresh high-priority
    arrivals (one arrival + one pop per dt)."""
    queue = AgingQueue(aging_rate=rate)
    victim = ResourceRequest(
        "victim", "app", MachineClass.WORKSTATION, (ModuleNeed("t"),), None,
        priority=0.0,
    )
    queue.push(victim, 0.0)
    # fresh arrivals enqueued after t = high/rate lose to the aged victim,
    # so it must surface within ceil(high / (rate*dt)) + 2 service steps
    bound = int(high_priority / (rate * dt)) + 3
    assume(bound <= 2000)  # keep the worst case fast; the bound still holds
    now = 0.0
    for k in range(bound):
        now += dt
        fresh = ResourceRequest(
            f"fresh-{k}", "app", MachineClass.WORKSTATION, (ModuleNeed("t"),),
            None, priority=high_priority,
        )
        queue.push(fresh, now)
        item = queue.pop(now)
        if item.request.req_id == "victim":
            return
    pytest.fail(f"victim starved for {bound} service steps")


# ------------------------------------------------------------------- traces


@st.composite
def traced_logs(draw):
    """A synthetic trace-tagged event log: an app span plus nested task
    spans whose intervals are contained in their parents'."""
    from repro.util.eventlog import EventLog

    n = draw(st.integers(0, 6))
    root_start = draw(st.floats(0, 10, allow_nan=False))
    root_end = root_start + draw(st.floats(1, 100, allow_nan=False))
    spans = [("sp-0", None, root_start, root_end)]
    records = [
        (root_start, "app.submit", "app-0", {"trace_id": "tr", "span_id": "sp-0", "tasks": n}),
        (root_end, "app.done", "app-0", {"trace_id": "tr", "span_id": "sp-0"}),
    ]
    for i in range(1, n + 1):
        parent_id, _, ps, pe = spans[draw(st.integers(0, len(spans) - 1))]
        start = draw(st.floats(ps, pe, allow_nan=False))
        end = draw(st.floats(start, pe, allow_nan=False))
        spans.append((f"sp-{i}", parent_id, start, end))
        tag = {"trace_id": "tr", "span_id": f"sp-{i}", "parent_span_id": parent_id}
        records.append(
            (start, "runtime.dispatch", f"t{i}[0]",
             dict(tag, task=f"t{i}", rank=0, host="ws0", incarnation=0))
        )
        started = draw(st.floats(start, end, allow_nan=False))
        records.append((started, "task.start", f"t{i}[0]", dict(tag, host="ws0")))
        records.append((end, "task.done", f"t{i}[0]", dict(tag)))
    log = EventLog()
    for time, category, source, data in sorted(records, key=lambda r: r[0]):
        log.emit(time, category, source, **data)
    return log, spans


@given(traced_logs())
def test_span_trees_well_formed(case):
    """Assembled span trees: one root per trace, every span reachable
    exactly once (no cycles), child intervals contained in parents'."""
    from repro.trace import TraceAssembler

    log, spans = case
    traces = TraceAssembler(log).assemble()
    assert len(traces) == 1
    trace = traces[0]
    assert len(trace.roots) == 1
    assert len(trace.spans) == len(spans)
    walked = list(trace.root.tree())
    assert len(walked) == len(trace.spans)
    assert len({s.span_id for s in walked}) == len(walked)
    for span in walked:
        for child in span.children:
            assert child.start >= span.start - 1e-9
            assert child.end <= span.end + 1e-9


@given(traced_logs())
def test_critical_path_always_tiles_makespan(case):
    """For any well-formed trace the critical path is a contiguous tiling
    of [submit, done]: segment durations sum exactly to the makespan."""
    from repro.trace import TraceAssembler, critical_path

    log, _spans = case
    trace = TraceAssembler(log).assemble()[0]
    path = critical_path(trace)
    assert path is not None
    assert path.total == pytest.approx(path.makespan, rel=1e-9, abs=1e-9)
    cursor = path.start
    for seg in path.segments:
        assert seg.start == pytest.approx(cursor, abs=1e-9)
        assert seg.end >= seg.start - 1e-12
        cursor = seg.end
    assert cursor == pytest.approx(path.end, abs=1e-9)


# -------------------------------------------------------------- fault tolerance


@st.composite
def fault_schedules(draw):
    """Small random fault plans over a 4-workstation cluster: daemon
    bounces, drop windows, short partitions, latency spikes."""
    from repro.faults.schedule import FaultSchedule

    hosts = [f"ws{i}" for i in range(4)]
    schedule = FaultSchedule("prop")
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.sampled_from(["bounce", "drop", "partition", "latency"]))
        time = draw(st.floats(0.5, 12.0, allow_nan=False))
        if kind == "bounce":
            schedule.bounce(
                time,
                draw(st.sampled_from(hosts)),
                down_for=draw(st.floats(2.0, 6.0, allow_nan=False)),
            )
        elif kind == "drop":
            schedule.drop_window(
                time,
                draw(st.floats(5.0, 30.0, allow_nan=False)),
                draw(st.floats(0.0, 0.15, allow_nan=False)),
            )
        elif kind == "partition":
            island = draw(
                st.lists(st.sampled_from(hosts), unique=True, min_size=1, max_size=2)
            )
            schedule.partition_window(
                time, draw(st.floats(1.0, 5.0, allow_nan=False)), island
            )
        else:
            schedule.latency_spike(
                time,
                draw(st.floats(2.0, 8.0, allow_nan=False)),
                draw(st.floats(1.0, 6.0, allow_nan=False)),
            )
    return schedule


@given(fault_schedules())
@settings(
    max_examples=6,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_allocation_epochs_unique_under_random_faults(schedule):
    """For *any* fault schedule, no (task, rank) is ever executed by two
    live instances under the same allocation epoch: every dispatch mints a
    fresh epoch, commits happen at most once per rank, and any stale exit
    is provably from a superseded epoch."""
    from repro.core import VCEConfig, VirtualComputingEnvironment, workstation_cluster
    from repro.migration.failover import FailoverConfig
    from repro.workloads import build_pipeline_graph

    config = VCEConfig(seed=1, reliable_transport=True, failover=FailoverConfig())
    vce = VirtualComputingEnvironment(workstation_cluster(4), config).boot()
    vce.chaos(schedule)
    vce.submit(build_pipeline_graph(stages=2, stage_work=6.0, name="prop"))
    vce.run(until=vce.sim.now + 300.0)

    # (a) each dispatch of the same (app, task, rank) carries a fresh epoch
    epochs = {}
    for record in vce.sim.log.records(category="runtime.dispatch"):
        key = (record.source, record.get("task"), record.get("rank"))
        incarnation = record.get("incarnation")
        assert incarnation not in epochs.setdefault(key, set()), (
            f"{key} dispatched twice under epoch {incarnation}"
        )
        epochs[key].add(incarnation)
    # (b) at-most-once commit: no (task, rank) finishes twice
    done = {}
    for record in vce.sim.log.records(category="task.done"):
        key = (record.get("app"), record.get("task"), record.get("rank"))
        done[key] = done.get(key, 0) + 1
    assert all(n == 1 for n in done.values()), done
    # (c) every rejected commit really was from a superseded epoch
    for record in vce.sim.log.records(category="runtime.stale_commit"):
        assert record.get("epoch") != record.get("current")


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["push", "pop", "remove"]),
            st.integers(0, 15),
            st.floats(0, 5, allow_nan=False),
        ),
        max_size=60,
    ),
    st.floats(0.0, 2.0, allow_nan=False),
)
def test_aging_queue_never_loses_a_request(ops, rate):
    """Model-based conservation: under any interleaving of push / pop /
    remove the queue's contents always equal the model set — a queued
    request can only leave by being popped or explicitly removed."""
    queue = AgingQueue(aging_rate=rate)
    live = set()
    accepted = exited = 0
    now = 0.0
    for op, i, dt in ops:
        now += dt
        req_id = f"r{i}"
        if op == "push":
            request = ResourceRequest(
                req_id, "app", MachineClass.WORKSTATION,
                (ModuleNeed("t"),), None, priority=float(i),
            )
            queue.push(request, now)
            if req_id not in live:  # re-push of a queued id is idempotent
                accepted += 1
                live.add(req_id)
        elif op == "pop":
            item = queue.pop(now)
            assert (item is None) == (not live)
            if item is not None:
                assert item.request.req_id in live
                live.discard(item.request.req_id)
                exited += 1
        else:
            found = queue.remove(req_id)
            assert found == (req_id in live)
            if found:
                live.discard(req_id)
                exited += 1
        assert len(queue) == len(live)
    assert sorted(item.request.req_id for item in queue._items) == sorted(live)
    assert accepted == exited + len(queue)


# --------------------------------------------------------------------- rng


@given(st.integers(0, 2**31), st.text(min_size=1, max_size=10))
def test_rng_streams_isolated(seed, name):
    """Drawing from one stream never perturbs another."""
    s1 = RngStreams(seed)
    s2 = RngStreams(seed)
    # consume heavily from an unrelated stream in s1 only
    for _ in range(100):
        s1.stream("noise").random()
    assert [s1.stream(name).random() for _ in range(5)] == [
        s2.stream(name).random() for _ in range(5)
    ]
