"""Cross-backend conformance suite for the ``SimBackend`` contract.

Two tiers, matching the two halves of the determinism contract
(docs/NETWORK.md):

- **Kernel-order tier** (``backend`` fixture, the virtual-time backends
  only): exact ``(time, seq)`` pop order, FIFO ``call_soon``,
  lazy/idempotent cancel, accurate ``pending``, the daemon-run rule —
  what makes replay digests backend-invariant between ``serial`` and
  ``sharded``.  The ``network`` backend paces by the wall clock and
  deliberately does not promise this order, so these tests run over
  :data:`~repro.netsim.backend.SIM_BACKEND_NAMES`.
- **Behavior tier** (``behavior_backend`` fixture, *every* backend
  including ``network``, marked ``network`` so CI can select it): the
  same workload must produce the same task outcomes — DONE set, per-task
  results digest — a protocol-FSM-clean event log, and exactly-once
  completion under a daemon crash, whether the daemons are simulated
  processes or real ``SIGKILL``-able OS processes.

The pop-order / pending-count Hypothesis property is the backend-agnostic
port of the serial-only white-box property in ``test_perf_contract.py``:
operations carry host tags so the sharded backend actually spreads entries
across shards rather than conformance-testing one trivial shard.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.netsim.backend import BACKEND_NAMES, SIM_BACKEND_NAMES, create_simulator
from repro.util.errors import SimulationError

#: host names the tests tag events with; under 3 shards the consistent
#: hash spreads these across more than one shard (asserted below)
HOSTS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"]

SHARDS = 3


def make_sim(backend: str, seed: int = 0):
    sim = create_simulator(seed, backend=backend, shards=SHARDS)
    for name in HOSTS:
        sim.register_host(name)
    return sim


@pytest.fixture(params=SIM_BACKEND_NAMES)
def backend(request):
    """The virtual-time backends: exact (time, seq) order is their
    contract.  The ``network`` backend is covered by the behavior tier
    below instead."""
    return request.param


def test_host_tags_actually_spread_shards():
    """Meta-check: the tagged hosts land on >1 shard, otherwise the sharded
    half of this suite would be vacuous."""
    sim = make_sim("sharded")
    assert len({sim.shard_of(name) for name in HOSTS}) > 1


def test_unknown_backend_rejected():
    with pytest.raises(SimulationError, match="unknown simulation backend"):
        create_simulator(0, backend="quantum")


class TestPopOrder:
    def test_fires_in_time_then_seq_order(self, backend):
        sim = make_sim(backend)
        fired = []
        for i, (delay, host) in enumerate(
            [(3.0, "alpha"), (1.0, "bravo"), (2.0, None), (1.0, "charlie")]
        ):
            sim.schedule(delay, lambda i=i: fired.append(i), host=host)
        sim.run()
        assert fired == [1, 3, 2, 0]  # by (time, seq)
        assert sim.now == 3.0

    def test_same_timestamp_batch_drains_in_schedule_order(self, backend):
        """All entries at one timestamp fire in scheduling (seq) order even
        when they belong to different hosts/shards."""
        sim = make_sim(backend)
        fired = []
        for i, host in enumerate(HOSTS * 3):
            sim.schedule_at(5.0, lambda i=i: fired.append(i), host=host)
        sim.run()
        assert fired == list(range(len(HOSTS) * 3))

    def test_callback_scheduling_preserves_global_order(self, backend):
        """Events scheduled from inside callbacks — including onto *other*
        hosts at times before already-queued work — still fire in global
        (time, seq) order."""
        sim = make_sim(backend)
        fired = []

        def first():
            fired.append("first")
            # earlier than the queued 10.0 event, on a different host
            sim.schedule_at(4.0, lambda: fired.append("cross"), host="bravo")
            sim.call_soon(lambda: fired.append("soon"), host="charlie")

        sim.schedule_at(2.0, first, host="alpha")
        sim.schedule_at(10.0, lambda: fired.append("last"), host="delta")
        sim.run()
        assert fired == ["first", "soon", "cross", "last"]

    def test_step_pops_single_events_in_order(self, backend):
        sim = make_sim(backend)
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"), host="bravo")
        sim.schedule(1.0, lambda: fired.append("a"), host="alpha")
        assert sim.step() is True
        assert fired == ["a"] and sim.now == 1.0
        assert sim.step() is True
        assert fired == ["a", "b"] and sim.now == 2.0
        assert sim.step() is False

    def test_schedule_in_past_rejected(self, backend):
        sim = make_sim(backend)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="before now"):
            sim.schedule_at(0.5, lambda: None)
        with pytest.raises(SimulationError, match="negative delay"):
            sim.schedule(-1.0, lambda: None)


class TestCallSoonFifo:
    def test_call_soon_is_fifo(self, backend):
        sim = make_sim(backend)
        fired = []
        for i, host in enumerate(["alpha", "bravo", None, "charlie", "alpha"]):
            sim.call_soon(lambda i=i: fired.append(i), host=host)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_call_soon_runs_after_queued_events_at_now(self, backend):
        """A call_soon issued mid-callback lands *behind* events already
        queued at the current timestamp (seq order), on every backend."""
        sim = make_sim(backend)
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("q1"), host="alpha")
        sim.schedule_at(
            1.0,
            lambda: (
                fired.append("q2"),
                sim.call_soon(lambda: fired.append("soon"), host="bravo"),
            ),
            host="bravo",
        )
        sim.schedule_at(1.0, lambda: fired.append("q3"), host="charlie")
        sim.run()
        assert fired == ["q1", "q2", "q3", "soon"]


class TestCancelSemantics:
    def test_cancel_prevents_firing_and_updates_pending(self, backend):
        sim = make_sim(backend)
        fired = []
        keep = sim.schedule(1.0, lambda: fired.append("keep"), host="alpha")
        drop = sim.schedule(2.0, lambda: fired.append("drop"), host="bravo")
        assert sim.pending == 2
        drop.cancel()
        assert drop.cancelled is True
        assert sim.pending == 1
        sim.run()
        assert fired == ["keep"]
        assert keep.cancelled is False

    def test_cancel_is_idempotent(self, backend):
        sim = make_sim(backend)
        anchor = sim.schedule(5.0, lambda: None, host="alpha")
        timer = sim.schedule(1.0, lambda: None, host="bravo")
        timer.cancel()
        timer.cancel()  # double-cancel must not double-count
        assert sim.pending == 1
        sim.run()
        assert sim.now == 5.0
        assert anchor.cancelled is False

    def test_cancel_after_fired_is_inert(self, backend):
        sim = make_sim(backend)
        fired = []
        timer = sim.schedule(1.0, lambda: fired.append(1), host="alpha")
        sim.schedule(5.0, lambda: fired.append(2), host="bravo")
        sim.run(until=2.0)
        assert fired == [1]
        timer.cancel()  # already fired: no-op, counters untouched
        assert sim.pending == 1
        sim.run()
        assert fired == [1, 2]

    def test_cancel_after_full_drain_is_terminal_noop(self, backend):
        """Cancelling a fired timer after run() has fully drained the heap
        must leave ``pending`` at 0 and the next run healthy."""
        sim = make_sim(backend)
        timers = [
            sim.schedule(float(i % 3), lambda: None, host=HOSTS[i % len(HOSTS)])
            for i in range(12)
        ]
        sim.run()
        assert sim.pending == 0
        for timer in timers:
            timer.cancel()
        assert sim.pending == 0
        fired = []
        sim.schedule(1.0, lambda: fired.append(1), host="alpha")
        sim.run()
        assert fired == [1]

    def test_backend_cancel_method(self, backend):
        sim = make_sim(backend)
        timer = sim.schedule(1.0, lambda: None, host="alpha")
        sim.cancel(timer)  # interface-level sugar for timer.cancel()
        assert timer.cancelled is True
        assert sim.pending == 0

    def test_tombstone_churn_keeps_heaps_bounded(self, backend):
        """Schedule-then-cancel churn must compact tombstones on every
        backend, not accumulate them (the serial perf contract, generalized)."""
        sim = make_sim(backend)
        keep = [
            sim.schedule(1e6 + i, lambda: None, host=HOSTS[i % len(HOSTS)])
            for i in range(10)
        ]
        for round_ in range(200):
            batch = [
                sim.schedule(100.0 + i, lambda: None, host=HOSTS[(round_ + i) % len(HOSTS)])
                for i in range(50)
            ]
            for timer in batch:
                timer.cancel()
        assert sim.pending == len(keep)
        assert sim.compactions > 0


class TestRunSemantics:
    def test_daemon_events_do_not_keep_run_alive(self, backend):
        sim = make_sim(backend)
        fired = []

        def heartbeat():
            fired.append("beat")
            sim.schedule(1.0, heartbeat, daemon=True, host="alpha")

        sim.schedule(1.0, heartbeat, daemon=True, host="alpha")
        sim.schedule(3.5, lambda: fired.append("work"), host="bravo")
        sim.run()
        # stops at the last non-daemon event, not the endless heartbeat
        assert fired == ["beat", "beat", "beat", "work"]
        assert sim.now == 3.5

    def test_run_until_advances_clock_to_deadline(self, backend):
        sim = make_sim(backend)
        fired = []
        sim.schedule(1.0, lambda: fired.append(1), host="alpha")
        sim.schedule(9.0, lambda: fired.append(2), host="bravo")
        assert sim.run(until=5.0) == 5.0
        assert fired == [1] and sim.now == 5.0
        sim.run()
        assert fired == [1, 2]

    def test_stop_when_halts_after_current_event(self, backend):
        sim = make_sim(backend)
        fired = []
        for i in range(6):
            sim.schedule(float(i), lambda i=i: fired.append(i), host=HOSTS[i])
        sim.run(stop_when=lambda: len(fired) >= 3)
        assert fired == [0, 1, 2]
        assert sim.pending == 3

    def test_max_events_raises(self, backend):
        sim = make_sim(backend)

        def spin():
            sim.call_soon(spin, host="alpha")

        sim.call_soon(spin, host="alpha")
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_reentrant_run_rejected(self, backend):
        sim = make_sim(backend)
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as err:
                errors.append(str(err))

        sim.schedule(1.0, reenter, host="alpha")
        sim.run()
        assert errors and "re-entrant" in errors[0]


# --------------------------------------------------------- property tests

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["schedule", "schedule_at", "call_soon", "cancel", "cancel_twice"]),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.integers(min_value=0, max_value=500),
        st.sampled_from([None] + HOSTS),
    ),
    min_size=1,
    max_size=60,
)


class TestConformanceProperties:
    # the `backend` fixture is a plain string parameter, not mutable
    # state, so sharing it across generated examples is sound
    @settings(
        deadline=None,
        max_examples=60,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(ops=_OPS)
    def test_pop_order_and_pending_count(self, backend, ops):
        """Under arbitrary interleavings of the scheduling API — with events
        tagged onto arbitrary hosts — every backend must (a) report
        ``pending`` equal to the count of live unfired entries and (b) fire
        callbacks in exact (time, seq) order."""
        sim = make_sim(backend)
        timers = []
        fired: list[tuple[float, int]] = []

        def make_cb(entry):
            return lambda: fired.append((entry.time, entry.seq))

        for op, delay, index, host in ops:
            if op == "schedule":
                timer = sim.schedule(delay, lambda: None, host=host)
                timer._entry.callback = make_cb(timer._entry)
                timers.append(timer)
            elif op == "schedule_at":
                timer = sim.schedule_at(delay, lambda: None, host=host)
                timer._entry.callback = make_cb(timer._entry)
                timers.append(timer)
            elif op == "call_soon":
                timer = sim.call_soon(lambda: None, host=host)
                timer._entry.callback = make_cb(timer._entry)
                timers.append(timer)
            elif op == "cancel" and timers:
                timers[index % len(timers)].cancel()
            elif op == "cancel_twice" and timers:
                timer = timers[index % len(timers)]
                timer.cancel()
                timer.cancel()
            live = sum(
                1 for t in timers if not t._entry.cancelled and not t._entry.fired
            )
            assert sim.pending == live

        expected = sorted(
            (t._entry.time, t._entry.seq)
            for t in timers
            if not t._entry.cancelled
        )
        sim.run()
        assert fired == expected
        assert sim.pending == 0


# ---------------------------------------------- scheduler-level conformance
#
# The SimBackend contract above makes replay digests backend-invariant for
# raw event scheduling; the tests below assert the same contract one layer
# up, through the whole scheduler: hierarchical group leaders (leader_fanout)
# must not perturb the event schedule at fanout 1 (the degenerate flat case)
# and must replay byte-identically across serial and sharded backends at any
# fanout.


def _run_fan_apps(fanout: int, backend: str = "serial", shards: int = 4):
    """Boot a 9-workstation VCE and run three fan-of-instances apps to
    completion; returns the VCE (digest, log, daemons all inspectable)."""
    from repro.core import VCEConfig, VirtualComputingEnvironment, workstation_cluster
    from repro.machines import MachineClass
    from repro.scheduler.execution_program import RunState
    from repro.sdm import ProblemSpecification
    from repro.taskgraph import ProblemClass
    from repro.vmpi.api import Compute

    vce = VirtualComputingEnvironment(
        workstation_cluster(9),
        VCEConfig(
            seed=7,
            backend=backend,
            shards=shards,
            leader_fanout=fanout,
            settle_time=20.0,
        ),
    ).boot()
    runs = []
    for i, k in enumerate((6, 4, 8)):
        spec = ProblemSpecification(f"fan{i}")
        spec.task("work", work=10.0 + i, instances=k)
        graph = spec.build()
        node = graph.task("work")
        node.problem_class = ProblemClass.ASYNCHRONOUS
        node.language = "py"

        def program(ctx, _w=10.0 + i):
            yield Compute(_w)
            return _w

        node.program = program
        runs.append(
            vce.submit(
                graph,
                class_map={"work": MachineClass.WORKSTATION},
                ranges={"work": (k // 2, k)},
            )
        )
    for run in runs:
        vce.run_to_completion(run, timeout=500.0)
        assert run.state is RunState.DONE, run.error
    return vce


def _placements(vce) -> list[tuple]:
    """The run's placement decisions: every allocation's machine set, in
    event order."""
    return [
        (r.data.get("req_id"), tuple(r.data.get("machines", ())))
        for r in vce.sim.log.records(category="sched.alloc")
    ]


class TestHierarchyConformance:
    def test_fanout1_is_byte_identical_to_flat(self):
        """leader_fanout=1 must short-circuit to the paper's flat broadcast:
        identical replay digest, identical placements, zero delegations."""
        from repro.trace.replay import event_log_digest

        flat = _run_fan_apps(fanout=1)
        default = _run_fan_apps(fanout=1)
        assert event_log_digest(flat.sim.log) == event_log_digest(default.sim.log)
        assert _placements(flat) == _placements(default)
        assert not flat.sim.log.records(category="sched.delegate")
        assert sum(d.delegations_sent for d in flat.daemons.values()) == 0

    def test_fanout1_config_matches_daemon_default(self):
        """VCEConfig(leader_fanout=1) and an untouched DaemonConfig are the
        same degenerate hierarchy — digests must agree."""
        from repro.trace.replay import event_log_digest
        from tests.helpers_sched import make_full_vce

        explicit = make_full_vce(n_machines=4, fanout=1, settle=20.0)
        implicit = make_full_vce(n_machines=4, settle=20.0)
        explicit.sim.run(until=40.0)
        implicit.sim.run(until=40.0)
        assert event_log_digest(explicit.sim.log) == event_log_digest(
            implicit.sim.log
        )

    def test_hierarchical_digest_backend_invariant(self):
        """A fanout-3 run must replay byte-identically on the serial kernel
        and on the sharded backend at 1, 2, 4, and 8 shards."""
        from repro.trace.replay import event_log_digest

        serial = _run_fan_apps(fanout=3)
        serial_digest = event_log_digest(serial.sim.log)
        serial_placements = _placements(serial)
        # hierarchy actually engaged (delegations happened), so the
        # invariance below is about the interesting path
        assert serial.sim.log.records(category="sched.delegate")
        for shards in (1, 2, 4, 8):
            sharded = _run_fan_apps(fanout=3, backend="sharded", shards=shards)
            assert event_log_digest(sharded.sim.log) == serial_digest, shards
            assert _placements(sharded) == serial_placements, shards

    def test_flat_digest_backend_invariant(self):
        """The flat path stays backend-invariant too (regression guard for
        the consistent-hash ring refactor under the sharded router)."""
        from repro.trace.replay import event_log_digest

        serial = _run_fan_apps(fanout=1)
        sharded = _run_fan_apps(fanout=1, backend="sharded", shards=3)
        assert event_log_digest(sharded.sim.log) == event_log_digest(serial.sim.log)


# ------------------------------------------------ transport-parametric tier
#
# The behavior-level contract every backend must keep, including the
# real-process ``network`` backend (repro.netexec): identical task outcomes
# (DONE set + per-task results digest), a protocol-FSM-clean event log, and
# exactly-once completion under a daemon crash.  (time, seq) order is
# deliberately NOT asserted here — the network backend does not promise it.
#
# The network parameter is marked ``network`` (CI's netexec-smoke job runs
# `-m network`); it spawns real subprocesses, so timeouts are generous.

MACHINES = 3
NET_RATE = 20.0       # sim seconds per wall second for the network runs
NET_TIMEOUT = 90.0    # wall-seconds ceiling per network run

BEHAVIOR_BACKENDS = [
    "serial",
    "sharded",
    pytest.param("network", marks=pytest.mark.network),
]


@pytest.fixture(params=BEHAVIOR_BACKENDS)
def behavior_backend(request):
    return request.param


def _chain_spec(seed=11, min_work=2.0, max_work=5.0):
    """The shared workload: a 3-deep randomdag chain, one task per
    machine (the allocation model places one instance per machine)."""
    from repro.netexec.frames import WorkloadSpec

    return WorkloadSpec(
        "randomdag",
        (("layers", MACHINES), ("width", 1), ("seed", seed),
         ("min_work", min_work), ("max_work", max_work)),
    )


def _run_sim_behavior(backend, spec, seed, crash_first_host=False):
    """Run *spec* on a virtual-time backend; optionally crash the host of
    the first dispatched instance mid-task."""
    from repro.core import VCEConfig, VirtualComputingEnvironment, workstation_cluster
    from repro.faults.schedule import FaultSchedule
    from repro.migration.failover import FailoverConfig
    from repro.netexec.daemonhost import build_workload
    from repro.netexec.supervisor import sim_done_set, sim_results_digest
    from repro.scheduler.execution_program import RunState

    vce = VirtualComputingEnvironment(
        workstation_cluster(MACHINES),
        VCEConfig(seed=seed, backend=backend, shards=SHARDS,
                  reliable_transport=True, failover=FailoverConfig()),
    ).boot()
    run = vce.submit(build_workload(spec))
    if crash_first_host:
        # advance until the first instance is dispatched, then kill its
        # host while the task is still running
        for _ in range(100):
            if vce.sim.log.records(category="runtime.dispatch"):
                break
            vce.sim.run(until=vce.sim.now + 1.0)
        dispatches = vce.sim.log.records(category="runtime.dispatch")
        assert dispatches, "workload never dispatched"
        victim = dispatches[0].data["host"]
        vce.chaos(FaultSchedule("kill-one").crash(1.0, victim))
    vce.run_to_completion(run, timeout=2_000.0)
    assert run.state is RunState.DONE, run.error
    return {
        "done": sim_done_set(run),
        "digest": sim_results_digest(run),
        "records": vce.sim.log.records(),
        "redispatches": len(vce.sim.log.records(category="recovery.redispatch")),
    }


def _run_network_behavior(spec, seed, crash_first_host=False):
    """Run *spec* across real daemon processes; optionally SIGKILL the
    daemon hosting the first dispatched instance mid-task."""
    import asyncio

    from repro.core import VCEConfig, workstation_cluster
    from repro.netexec.supervisor import NetworkVCE

    vce = NetworkVCE(
        workstation_cluster(MACHINES),
        VCEConfig(seed=seed, backend="network"),
        rate=NET_RATE,
    )

    async def _run():
        await vce.aboot(spec)
        try:
            app = await vce.asubmit(spec)
            drive = asyncio.get_running_loop().create_task(
                vce.sim.drive(stop_when=app.finished.is_set)
            )
            if crash_first_host:
                for _ in range(500):
                    if vce.sim.log.records(category="runtime.dispatch"):
                        break
                    await asyncio.sleep(0.01)
                dispatches = vce.sim.log.records(category="runtime.dispatch")
                assert dispatches, "workload never dispatched"
                await asyncio.sleep(0.05)  # let the task actually start
                vce.kill_daemon(dispatches[0].data["host"])
            await asyncio.wait_for(app.finished.wait(), NET_TIMEOUT)
            drive.cancel()
            return app
        finally:
            await vce.ashutdown()

    app = asyncio.run(_run())
    assert not app.failed
    assert vce.orphan_pids() == []
    return {
        "done": app.done_set(),
        "digest": app.results_digest(),
        "records": vce.sim.log.records(),
        "redispatches": len(vce.sim.log.records(category="recovery.redispatch")),
    }


def _run_behavior(backend, spec, seed, crash_first_host=False):
    if backend == "network":
        return _run_network_behavior(spec, seed, crash_first_host)
    return _run_sim_behavior(backend, spec, seed, crash_first_host)


def _protocol_errors(records):
    from repro.analysis.protocol import check_records
    from repro.analysis.report import Severity

    return [
        f for f in check_records(records) if f.severity is Severity.ERROR
    ]


class TestBehaviorConformance:
    def test_network_backend_registered(self):
        assert "network" in BACKEND_NAMES
        assert "network" not in SIM_BACKEND_NAMES

    def test_task_outcomes_match_serial_reference(self, behavior_backend):
        """Same DONE set and per-task results digest as the serial kernel
        — the testable half of the cross-backend determinism contract."""
        spec = _chain_spec(seed=11)
        reference = _run_sim_behavior("serial", spec, seed=11)
        outcome = _run_behavior(behavior_backend, spec, seed=11)
        assert outcome["done"] == reference["done"]
        assert outcome["digest"] == reference["digest"]

    def test_bidding_protocol_conformance(self, behavior_backend):
        """analysis.protocol.check_records finds no FSM violation in the
        run's event stream, simulated or real-socket."""
        outcome = _run_behavior(behavior_backend, _chain_spec(seed=13), seed=13)
        errors = _protocol_errors(outcome["records"])
        assert errors == [], errors
        # non-vacuity: the bidding round actually happened
        assert any(r.category == "sched.alloc" for r in outcome["records"])

    def test_failover_exactly_once(self, behavior_backend):
        """Crashing the daemon hosting a running instance (simulated crash
        or real SIGKILL) re-dispatches its tasks exactly once each: the
        full DONE set is reached, the results digest is unchanged, and the
        protocol checker sees a clean strand→redispatch handshake."""
        spec = _chain_spec(seed=17, min_work=8.0, max_work=10.0)
        reference = _run_sim_behavior("serial", spec, seed=17)
        outcome = _run_behavior(behavior_backend, spec, seed=17, crash_first_host=True)
        assert outcome["redispatches"] >= 1  # the crash actually bit
        assert outcome["done"] == reference["done"]
        assert outcome["digest"] == reference["digest"]
        assert _protocol_errors(outcome["records"]) == []
