"""Tests for load-balancing policies, the balancer, and fault injection."""


from repro.faults import FaultInjector, leadership_transfer_times, views_converged
from repro.loadbalance import (
    LoadBalancer,
    MigrateOnLoadPolicy,
    NoActionPolicy,
    SuspendResumePolicy,
)
from repro.machines import ConstantLoad, TraceLoad
from repro.migration import MigrationContext, MigrationSelector
from repro.runtime import AppStatus, InstanceState
from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass
from repro.vmpi import Checkpoint, Compute

from tests.conftest import make_cluster, place_all_on


def steppy_program(steps=20, step_work=1.0):
    def program(ctx):
        step = ctx.restored_state or 0
        while step < steps:
            yield Compute(step_work)
            step += 1
            yield Checkpoint(step, size=500)
        return step

    return program


def busy_window_loads(n, busy_host=0, start=3.0, stop=10.0):
    """Host `busy_host` becomes busy in [start, stop); others stay idle."""
    loads = []
    for i in range(n):
        if i == busy_host:
            loads.append(TraceLoad([(start, 0.95), (stop, 0.0)]))
        else:
            loads.append(ConstantLoad(0.0))
    return loads


def one_task(name="app", steps=20):
    graph = ProblemSpecification(name).task("t", work=steps).build()
    node = graph.task("t")
    node.problem_class = ProblemClass.ASYNCHRONOUS
    node.language = "py"
    node.program = steppy_program(steps)
    return graph


class TestSuspendResumePolicy:
    def test_suspends_during_local_burst_and_resumes(self):
        cluster = make_cluster(2, loads=busy_window_loads(2))
        graph = one_task()
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        balancer = LoadBalancer(
            cluster.manager, cluster.db, SuspendResumePolicy(), interval=0.5
        )
        balancer.start()
        cluster.run(until=8.0)
        inst = app.record("t", 0).instance
        assert inst.state is InstanceState.SUSPENDED
        cluster.run(until=40.0)
        assert app.status is AppStatus.DONE
        # 20 units of work + ~7s suspended window
        assert app.makespan > 25.0
        assert cluster.sim.log.records(category="lb.suspend")
        assert cluster.sim.log.records(category="lb.resume")

    def test_noaction_lets_task_crawl(self):
        cluster = make_cluster(2, loads=busy_window_loads(2))
        graph = one_task()
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        balancer = LoadBalancer(
            cluster.manager, cluster.db, NoActionPolicy(), interval=0.5
        )
        balancer.start()
        cluster.run(until=60.0)
        assert app.status is AppStatus.DONE
        # work continues at 5% speed during the burst: slower than idle
        assert app.makespan > 20.0


class TestMigrateOnLoadPolicy:
    def test_migrates_to_idle_machine(self):
        cluster = make_cluster(3, loads=busy_window_loads(3, stop=100.0))
        graph = one_task()
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        selector = MigrationSelector(MigrationContext(cluster.manager, cluster.net))
        balancer = LoadBalancer(
            cluster.manager, cluster.db, MigrateOnLoadPolicy(selector), interval=0.5
        )
        balancer.start()
        cluster.run(until=80.0)
        assert app.status is AppStatus.DONE
        record = app.record("t", 0)
        assert record.host_name in ("ws1", "ws2")
        migrations = cluster.sim.log.records(category="lb.migrate")
        assert migrations and migrations[0].get("scheme") in ("dump", "checkpoint")
        # busy window never ends on ws0, yet the app finished promptly
        assert app.makespan < 30.0

    def test_migration_beats_suspension_on_makespan(self):
        def run(policy_factory):
            cluster = make_cluster(3, loads=busy_window_loads(3, stop=100.0))
            graph = one_task()
            app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
            balancer = LoadBalancer(
                cluster.manager, cluster.db, policy_factory(cluster), interval=0.5
            )
            balancer.start()
            cluster.run(until=400.0)
            return app

        migrate_app = run(
            lambda c: MigrateOnLoadPolicy(
                MigrationSelector(MigrationContext(c.manager, c.net))
            )
        )
        suspend_app = run(lambda c: SuspendResumePolicy())
        assert migrate_app.status is AppStatus.DONE
        assert suspend_app.status is AppStatus.DONE
        # suspension stalls until the ~97s-long local burst ends; migration
        # moves the work away and finishes several times sooner
        assert migrate_app.makespan < 60.0
        assert suspend_app.makespan > 2 * migrate_app.makespan

    def test_no_target_emits_event(self):
        # all machines busy: nowhere to go
        cluster = make_cluster(1, loads=[TraceLoad([(3.0, 0.95)])])
        graph = one_task()
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        selector = MigrationSelector(MigrationContext(cluster.manager, cluster.net))
        balancer = LoadBalancer(
            cluster.manager, cluster.db, MigrateOnLoadPolicy(selector), interval=0.5
        )
        balancer.start()
        cluster.run(until=10.0)
        assert cluster.sim.log.records(category="lb.no_target")


class TestBalancerMechanics:
    def test_least_loaded_machine_excludes_and_skips_down(self):
        cluster = make_cluster(
            3, loads=[ConstantLoad(0.5), ConstantLoad(0.1), ConstantLoad(0.0)]
        )
        balancer = LoadBalancer(cluster.manager, cluster.db, NoActionPolicy())
        assert balancer.least_loaded_machine() == "ws2"
        assert balancer.least_loaded_machine(exclude={"ws2"}) == "ws1"
        cluster.hosts["ws2"].crash()
        assert balancer.least_loaded_machine() == "ws1"

    def test_transitions_counted_once_per_edge(self):
        cluster = make_cluster(1, loads=[TraceLoad([(2.0, 0.9), (5.0, 0.0)])])
        graph = one_task(steps=30)
        cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        balancer = LoadBalancer(
            cluster.manager, cluster.db, SuspendResumePolicy(), interval=0.5
        )
        balancer.start()
        cluster.run(until=10.0)
        assert balancer.transitions == 2  # busy once, idle once

    def test_stop_halts_polling(self):
        cluster = make_cluster(1)
        balancer = LoadBalancer(cluster.manager, cluster.db, NoActionPolicy(), interval=0.5)
        balancer.start()
        cluster.run(until=2.0)
        balancer.stop()
        pending_before = cluster.sim.pending
        cluster.run(until=10.0)
        assert cluster.sim.pending <= pending_before


class TestFaultInjector:
    def test_crash_and_recover(self):
        cluster = make_cluster(2)
        injector = FaultInjector(cluster.sim, cluster.net)
        injector.crash_at("ws0", 2.0)
        injector.recover_at("ws0", 5.0)
        cluster.run(until=3.0)
        assert not cluster.hosts["ws0"].up
        cluster.run(until=6.0)
        assert cluster.hosts["ws0"].up
        assert injector.crashes == 1

    def test_crash_leader_resolved_at_fire_time(self):
        from repro.machines import MachineClass
        from tests.helpers_sched import make_vce, workstation_farm

        vce = make_vce(workstation_farm(3))
        injector = FaultInjector(vce.sim, vce.net)
        leader_host = vce.directory.leader(MachineClass.WORKSTATION).host
        injector.crash_leader_at(vce.directory, MachineClass.WORKSTATION, vce.sim.now + 1.0)
        vce.run(until=vce.sim.now + 30.0)
        assert not vce.net.host(leader_host).up
        # a new leader emerged
        assert vce.directory.leader(MachineClass.WORKSTATION).host != leader_host
        times = leadership_transfer_times(vce.sim.log, "vce.WORKSTATION")
        assert times and all(t < 20.0 for t in times)
        live = [d for d in vce.daemons.values() if d.alive]
        assert views_converged(live)

    def test_churn_is_deterministic(self):
        def crash_times(seed):
            cluster = make_cluster(4, seed=seed)
            injector = FaultInjector(cluster.sim, cluster.net)
            injector.churn([f"ws{i}" for i in range(4)], mean_up=10, mean_down=5, until=100)
            cluster.run(until=100.0)
            return [r.time for r in cluster.sim.log.records(category="fault.crash")]

        assert crash_times(3) == crash_times(3)
        assert crash_times(3) != crash_times(4)

    def test_churn_spares_hosts(self):
        cluster = make_cluster(3)
        injector = FaultInjector(cluster.sim, cluster.net)
        injector.churn(
            ["ws0", "ws1", "ws2"], mean_up=5, mean_down=5, until=200, spare={"ws2"}
        )
        cluster.run(until=200.0)
        crashed = {r.source for r in cluster.sim.log.records(category="fault.crash")}
        assert "ws2" not in crashed
        assert crashed  # others did crash
