"""Direct tests for repro.metrics.report and repro.metrics.timeline.

The workload suite exercises these through full runs; here the inputs are
synthetic, so formatting rules and span extraction are pinned exactly.
"""

from repro.metrics import (
    build_timeline,
    format_series,
    format_table,
    host_busy_fraction,
    render_gantt,
)
from repro.metrics.report import _fmt
from repro.metrics.timeline import Span
from repro.util.eventlog import EventLog


class TestFmt:
    def test_float_precision_tiers(self):
        assert _fmt(0.0) == "0"
        assert _fmt(0.12345) == "0.1235"  # < 1: four decimals
        assert _fmt(2.345) == "2.35"  # < 100: two decimals
        assert _fmt(1234.5) == "1234"  # >= 100: integer-ish

    def test_non_floats_pass_through(self):
        assert _fmt(7) == "7"
        assert _fmt("ws0") == "ws0"


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(
            ["host", "load"], [["ws0", 0.5], ["longhostname", 1.25]], title="cluster"
        )
        lines = table.splitlines()
        assert lines[0] == "cluster"
        assert lines[1].startswith("host")
        # all rows padded to the same width
        assert len({len(line) for line in lines[1:]}) == 1
        assert "longhostname" in lines[4]

    def test_column_width_from_widest_cell(self):
        table = format_table(["x"], [["wide-value"]])
        header, rule, row = table.splitlines()
        assert rule == "-" * len("wide-value")

    def test_empty_rows_keeps_header(self):
        table = format_table(["a", "bb"], [])
        header, rule = table.splitlines()
        assert header.split() == ["a", "bb"]
        assert rule == "-  --"


class TestFormatSeries:
    def test_pairs(self):
        assert (
            format_series("speedup", [1, 2], [1.0, 1.9])
            == "speedup: (1, 1.00)  (2, 1.90)"
        )

    def test_empty(self):
        assert format_series("s", [], []) == "s: "


def _task_log() -> EventLog:
    log = EventLog()
    log.emit(1.0, "task.start", "ws0/i0", app="a", task="t", rank=0, host="ws0")
    log.emit(5.0, "task.done", "ws0/i0", app="a", task="t", rank=0, host="ws0")
    log.emit(2.0, "task.start", "ws1/i1", app="a", task="t", rank=1, host="ws1")
    return log


class TestBuildTimeline:
    def test_closed_task_span(self):
        spans = build_timeline(_task_log(), horizon=10.0)
        done = [s for s in spans if s.host == "ws0"]
        assert done == [Span("ws0", "a.t[0]", 1.0, 5.0, "task")]

    def test_open_task_span_extends_to_horizon(self):
        spans = build_timeline(_task_log(), horizon=10.0)
        open_span = [s for s in spans if s.host == "ws1"][0]
        assert (open_span.start, open_span.end) == (2.0, 10.0)

    def test_default_horizon_is_last_emitted_record(self):
        # the log above ends with ws1's task.start at t=2.0, so the open
        # span is clipped there when no horizon is given
        spans = build_timeline(_task_log())
        assert [s for s in spans if s.host == "ws1"][0].end == 2.0

    def test_down_and_suspend_spans(self):
        log = EventLog()
        log.emit(1.0, "host.crash", "ws0")
        log.emit(4.0, "host.recover", "ws0")
        log.emit(2.0, "task.suspend", "ws1/i0", app="a", task="t", rank=0)
        log.emit(3.0, "task.resume", "ws1/i0", app="a", task="t", rank=0)
        log.emit(6.0, "host.crash", "ws2")  # never recovers
        spans = build_timeline(log, horizon=8.0)
        kinds = {(s.host, s.kind): s for s in spans}
        assert kinds[("ws0", "down")].end == 4.0
        assert kinds[("ws1", "suspended")].start == 2.0
        assert kinds[("ws2", "down")].end == 8.0  # open until horizon

    def test_sorted_by_host_then_start(self):
        spans = build_timeline(_task_log(), horizon=10.0)
        assert spans == sorted(spans, key=lambda s: (s.host, s.start))

    def test_empty_log(self):
        assert build_timeline(EventLog()) == []


class TestRenderGantt:
    def test_chars_per_kind(self):
        spans = [
            Span("ws0", "a.t[0]", 0.0, 5.0, "task"),
            Span("ws0", "a.t[0]", 5.0, 7.0, "suspended"),
            Span("ws1", "DOWN", 2.0, 10.0, "down"),
        ]
        chart = render_gantt(spans, horizon=10.0, width=10)
        lines = chart.splitlines()
        assert lines[0].startswith("0") and lines[0].endswith("10s")
        ws0 = next(line for line in lines if "ws0" in line)
        ws1 = next(line for line in lines if "ws1" in line)
        assert ws0.split("|")[1] == "#####ss..."
        assert ws1.split("|")[1] == "..xxxxxxxx"

    def test_down_overrides_task(self):
        spans = [
            Span("ws0", "a.t[0]", 0.0, 10.0, "task"),
            Span("ws0", "DOWN", 0.0, 10.0, "down"),
        ]
        chart = render_gantt(spans, horizon=10.0, width=10)
        assert "x" in chart and "#" not in chart

    def test_explicit_host_order(self):
        spans = [Span("b", "x", 0.0, 1.0, "task")]
        chart = render_gantt(spans, horizon=1.0, width=8, hosts=["a", "b"])
        lines = chart.splitlines()
        assert "a" in lines[1] and "b" in lines[2]

    def test_empty_horizon(self):
        assert render_gantt([], horizon=0.0) == "(empty timeline)"


class TestHostBusyFraction:
    def test_only_task_spans_count(self):
        spans = [
            Span("ws0", "a.t[0]", 0.0, 5.0, "task"),
            Span("ws0", "DOWN", 5.0, 10.0, "down"),
            Span("ws1", "a.t[1]", 0.0, 10.0, "task"),
        ]
        fractions = host_busy_fraction(spans, horizon=10.0)
        assert fractions == {"ws0": 0.5, "ws1": 1.0}

    def test_clamped_to_one(self):
        spans = [
            Span("ws0", "a.t[0]", 0.0, 10.0, "task"),
            Span("ws0", "a.t[1]", 0.0, 10.0, "task"),
        ]
        assert host_busy_fraction(spans, horizon=10.0) == {"ws0": 1.0}

    def test_zero_horizon(self):
        assert host_busy_fraction([], horizon=0.0) == {}
