"""Tests for the discrete-event kernel, hosts, network, and processes."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim import Address, Host, LatencyModel, Network, SimProcess, Simulator
from repro.util.errors import SimulationError


class TestSimulator:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.schedule(0.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.5, 1.0]
        assert sim.now == 1.0

    def test_fifo_order_at_same_timestamp(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == list(range(10))

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: sim.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until_advances_clock(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=3.0)
        assert sim.now == 3.0
        assert sim.pending == 1
        sim.run()
        assert sim.now == 10.0

    def test_run_until_with_empty_queue(self):
        sim = Simulator()
        sim.run(until=2.5)
        assert sim.now == 2.5

    def test_cancel_timer(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule(1.0, lambda: fired.append(1))
        timer.cancel()
        sim.run()
        assert fired == []
        assert timer.cancelled

    def test_stop_when(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(stop_when=lambda: len(fired) >= 2)
        assert fired == [0, 1]

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.call_soon(loop)

        sim.call_soon(loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [2.0]

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=40))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
        assert len(times) == len(delays)


class _Echo(SimProcess):
    """Replies to every message with the same payload."""

    def __init__(self, name):
        super().__init__(name)
        self.got = []

    def on_message(self, src, payload):
        self.got.append(payload)
        self.send(src, ("echo", payload))


class _Caller(SimProcess):
    def __init__(self, name, target: Address):
        super().__init__(name)
        self.target = target
        self.replies = []

    def on_start(self):
        self.send(self.target, "hello", size=100)

    def on_message(self, src, payload):
        self.replies.append((self.now, payload))


class TestNetwork:
    def _pair(self, seed=0, latency=None):
        sim = Simulator(seed)
        net = Network(sim, latency)
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        return sim, net, h1, h2

    def test_message_roundtrip(self):
        sim, net, h1, h2 = self._pair()
        echo = _Echo("echo")
        h2.spawn(echo)
        caller = _Caller("caller", Address("h2", "echo"))
        h1.spawn(caller)
        sim.run()
        assert echo.got == ["hello"]
        assert caller.replies and caller.replies[0][1] == ("echo", "hello")

    def test_latency_model_applied(self):
        model = LatencyModel(base_latency=0.01, bandwidth=1000, jitter=0.0)
        sim, net, h1, h2 = self._pair(latency=model)
        echo = _Echo("echo")
        h2.spawn(echo)
        caller = _Caller("caller", Address("h2", "echo"))
        h1.spawn(caller)
        sim.run()
        # request: 0.01 + 100/1000 = 0.11 ; reply: 0.01 + 256/1000 = 0.266
        assert caller.replies[0][0] == pytest.approx(0.11 + 0.266, rel=1e-6)

    def test_local_delivery_cheap(self):
        sim, net, h1, h2 = self._pair()
        echo = _Echo("echo")
        h1.spawn(echo)
        caller = _Caller("caller", Address("h1", "echo"))
        h1.spawn(caller)
        sim.run()
        assert caller.replies[0][0] <= 2 * net.latency.local_latency + 1e-12

    def test_send_to_unknown_host_raises(self):
        sim, net, h1, h2 = self._pair()
        p = _Echo("p")
        h1.spawn(p)
        sim.run()
        with pytest.raises(SimulationError):
            net.send(p.address, Address("nope", "x"), "payload")

    def test_crashed_host_drops_messages(self):
        sim, net, h1, h2 = self._pair()
        echo = _Echo("echo")
        h2.spawn(echo)
        caller = _Caller("caller", Address("h2", "echo"))
        h2.crash()
        h1.spawn(caller)
        sim.run()
        assert echo.got == []
        assert caller.replies == []

    def test_partition_blocks_and_heal_restores(self):
        sim, net, h1, h2 = self._pair()
        echo = _Echo("echo")
        h2.spawn(echo)
        net.partition({"h1"}, {"h2"})
        caller = _Caller("caller", Address("h2", "echo"))
        h1.spawn(caller)
        sim.run()
        assert echo.got == []
        net.heal()
        h1.process("caller").send(Address("h2", "echo"), "again")
        sim.run()
        assert echo.got == ["again"]

    def test_drop_rate_one_drops_everything(self):
        sim, net, h1, h2 = self._pair()
        net.set_drop_rate(1.0)
        echo = _Echo("echo")
        h2.spawn(echo)
        caller = _Caller("caller", Address("h2", "echo"))
        h1.spawn(caller)
        sim.run()
        assert echo.got == []

    def test_drop_rate_validation(self):
        sim, net, *_ = self._pair()
        with pytest.raises(SimulationError):
            net.set_drop_rate(1.5)

    def test_counters(self):
        sim, net, h1, h2 = self._pair()
        echo = _Echo("echo")
        h2.spawn(echo)
        caller = _Caller("caller", Address("h2", "echo"))
        h1.spawn(caller)
        sim.run()
        assert net.messages_sent == 2
        assert net.messages_delivered == 2
        assert net.bytes_sent == 100 + 256

    def test_determinism_same_seed(self):
        def run(seed):
            sim = Simulator(seed)
            net = Network(sim)
            a, b = net.add_host("a"), net.add_host("b")
            echo = _Echo("echo")
            b.spawn(echo)
            caller = _Caller("caller", Address("b", "echo"))
            a.spawn(caller)
            sim.run()
            return caller.replies

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestHost:
    def test_duplicate_process_rejected(self):
        sim = Simulator()
        net = Network(sim)
        h = net.add_host("h")
        h.spawn(_Echo("p"))
        with pytest.raises(SimulationError):
            h.spawn(_Echo("p"))

    def test_duplicate_host_rejected(self):
        sim = Simulator()
        net = Network(sim)
        net.add_host("h")
        with pytest.raises(SimulationError):
            net.add_host("h")

    def test_bad_speed_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Host(sim, "h", speed=0)

    def test_crash_stops_processes_and_cancels_timers(self):
        sim = Simulator()
        net = Network(sim)
        h = net.add_host("h")

        class Ticker(SimProcess):
            def __init__(self):
                super().__init__("ticker")
                self.ticks = 0
                self.crashed = False

            def on_start(self):
                self.set_timer(1.0, "tick")

            def on_timer(self, key):
                self.ticks += 1
                self.set_timer(1.0, "tick")

            def on_crash(self):
                self.crashed = True

        t = Ticker()
        h.spawn(t)
        sim.schedule(2.5, h.crash)
        sim.run(until=10.0)
        assert t.ticks == 2
        assert t.crashed
        assert not t.alive

    def test_recover_bumps_incarnation(self):
        sim = Simulator()
        net = Network(sim)
        h = net.add_host("h")
        h.crash()
        h.recover()
        assert h.up and h.incarnation == 1

    def test_kill_invokes_on_stop(self):
        sim = Simulator()
        net = Network(sim)
        h = net.add_host("h")

        class P(SimProcess):
            stopped = False

            def on_stop(self):
                self.stopped = True

        p = P("p")
        h.spawn(p)
        sim.run()
        h.kill("p")
        assert p.stopped and not p.alive

    def test_timer_rearm_replaces(self):
        sim = Simulator()
        net = Network(sim)
        h = net.add_host("h")

        class P(SimProcess):
            def __init__(self):
                super().__init__("p")
                self.fired = []

            def on_start(self):
                self.set_timer(5.0, "t")
                self.set_timer(1.0, "t")  # re-arm replaces

            def on_timer(self, key):
                self.fired.append(self.now)

        p = P()
        h.spawn(p)
        sim.run()
        assert p.fired == [1.0]

    def test_emit_goes_to_sim_log(self):
        sim = Simulator()
        net = Network(sim)
        h = net.add_host("h")

        class P(SimProcess):
            def on_start(self):
                self.emit("custom.event", value=42)

        h.spawn(P("p"))
        sim.run()
        rec = sim.log.first("custom.event")
        assert rec is not None and rec.get("value") == 42


class TestDaemonEvents:
    def test_run_stops_when_only_daemon_events_remain(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            sim.schedule(1.0, tick, daemon=True)

        sim.schedule(1.0, tick, daemon=True)
        sim.schedule(3.5, lambda: None)  # one real event
        sim.run()
        # the loop processed daemon ticks only while real work remained
        assert sim.now == pytest.approx(3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_daemon_events_still_run_under_deadline(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            sim.schedule(1.0, tick, daemon=True)

        sim.schedule(1.0, tick, daemon=True)
        sim.run(until=4.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0]

    def test_cancel_accounting(self):
        sim = Simulator()
        timer = sim.schedule(5.0, lambda: None)
        timer.cancel()
        timer.cancel()  # double-cancel must not corrupt the counter
        assert sim._live_nondaemon == 0
        sim.schedule(1.0, lambda: None, daemon=True)
        sim.run()  # returns immediately: only a daemon event remains
        assert sim.now == 0.0

    def test_cancel_after_terminal_drain_is_noop(self):
        """Cancelling timers once run() has fully drained the heap must not
        corrupt the tombstone or live-event counters for later runs."""
        sim = Simulator()
        timers = [sim.schedule(float(i), lambda: None) for i in range(5)]
        daemon = sim.schedule(100.0, lambda: None, daemon=True)
        sim.run()
        assert sim.pending == 1  # the daemon survivor
        for timer in timers:
            timer.cancel()  # fired: inert
        assert sim.pending == 1
        daemon.cancel()  # live, still in the heap: a real cancel
        assert sim.pending == 0
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1]

    def test_cancel_of_entry_outside_heap_cannot_underflow_counters(self):
        """White-box pin of the terminal-cancel guard: an unfired entry that
        is no longer in any heap must cancel as a pure flag flip. Without
        the guard ``pending`` would underflow to -1 and the live-event
        count would go negative, wedging later runs."""
        sim = Simulator()
        timer = sim.schedule(5.0, lambda: None)
        sim._heap.clear()  # simulate a terminal state with the entry gone
        sim._live_nondaemon = 0
        timer.cancel()
        assert timer.cancelled is True
        assert sim.pending == 0  # not -1
        assert sim._cancelled_in_heap == 0
        assert sim._live_nondaemon == 0
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1]

    def test_daemon_spawning_real_work_keeps_running(self):
        sim = Simulator()
        done = []

        def daemon_tick():
            if sim.now >= 2.0 and not done:
                sim.schedule(1.0, lambda: done.append(sim.now))  # real event
            sim.schedule(1.0, daemon_tick, daemon=True)

        sim.schedule(1.0, daemon_tick, daemon=True)
        sim.schedule(2.5, lambda: None)  # keeps the loop alive until 2.5
        sim.run()
        assert done == [3.0]


class TestEgressSerialization:
    def _burst(self, serialize):
        model = LatencyModel(base_latency=0.01, bandwidth=1000, jitter=0.0)
        sim = Simulator()
        net = Network(sim, model, egress_serialization=serialize)
        src = net.add_host("src")
        arrivals = []

        class Sink(SimProcess):
            def on_message(self, s, payload):
                arrivals.append(self.now)

        for i in range(4):
            host = net.add_host(f"d{i}")
            host.spawn(Sink("sink"))
        sim.run()
        sender = SimProcess("tx")
        src.spawn(sender)
        sim.run()
        for i in range(4):
            sender.send(Address(f"d{i}", "sink"), "x", size=100)  # 0.1s tx each
        sim.run()
        return sorted(arrivals)

    def test_without_serialization_concurrent(self):
        arrivals = self._burst(serialize=False)
        # all four messages travel independently: identical arrival times
        assert arrivals[-1] - arrivals[0] < 1e-9

    def test_with_serialization_queued(self):
        arrivals = self._burst(serialize=True)
        # one NIC: transmissions are spaced by 100/1000 = 0.1s each
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        for gap in gaps:
            assert gap == pytest.approx(0.1, rel=1e-6)

    def test_serialization_idle_nic_no_penalty(self):
        model = LatencyModel(base_latency=0.01, bandwidth=1000, jitter=0.0)
        for serialize in (False, True):
            sim = Simulator()
            net = Network(sim, model, egress_serialization=serialize)
            src, dst = net.add_host("s"), net.add_host("d")
            got = []

            class Sink(SimProcess):
                def on_message(self, s, payload):
                    got.append(self.now)

            dst.spawn(Sink("sink"))
            p = SimProcess("tx")
            src.spawn(p)
            sim.run()
            p.send(Address("d", "sink"), "x", size=100)
            sim.run()
            assert got[0] == pytest.approx(0.11, rel=1e-6)
