"""Tests for the compilation manager and anticipatory processing."""

import pytest

from repro.compilation import (
    AnticipatoryEngine,
    Binary,
    CompilationManager,
    Compiler,
    CompilerRegistry,
    candidate_classes,
    default_registry,
)
from repro.machines import Machine, MachineClass, MachineDatabase, ConstantLoad
from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass
from repro.util.errors import CompilationError

from tests.conftest import make_cluster, place_all_on


def coded_graph(language="hpf", problem_class=ProblemClass.ASYNCHRONOUS, name="app"):
    graph = ProblemSpecification(name).task("t", work=5).build()
    node = graph.task("t")
    node.problem_class = problem_class
    node.language = language
    node.program = lambda ctx: iter(())
    return graph


def db_with(*specs):
    db = MachineDatabase()
    for name, arch in specs:
        db.register(Machine(name, arch, memory_mb=1024))
    return db


class TestClassMap:
    def test_sync_prefers_simd(self):
        assert candidate_classes(ProblemClass.SYNCHRONOUS)[0] is MachineClass.SIMD

    def test_async_prefers_workstation(self):
        assert candidate_classes(ProblemClass.ASYNCHRONOUS)[0] is MachineClass.WORKSTATION

    def test_loose_prefers_mimd(self):
        assert candidate_classes(ProblemClass.LOOSELY_SYNCHRONOUS)[0] is MachineClass.MIMD


class TestCompilerRegistry:
    def test_register_and_lookup(self):
        reg = CompilerRegistry()
        c = Compiler("c", MachineClass.WORKSTATION)
        reg.register(c)
        assert reg.lookup("c", MachineClass.WORKSTATION) is c
        assert reg.lookup("c", MachineClass.SIMD) is None

    def test_duplicate_rejected(self):
        reg = CompilerRegistry()
        reg.register(Compiler("c", MachineClass.WORKSTATION))
        with pytest.raises(CompilationError):
            reg.register(Compiler("c", MachineClass.WORKSTATION))

    def test_targets_for(self):
        reg = default_registry()
        assert reg.targets_for("hpf") == set(MachineClass)
        assert MachineClass.SIMD not in reg.targets_for("c")

    def test_compile_time_model(self):
        c = Compiler("c", MachineClass.MIMD, base_seconds=10, seconds_per_source_unit=0.01)
        assert c.compile_time(1000) == pytest.approx(20.0)

    def test_compile_produces_binary(self):
        c = Compiler("c", MachineClass.MIMD)
        b = c.compile("t", 100, now=3.0)
        assert isinstance(b, Binary)
        assert b.machine_class is MachineClass.MIMD and b.compiled_at == 3.0


class TestCompilationManager:
    def test_feasible_classes_intersects_three_constraints(self):
        db = db_with(("ws", MachineClass.WORKSTATION), ("cm5", MachineClass.SIMD))
        mgr = CompilationManager(db)
        graph = coded_graph(language="c", problem_class=ProblemClass.ASYNCHRONOUS)
        # ASYNC prefers [WORKSTATION, MIMD]; db has WORKSTATION+SIMD; C
        # compiles on WORKSTATION+MIMD => only WORKSTATION survives.
        assert mgr.feasible_classes(graph.task("t")) == (MachineClass.WORKSTATION,)

    def test_feasible_classes_requires_design_and_coding(self):
        db = db_with(("ws", MachineClass.WORKSTATION))
        mgr = CompilationManager(db)
        graph = ProblemSpecification("a").task("t").build()
        with pytest.raises(CompilationError, match="design"):
            mgr.feasible_classes(graph.task("t"))
        graph.task("t").problem_class = ProblemClass.ASYNCHRONOUS
        with pytest.raises(CompilationError, match="language"):
            mgr.feasible_classes(graph.task("t"))

    def test_plan_prepares_all_feasible_classes(self):
        db = db_with(
            ("ws", MachineClass.WORKSTATION),
            ("cube", MachineClass.MIMD),
            ("cm5", MachineClass.SIMD),
        )
        mgr = CompilationManager(db)
        graph = coded_graph(language="hpf", problem_class=ProblemClass.LOOSELY_SYNCHRONOUS)
        plan = mgr.plan(graph)
        # LOOSESYNC prefers (MIMD, WORKSTATION, SIMD); all present, HPF everywhere
        assert plan.candidates["t"] == (
            MachineClass.MIMD,
            MachineClass.WORKSTATION,
            MachineClass.SIMD,
        )
        assert {j.target for j in plan.jobs} == {
            MachineClass.MIMD,
            MachineClass.WORKSTATION,
            MachineClass.SIMD,
        }
        assert plan.total_compile_time > 0

    def test_plan_fails_with_no_feasible_class(self):
        db = db_with(("cm5", MachineClass.SIMD))
        mgr = CompilationManager(db)
        graph = coded_graph(language="c", problem_class=ProblemClass.ASYNCHRONOUS)
        with pytest.raises(CompilationError, match="no feasible machine class"):
            mgr.plan(graph)

    def test_plan_skips_cached_binaries(self):
        db = db_with(("ws", MachineClass.WORKSTATION))
        mgr = CompilationManager(db)
        graph = coded_graph(language="c")
        plan1 = mgr.plan(graph)
        mgr.compile_all(plan1)
        plan2 = mgr.plan(graph)
        assert plan2.jobs == []

    def test_load_delay_prepared_vs_on_demand(self):
        db = db_with(("ws", MachineClass.WORKSTATION))
        mgr = CompilationManager(db)
        graph = coded_graph(language="c")
        machine = db.get("ws")
        node = graph.task("t")
        on_demand = mgr.load_delay(node, machine, now=0.0)
        assert on_demand > 1.0  # compiled on demand
        assert mgr.on_demand_compiles == 1
        # a second request while the compile is in flight waits out the
        # remaining compile time instead of free-riding
        in_flight = mgr.load_delay(node, machine, now=1.0)
        assert in_flight == pytest.approx(on_demand - 1.0)
        assert mgr.on_demand_compiles == 1  # no duplicate compile
        # once the binary is ready, only the load cost remains
        ready = mgr.load_delay(node, machine, now=on_demand + 1.0)
        assert ready == CompilationManager.LOAD_SECONDS

    def test_load_delay_impossible_raises(self):
        db = db_with(("cm5", MachineClass.SIMD))
        mgr = CompilationManager(db)
        graph = coded_graph(language="c")
        with pytest.raises(CompilationError, match="no compiler"):
            mgr.load_delay(graph.task("t"), db.get("cm5"), now=0.0)

    def test_cache_classes_for(self):
        db = db_with(("ws", MachineClass.WORKSTATION), ("cube", MachineClass.MIMD))
        mgr = CompilationManager(db)
        graph = coded_graph(language="c")
        mgr.compile_all(mgr.plan(graph))
        assert mgr.cache.classes_for("t") == {MachineClass.WORKSTATION, MachineClass.MIMD}


class TestAnticipatoryEngine:
    def _rig(self, loads=None):
        cluster = make_cluster(3, loads=loads)
        comp = CompilationManager(cluster.db)
        engine = AnticipatoryEngine(cluster.sim, cluster.net, cluster.db, comp)
        return cluster, comp, engine

    def test_compile_ahead_fills_cache(self):
        cluster, comp, engine = self._rig()
        graph = coded_graph(language="py")
        done = []
        engine.compile_ahead(comp.plan(graph), on_all_done=lambda: done.append(cluster.sim.now))
        cluster.run(until=100.0)
        assert done, "anticipatory compilation never finished"
        assert comp.cache.has("t", MachineClass.WORKSTATION)
        assert engine.compiles_completed >= 1

    def test_compile_ahead_uses_idle_machines_only(self):
        # all machines busy: jobs wait until... never (loads constant 0.9)
        cluster, comp, engine = self._rig(loads=[ConstantLoad(0.9)] * 3)
        graph = coded_graph(language="py")
        done = []
        engine.compile_ahead(comp.plan(graph), on_all_done=lambda: done.append(1))
        cluster.run(until=30.0)
        assert not done
        assert not comp.cache.has("t", MachineClass.WORKSTATION)

    def test_replicate_files(self):
        cluster, comp, engine = self._rig()
        done = []
        n = engine.replicate_files(
            {"obs.dat": 1_250_000}, ["ws0", "ws1"], on_done=lambda: done.append(cluster.sim.now)
        )
        assert n == 2
        cluster.run(until=60.0)
        assert done and done[0] >= 1.0  # 1 MB+ at 1.25MB/s
        assert "obs.dat" in cluster.db.get("ws0").files
        assert "obs.dat" in cluster.db.get("ws1").files

    def test_replicate_skips_existing(self):
        cluster, comp, engine = self._rig()
        cluster.db.get("ws0").files.add("obs.dat")
        n = engine.replicate_files({"obs.dat": 100}, ["ws0"])
        assert n == 0

    def test_prepare_application_end_to_end(self):
        cluster, comp, engine = self._rig()
        graph = coded_graph(language="py")
        graph.task("t").input_files.append("in.dat")
        ready = []
        engine.prepare_application(
            graph, replicate_to=["ws0", "ws1"], on_ready=lambda: ready.append(cluster.sim.now)
        )
        cluster.run(until=100.0)
        assert ready
        assert comp.cache.has("t", MachineClass.WORKSTATION)
        assert "in.dat" in cluster.db.get("ws1").files


class TestRuntimeIntegrationWithBinaries:
    def test_anticipatory_compilation_removes_startup_cost(self):
        """The E8 effect in miniature: prepared binaries start ~immediately;
        on-demand compilation delays the start by the compile time."""
        from repro.vmpi import Compute

        def program(ctx):
            yield Compute(1.0)

        def run(prepare: bool) -> float:
            cluster = make_cluster(1)
            comp = CompilationManager(cluster.db)
            cluster.manager.binary_service = comp
            graph = coded_graph(language="c")
            graph.task("t").program = program
            if prepare:
                comp.compile_all(comp.plan(graph))
            app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
            cluster.run()
            return app.makespan

        prepared = run(True)
        on_demand = run(False)
        assert prepared == pytest.approx(1.0 + CompilationManager.LOAD_SECONDS, abs=0.05)
        assert on_demand > prepared + 5.0


class TestProxyGeneration:
    def test_compilation_manager_generates_proxies(self):
        from repro.objects import parse_idl

        db = db_with(("ws", MachineClass.WORKSTATION))
        mgr = CompilationManager(db)
        iface = parse_idl("interface Svc { f(x: int) -> int; }")["Svc"]
        source = mgr.generate_proxy(iface, "objects", "server[0]")
        assert "class SvcStub" in source
        assert mgr.proxies_generated == 1
        namespace = {}
        exec(compile(source, "<proxy>", "exec"), namespace)
        assert hasattr(namespace["SvcStub"], "f")


class TestAnticipatoryBacklog:
    def test_jobs_wait_for_capacity_then_run(self):
        """All machines busy at first; anticipatory jobs queue and start
        once owners leave."""
        from repro.machines import TraceLoad

        cluster = make_cluster(2, loads=[
            TraceLoad([(30.0, 0.0)], initial=0.9),
            TraceLoad([(30.0, 0.0)], initial=0.9),
        ])
        comp = CompilationManager(cluster.db)
        engine = AnticipatoryEngine(cluster.sim, cluster.net, cluster.db, comp)
        graph = coded_graph(language="py")
        done = []
        engine.compile_ahead(comp.plan(graph), on_all_done=lambda: done.append(cluster.sim.now))
        cluster.run(until=20.0)
        assert not done  # still waiting for an idle machine
        cluster.run(until=120.0)
        assert done and done[0] > 30.0
        assert comp.cache.has("t", MachineClass.WORKSTATION)
