"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.machines import ConstantLoad, Machine, MachineClass, MachineDatabase
from repro.netsim import Network, Simulator
from repro.runtime import Placement, RuntimeManager


class Cluster:
    """A small simulated cluster bundle used across tests."""

    def __init__(self, sim, net, db, manager, hosts):
        self.sim = sim
        self.net = net
        self.db = db
        self.manager = manager
        self.hosts = hosts

    def run(self, until=None, **kw):
        return self.sim.run(until=until, **kw)


def make_cluster(
    n_workstations=4,
    seed=0,
    speeds=None,
    loads=None,
    extra_machines=(),
    binary_service=None,
):
    """Build a simulator + network + machines + runtime manager.

    Args:
        speeds: optional list of per-workstation speeds.
        loads: optional list of per-workstation background LoadModels.
        extra_machines: iterable of (name, MachineClass, speed) tuples for
            non-workstation machines.
    """
    sim = Simulator(seed)
    net = Network(sim)
    db = MachineDatabase()
    hosts = {}
    for i in range(n_workstations):
        name = f"ws{i}"
        speed = speeds[i] if speeds else 1.0
        host = net.add_host(name, speed=speed)
        machine = Machine(
            name,
            MachineClass.WORKSTATION,
            speed=speed,
            memory_mb=256,
            background_load=(loads[i] if loads else ConstantLoad(0.0)),
        )
        host.machine = machine
        db.register(machine)
        hosts[name] = host
    for name, arch, speed in extra_machines:
        host = net.add_host(name, speed=speed)
        machine = Machine(name, arch, speed=speed, memory_mb=4096)
        host.machine = machine
        db.register(machine)
        hosts[name] = host
    manager = RuntimeManager(sim, net, binary_service=binary_service)
    return Cluster(sim, net, db, manager, hosts)


def place_all_on(graph, host_name):
    """Placement putting every instance on one host."""
    p = Placement()
    for node in graph:
        for rank in range(node.instances):
            p.assign(node.name, rank, host_name)
    return p


def round_robin_placement(graph, host_names):
    p = Placement()
    i = 0
    for node in graph:
        for rank in range(node.instances):
            p.assign(node.name, rank, host_names[i % len(host_names)])
            i += 1
    return p


@pytest.fixture
def cluster():
    return make_cluster()
