"""Shared fixtures and helpers for the test suite.

Cluster *wiring* (hosts + machine database) is shared with
``tests/helpers_sched.py`` — ``make_cluster`` builds a runtime-only
bundle (no scheduler daemons) for placement/runtime tests, while
``helpers_sched.make_vce`` adds the daemon layer and
``helpers_sched.make_full_vce`` boots the full environment facade.
"""

from __future__ import annotations

import pytest

from repro.machines import Machine, MachineDatabase
from repro.netsim import Network, Simulator
from repro.runtime import Placement, RuntimeManager

from tests.helpers_sched import make_full_vce, wire_machines, workstation_farm


class Cluster:
    """A small simulated cluster bundle used across tests."""

    def __init__(self, sim, net, db, manager, hosts):
        self.sim = sim
        self.net = net
        self.db = db
        self.manager = manager
        self.hosts = hosts

    def run(self, until=None, **kw):
        return self.sim.run(until=until, **kw)


def make_cluster(
    n_workstations=4,
    seed=0,
    speeds=None,
    loads=None,
    extra_machines=(),
    binary_service=None,
):
    """Build a simulator + network + machines + runtime manager.

    Args:
        speeds: optional list of per-workstation speeds.
        loads: optional list of per-workstation background LoadModels.
        extra_machines: iterable of (name, MachineClass, speed) tuples for
            non-workstation machines.
    """
    sim = Simulator(seed)
    net = Network(sim)
    db = MachineDatabase()
    machines = workstation_farm(n_workstations, loads=loads, speeds=speeds)
    machines += [
        Machine(name, arch, speed=speed, memory_mb=4096)
        for name, arch, speed in extra_machines
    ]
    hosts = wire_machines(net, db, machines)
    manager = RuntimeManager(sim, net, binary_service=binary_service)
    return Cluster(sim, net, db, manager, hosts)


def place_all_on(graph, host_name):
    """Placement putting every instance on one host."""
    p = Placement()
    for node in graph:
        for rank in range(node.instances):
            p.assign(node.name, rank, host_name)
    return p


def round_robin_placement(graph, host_names):
    p = Placement()
    i = 0
    for node in graph:
        for rank in range(node.instances):
            p.assign(node.name, rank, host_names[i % len(host_names)])
            i += 1
    return p


@pytest.fixture
def cluster():
    return make_cluster()


@pytest.fixture
def tenant_population():
    """A small deterministic tenant mix (heavy/steady/batch archetypes)
    sized for unit tests: tight quotas so admission control is exercised."""
    from repro.workloads import build_population

    return build_population(
        6, seed=0, mean_quota=120, instances=(4, 8), work=(8.0, 16.0)
    )


@pytest.fixture
def hier_vce():
    """A booted full VCE with hierarchical bidding (9 workstations,
    fanout 3) — the shared cluster for hierarchy tests."""
    return make_full_vce(n_machines=9, fanout=3, settle=20.0)
