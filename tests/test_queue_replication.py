"""Queued requests survive group-leader crashes (replicated AgingQueue)."""


from repro.machines import MachineClass
from repro.scheduler import DaemonConfig
from repro.scheduler.execution_program import ExecutionProgram, RunState

from tests.helpers_sched import make_vce, workstation_farm
from tests.test_scheduler import annotated_graph, launch


def saturated_vce(n=3, seed=17):
    """A VCE whose single-machine-per-job capacity keeps requests queued."""
    return make_vce(
        workstation_farm(n),
        seed=seed,
        daemon_config=DaemonConfig(per_instance_load=0.9, retry_interval=1.0),
    )


class TestQueueReplication:
    def test_queue_mirrored_to_all_members(self):
        vce = saturated_vce()
        # occupy all machines
        blockers = []
        for i in range(3):
            g = annotated_graph(name=f"blk{i}", tasks=(("t", 1, 60.0),))
            blockers.append(launch(vce, g))
            vce.run(until=vce.sim.now + 3.0)
        run, _ = launch(
            vce, annotated_graph(name="queued", tasks=(("t", 1, 2.0),)),
            queue_if_insufficient=True,
        )
        vce.run(until=vce.sim.now + 10.0)
        # every daemon (not only the leader) holds the queued request
        holders = [d for d in vce.daemons.values() if len(d.pending_queue) == 1]
        assert len(holders) == len(vce.daemons)

    def test_queued_request_served_after_leader_crash(self):
        """The crux: the execution program's request is parked in the
        leader's queue when the leader dies; the successor leader serves it
        from its replica without the client retransmitting."""
        vce = saturated_vce()
        blockers = []
        for i in range(3):
            g = annotated_graph(name=f"blk{i}", tasks=(("t", 1, 40.0),))
            blockers.append(launch(vce, g))
            vce.run(until=vce.sim.now + 3.0)
        run, _ = launch(
            vce, annotated_graph(name="queued", tasks=(("t", 1, 2.0),)),
            queue_if_insufficient=True,
        )
        vce.run(until=vce.sim.now + 5.0)
        assert run.state is RunState.ALLOCATING  # parked in the queue

        # silence the client's own retransmission so the replica alone
        # must carry the request through the takeover
        original_retries = ExecutionProgram.MAX_REQUEST_RETRIES
        ExecutionProgram.MAX_REQUEST_RETRIES = 0
        try:
            leader = vce.leader_of(MachineClass.WORKSTATION)
            vce.net.host(leader.machine.name).crash()
            vce.run(until=vce.sim.now + 200.0)
        finally:
            ExecutionProgram.MAX_REQUEST_RETRIES = original_retries
        assert run.state is RunState.DONE, run.error

    def test_queue_entry_removed_everywhere_after_service(self):
        vce = saturated_vce()
        g = annotated_graph(name="blk", tasks=(("t", 1, 15.0),))
        launch(vce, g)
        vce.run(until=vce.sim.now + 3.0)
        run, _ = launch(
            vce, annotated_graph(name="queued", tasks=(("t", 1, 2.0),)),
            queue_if_insufficient=True,
        )
        vce.run(until=vce.sim.now + 120.0)
        assert run.state is RunState.DONE
        for daemon in vce.daemons.values():
            if daemon.alive:
                assert len(daemon.pending_queue) == 0

    def test_aging_preserved_across_takeover(self):
        """The replicated entry carries its original enqueue time, so its
        age (and thus effective priority) survives the leader change."""
        vce = saturated_vce()
        for i in range(3):
            g = annotated_graph(name=f"blk{i}", tasks=(("t", 1, 300.0),))
            launch(vce, g)
            vce.run(until=vce.sim.now + 3.0)
        run, _ = launch(
            vce, annotated_graph(name="queued", tasks=(("t", 1, 2.0),)),
            queue_if_insufficient=True,
        )
        vce.run(until=vce.sim.now + 5.0)
        leader = vce.leader_of(MachineClass.WORKSTATION)
        enqueue_times = {
            d.machine.name: d.pending_queue._items[0].enqueued_at
            for d in vce.daemons.values()
            if d.pending_queue
        }
        assert len(set(enqueue_times.values())) == 1  # identical replicas
        t0 = next(iter(enqueue_times.values()))
        vce.net.host(leader.machine.name).crash()
        vce.run(until=vce.sim.now + 40.0)
        survivors = [
            d for d in vce.daemons.values()
            if d.alive and d.pending_queue
        ]
        assert survivors
        for daemon in survivors:
            assert daemon.pending_queue._items[0].enqueued_at == t0


class TestRuntimePriorityChange:
    """§4.3: "Authorized users will be able to modify the priorities of
    particular applications" — applied to queued requests at runtime."""

    def test_reprioritized_request_overtakes_queue(self):
        from repro.netsim import SimProcess
        from repro.scheduler import SetPriority

        vce = saturated_vce()
        # saturate all machines
        for i in range(3):
            g = annotated_graph(name=f"blk{i}", tasks=(("t", 1, 30.0),))
            launch(vce, g)
            vce.run(until=vce.sim.now + 3.0)
        # two queued apps: "first" then "second" (equal priority, FIFO-aged)
        r1, _ = launch(
            vce, annotated_graph(name="first", tasks=(("t", 1, 2.0),)),
            queue_if_insufficient=True,
        )
        vce.run(until=vce.sim.now + 2.0)
        r2, _ = launch(
            vce, annotated_graph(name="second", tasks=(("t", 1, 2.0),)),
            queue_if_insufficient=True,
        )
        vce.run(until=vce.sim.now + 2.0)
        leader = vce.leader_of(MachineClass.WORKSTATION)
        assert len(leader.pending_queue) == 2
        # the user escalates the *second* (younger) app's queued request
        items = sorted(leader.pending_queue._items, key=lambda q: q.enqueued_at)
        second_req = items[-1].request.req_id

        class User(SimProcess):
            def on_start(self):
                self.send(leader.address, SetPriority(second_req, 100.0), size=64)

        vce.user_host.spawn(User("authorized-user"))
        vce.run(until=vce.sim.now + 300.0)
        assert r1.state is RunState.DONE and r2.state is RunState.DONE
        # the escalated request was served first
        assert r2.completed_at < r1.completed_at
        assert vce.sim.log.records(category="sched.reprioritized")

    def test_reprioritize_replicated_to_members(self):
        from repro.netsim import SimProcess
        from repro.scheduler import SetPriority

        vce = saturated_vce()
        for i in range(3):
            g = annotated_graph(name=f"blk{i}", tasks=(("t", 1, 200.0),))
            launch(vce, g)
            vce.run(until=vce.sim.now + 3.0)
        run, _ = launch(
            vce, annotated_graph(name="q", tasks=(("t", 1, 2.0),)),
            queue_if_insufficient=True,
        )
        vce.run(until=vce.sim.now + 3.0)
        leader = vce.leader_of(MachineClass.WORKSTATION)
        req_id = leader.pending_queue._items[0].request.req_id

        class User(SimProcess):
            def on_start(self):
                self.send(leader.address, SetPriority(req_id, 42.0), size=64)

        vce.user_host.spawn(User("authorized-user"))
        vce.run(until=vce.sim.now + 5.0)
        for daemon in vce.daemons.values():
            if daemon.alive and daemon.pending_queue:
                assert daemon.pending_queue._items[0].request.priority == 42.0
