"""Tests for the IDL parser, marshalling model, and proxies (Figure 2)."""

import pytest

from repro.objects import (
    ClientStub,
    RemoteError,
    conversion_seconds,
    generate_stub_source,
    parse_idl,
    serve,
    wire_size,
)
from repro.runtime import AppStatus, Placement
from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass
from repro.util.errors import CommunicationError

from tests.conftest import make_cluster

PREDICTOR_IDL = """
// weather predictor service
interface Predictor {
    predict(region: string, hours: int) -> string;
    accuracy() -> float;
    reset();
}
"""


class TestIDL:
    def test_parse_interface(self):
        ifaces = parse_idl(PREDICTOR_IDL)
        assert set(ifaces) == {"Predictor"}
        predictor = ifaces["Predictor"]
        assert set(predictor.methods) == {"predict", "accuracy", "reset"}
        predict = predictor.method("predict")
        assert predict.arity == 2
        assert predict.params[0].type == "string"
        assert predict.returns == "string"
        assert predictor.method("reset").returns == "void"

    def test_multiple_interfaces(self):
        ifaces = parse_idl("interface A { f(); } interface B { g() -> int; }")
        assert set(ifaces) == {"A", "B"}

    def test_duplicate_interface_rejected(self):
        with pytest.raises(CommunicationError, match="duplicate interface"):
            parse_idl("interface A { } interface A { }")

    def test_duplicate_method_rejected(self):
        with pytest.raises(CommunicationError, match="duplicate method"):
            parse_idl("interface A { f(); f(); }")

    def test_unknown_type_rejected(self):
        with pytest.raises(CommunicationError, match="unknown type"):
            parse_idl("interface A { f(x: quaternion); }")

    def test_check_call_arity(self):
        iface = parse_idl(PREDICTOR_IDL)["Predictor"]
        iface.check_call("predict", ("syracuse", 24))
        with pytest.raises(CommunicationError, match="takes 2 arguments"):
            iface.check_call("predict", ("syracuse",))
        with pytest.raises(CommunicationError, match="no method"):
            iface.check_call("ghost", ())

    def test_tokenizer_error(self):
        with pytest.raises(CommunicationError, match="tokenize"):
            parse_idl("interface A { f(); } $$$")


class TestMarshal:
    def test_primitive_sizes(self):
        assert wire_size(None) == 4
        assert wire_size(True) == 4
        assert wire_size(7) == 8
        assert wire_size(3.14) == 8

    def test_string_padded_to_units(self):
        assert wire_size("") == 4
        assert wire_size("a") == 8  # 4 header + 4 padded
        assert wire_size("abcde") == 12

    def test_containers_recursive(self):
        assert wire_size([1, 2]) == 4 + 16
        assert wire_size({"k": 1}) == 4 + wire_size("k") + 8

    def test_conversion_seconds_linear(self):
        assert conversion_seconds(1000, 1e-6) == pytest.approx(1e-3)


class PredictorImpl:
    """Test servant."""

    def __init__(self):
        self.resets = 0

    def predict(self, region, hours):
        return f"{region}: snow for {hours}h"

    def accuracy(self):
        return 0.75

    def reset(self):
        self.resets += 1

    def boom(self):
        raise ValueError("kaput")


def rpc_app(client_program, server_program):
    """Two-task app joined by a STREAM channel named 'objects'."""
    spec = ProblemSpecification("rpc").task("client").task("server")
    spec.stream("client", "server", channel="objects")
    graph = spec.build()
    for name, program in (("client", client_program), ("server", server_program)):
        node = graph.task(name)
        node.problem_class = ProblemClass.ASYNCHRONOUS
        node.language = "py"
        node.program = program
    return graph


class TestProxies:
    def _run(self, client_program, server_program, n_hosts=2):
        cluster = make_cluster(n_hosts)
        graph = rpc_app(client_program, server_program)
        placement = Placement()
        placement.assign("client", 0, "ws0")
        placement.assign("server", 0, f"ws{n_hosts - 1}")
        app = cluster.manager.submit(graph, placement)
        cluster.run()
        return cluster, app

    def test_remote_method_invocation(self):
        iface = parse_idl(PREDICTOR_IDL)["Predictor"]

        def client(ctx):
            stub = ClientStub(iface, "objects", "server[0]")
            forecast = yield from stub.invoke(ctx, "predict", "syracuse", 24)
            acc = yield from stub.invoke(ctx, "accuracy")
            yield from stub.shutdown(ctx)
            return (forecast, acc)

        def server(ctx):
            served = yield from serve(ctx, PredictorImpl(), iface, "objects")
            return served

        cluster, app = self._run(client, server)
        assert app.status is AppStatus.DONE
        assert app.results("client") == [("syracuse: snow for 24h", 0.75)]
        assert app.results("server") == [2]

    def test_servant_exception_crosses_wire(self):
        iface = parse_idl("interface X { boom(); }")["X"]

        def client(ctx):
            stub = ClientStub(iface, "objects", "server[0]")
            try:
                yield from stub.invoke(ctx, "boom")
            except RemoteError as err:
                yield from stub.shutdown(ctx)
                return f"caught: {err}"
            return "no error?"

        def server(ctx):
            yield from serve(ctx, PredictorImpl(), iface, "objects")

        cluster, app = self._run(client, server)
        assert app.status is AppStatus.DONE
        assert "caught" in app.results("client")[0]
        assert "kaput" in app.results("client")[0]

    def test_bad_arity_rejected_client_side(self):
        iface = parse_idl(PREDICTOR_IDL)["Predictor"]

        def client(ctx):
            stub = ClientStub(iface, "objects", "server[0]")
            yield from stub.invoke(ctx, "predict", "only-one-arg")

        def server(ctx):
            yield from serve(ctx, PredictorImpl(), iface, "objects", max_requests=1)

        cluster, app = self._run(client, server)
        # the client program raised before anything hit the wire
        assert app.status is AppStatus.FAILED

    def test_max_requests_bounds_server(self):
        iface = parse_idl(PREDICTOR_IDL)["Predictor"]

        def client(ctx):
            stub = ClientStub(iface, "objects", "server[0]")
            yield from stub.invoke(ctx, "reset")
            yield from stub.invoke(ctx, "reset")
            return "ok"

        def server(ctx):
            servant = PredictorImpl()
            served = yield from serve(ctx, servant, iface, "objects", max_requests=2)
            return (served, servant.resets)

        cluster, app = self._run(client, server)
        assert app.status is AppStatus.DONE
        assert app.results("server") == [(2, 2)]

    def test_rpc_through_conversion_interposer(self):
        """Cross-architecture invocation: a data-conversion interposer on
        the channel adds marshalling latency but preserves semantics."""
        from repro.channels import DataConversionInterposer

        iface = parse_idl(PREDICTOR_IDL)["Predictor"]

        def client(ctx):
            stub = ClientStub(iface, "objects", "server[0]")
            result = yield from stub.invoke(ctx, "predict", "rome", 8)
            yield from stub.shutdown(ctx)
            return result

        def server(ctx):
            yield from serve(ctx, PredictorImpl(), iface, "objects")

        cluster = make_cluster(3)
        graph = rpc_app(client, server)
        placement = Placement()
        placement.assign("client", 0, "ws0")
        placement.assign("server", 0, "ws1")
        app = cluster.manager.submit(graph, placement)
        conv = DataConversionInterposer("xdr", seconds_per_byte=1e-6)
        cluster.hosts["ws2"].spawn(conv)
        cluster.manager.channels.get("objects").split(conv)
        cluster.run()
        assert app.status is AppStatus.DONE
        assert app.results("client") == ["rome: snow for 8h"]
        assert conv.processed >= 2  # request + reply + shutdown pass through


class TestStubGeneration:
    def test_generated_source_compiles_and_lists_methods(self):
        iface = parse_idl(PREDICTOR_IDL)["Predictor"]
        source = generate_stub_source(iface, "objects", "server[0]")
        namespace = {}
        exec(compile(source, "<generated>", "exec"), namespace)
        stub_cls = namespace["PredictorStub"]
        for method in ("predict", "accuracy", "reset"):
            assert hasattr(stub_cls, method)
        assert "region: string" in source
