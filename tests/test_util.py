"""Tests for repro.util: ids, rng streams, event log, errors."""

import pytest
from hypothesis import given, strategies as st

from repro.util import (
    AllocationError,
    EventLog,
    IdGenerator,
    RngStreams,
    ScriptError,
    VCEError,
)


class TestIdGenerator:
    def test_sequential_per_prefix(self):
        gen = IdGenerator()
        assert gen.next("task") == "task-0"
        assert gen.next("task") == "task-1"
        assert gen.next("chan") == "chan-0"

    def test_next_int(self):
        gen = IdGenerator()
        assert gen.next_int("x") == 0
        assert gen.next_int("x") == 1

    def test_reset(self):
        gen = IdGenerator()
        gen.next("a")
        gen.reset()
        assert gen.next("a") == "a-0"

    def test_independent_generators(self):
        a, b = IdGenerator(), IdGenerator()
        a.next("t")
        assert b.next("t") == "t-0"


class TestRngStreams:
    def test_same_name_same_stream(self):
        streams = RngStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_reproducible_across_instances(self):
        a = RngStreams(7).stream("net").random()
        b = RngStreams(7).stream("net").random()
        assert a == b

    def test_different_names_independent(self):
        streams = RngStreams(7)
        xs = [streams.stream("a").random() for _ in range(5)]
        ys = [streams.stream("b").random() for _ in range(5)]
        assert xs != ys

    def test_different_seeds_differ(self):
        assert RngStreams(1).stream("s").random() != RngStreams(2).stream("s").random()

    def test_spawn_independent_of_parent(self):
        parent = RngStreams(3)
        child = parent.spawn("sub")
        assert parent.stream("s").random() != child.stream("s").random()

    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    def test_derived_seed_stable(self, seed, name):
        assert RngStreams(seed)._derive_seed(name) == RngStreams(seed)._derive_seed(name)


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit(0.0, "sched.bid", "d1", load=0.5)
        log.emit(1.0, "sched.alloc", "leader", n=3)
        log.emit(2.0, "task.done", "t1")
        assert len(log) == 3
        assert log.count("sched.bid") == 1
        assert [r.category for r in log.records(category="sched.")] == [
            "sched.bid",
            "sched.alloc",
        ]

    def test_time_window(self):
        log = EventLog()
        for t in range(5):
            log.emit(float(t), "tick", "clock")
        assert len(log.records(since=1.0, until=3.0)) == 3

    def test_source_filter_and_predicate(self):
        log = EventLog()
        log.emit(0.0, "x", "a", v=1)
        log.emit(0.0, "x", "b", v=2)
        assert len(log.records(source="a")) == 1
        assert len(log.records(predicate=lambda r: r.get("v", 0) > 1)) == 1

    def test_first_last(self):
        log = EventLog()
        assert log.first("x") is None
        log.emit(0.0, "x", "s", i=0)
        log.emit(1.0, "x", "s", i=1)
        assert log.first("x").get("i") == 0
        assert log.last("x").get("i") == 1

    def test_counters_only_mode_round_trip(self):
        log = EventLog()
        log.set_bounded(0)
        log.emit(0.0, "x", "s")
        assert len(log) == 0
        log.set_unbounded()
        log.emit(0.0, "x", "s")
        assert len(log) == 1

    def test_deprecated_disable_is_gone(self):
        assert not hasattr(EventLog, "disable")
        assert not hasattr(EventLog, "enable")

    def test_counters_only_log_keeps_exact_counts(self):
        log = EventLog()
        log.emit(0.0, "x", "s", i=0)
        log.set_bounded(0)
        log.emit(1.0, "x", "s", i=1)
        log.emit(2.0, "y", "s")
        assert len(log) == 0  # no records retained...
        assert log.count("x") == 2  # ...but counters stay exact
        assert log.first("x").get("i") == 0
        assert log.last("x").get("i") == 1
        assert log.category_counts() == {"x": 2, "y": 1}

    def test_observers_see_records_in_every_mode(self):
        log = EventLog()
        seen: list[tuple[float, str]] = []
        observer = lambda r: seen.append((r.time, r.category))  # noqa: E731
        log.add_observer(observer)
        log.add_observer(observer)  # idempotent
        log.emit(0.0, "x", "s")
        log.set_bounded(0)  # counters-only: still observed
        log.emit(1.0, "y", "s")
        log.suppress("z")
        log.emit(2.0, "z", "s")  # suppressed: never observed
        assert seen == [(0.0, "x"), (1.0, "y")]
        log.remove_observer(observer)
        log.remove_observer(observer)  # no-op second time
        log.emit(3.0, "y", "s")
        assert len(seen) == 2

    def test_clear(self):
        log = EventLog()
        log.emit(0.0, "x", "s")
        log.clear()
        assert len(log) == 0
        assert log.count("x") == 0
        assert log.first("x") is None

    def test_bounded_ring_keeps_last_n(self):
        log = EventLog()
        for i in range(3):
            log.emit(float(i), "x", "s", i=i)
        log.set_bounded(4)  # existing records seed the ring
        for i in range(3, 8):
            log.emit(float(i), "x", "s", i=i)
        assert log.bounded and log.capacity == 4
        assert [r.get("i") for r in log] == [4, 5, 6, 7]
        assert log.count("x") == 8  # exact despite eviction
        assert log.first("x").get("i") == 0
        assert log.last("x").get("i") == 7

    def test_bounded_category_query_sees_ring_only(self):
        log = EventLog(capacity=2)
        log.emit(0.0, "a.x", "s")
        log.emit(1.0, "a.y", "s")
        log.emit(2.0, "b.z", "s")
        assert [r.category for r in log.records(category="a.")] == ["a.y"]
        assert log.count("a.") == 2  # counters still see everything

    def test_set_unbounded_rebuilds_index(self):
        log = EventLog(capacity=10)
        log.emit(0.0, "a", "s")
        log.emit(1.0, "b", "s")
        log.set_unbounded()
        log.emit(2.0, "a", "s")
        assert not log.bounded and log.capacity is None
        assert [r.time for r in log.records(category="a")] == [0.0, 2.0]

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventLog().set_bounded(-1)

    def test_prefix_index_interleaved_order(self):
        # prefix queries merge per-category position lists back into
        # emission order
        log = EventLog()
        for i, cat in enumerate(["s.a", "s.b", "t.c", "s.a", "s.b"]):
            log.emit(float(i), cat, "src", i=i)
        got = [r.get("i") for r in log.records(category="s.")]
        assert got == [0, 1, 3, 4]
        assert log.count("s.") == 4
        assert log.first("s.").get("i") == 0
        assert log.last("s.").get("i") == 4

    def test_index_matches_full_scan(self):
        log = EventLog()
        for i in range(200):
            log.emit(float(i), f"cat{i % 7}", "s", i=i)
        for cat in ("cat0", "cat3"):
            indexed = log.records(category=cat)
            scanned = [r for r in log if r.category == cat]
            assert indexed == scanned
            assert log.count(cat) == len(scanned)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(AllocationError, VCEError)
        assert issubclass(ScriptError, VCEError)

    def test_allocation_error_fields(self):
        err = AllocationError("too few", requested=5, available=2)
        assert err.requested == 5 and err.available == 2

    def test_script_error_location(self):
        err = ScriptError("bad token", line=3, column=7)
        assert "line 3" in str(err) and err.line == 3

    def test_script_error_no_location(self):
        assert str(ScriptError("oops")) == "oops"
