"""Tests for the causal tracing subsystem (repro.trace)."""

import io
import json

import pytest

from repro.cli import main
from repro.core import VCEConfig, VirtualComputingEnvironment, workstation_cluster
from repro.metrics import MetricsCollector
from repro.migration import DumpMigration, MigrationContext
from repro.runtime import AppStatus
from repro.scheduler.execution_program import RunState
from repro.trace import (
    TraceAssembler,
    TraceContext,
    assert_deterministic,
    chrome_trace,
    critical_path,
    event_log_digest,
    export_chrome_trace,
    trace_fields,
)
from repro.util.eventlog import EventLog
from repro.workloads import WEATHER_SCRIPT, build_pipeline_graph, weather_programs

from tests.conftest import make_cluster, place_all_on
from tests.test_migration import one_task_graph, plain_program


# ----------------------------------------------------------------- context


class TestTraceContext:
    def test_child_keeps_trace_and_links_parent(self):
        root = TraceContext("t-1", "s-1")
        child = root.child("s-2")
        assert child.trace_id == "t-1"
        assert child.span_id == "s-2"
        assert child.parent_span_id == "s-1"

    def test_fields_omit_missing_parent(self):
        assert TraceContext("t", "s").fields() == {"trace_id": "t", "span_id": "s"}
        assert TraceContext("t", "s", "p").fields() == {
            "trace_id": "t",
            "span_id": "s",
            "parent_span_id": "p",
        }

    def test_trace_fields_of_none_is_empty(self):
        assert trace_fields(None) == {}

    def test_frozen(self):
        with pytest.raises(AttributeError):
            TraceContext("t", "s").span_id = "other"


# ----------------------------------------------------------- shared fixtures


def _pipeline_vce(seed=0):
    vce = VirtualComputingEnvironment(
        workstation_cluster(6), VCEConfig(seed=seed)
    ).boot()
    run = vce.submit(build_pipeline_graph(stages=3))
    vce.run_to_completion(run)
    assert run.state is RunState.DONE
    return vce, run


@pytest.fixture(scope="module")
def pipeline():
    return _pipeline_vce()


@pytest.fixture(scope="module")
def pipeline_traces(pipeline):
    vce, _run = pipeline
    return TraceAssembler(vce.sim.log).assemble()


# ---------------------------------------------------------------- assembler


class TestAssembler:
    def test_one_trace_one_root(self, pipeline_traces):
        assert len(pipeline_traces) == 1
        trace = pipeline_traces[0]
        assert len(trace.roots) == 1
        assert trace.root.category == "exec"

    def test_span_tree_reaches_every_span(self, pipeline_traces):
        trace = pipeline_traces[0]
        reachable = {s.span_id for root in trace.roots for s in root.tree()}
        assert reachable == set(trace.spans)

    def test_app_span_under_exec_root(self, pipeline_traces):
        trace = pipeline_traces[0]
        app = trace.app_span()
        assert app is not None
        assert app.parent_span_id == trace.root.span_id
        assert app.attrs["outcome"] == "app.done"

    def test_task_spans_carry_dispatch_attrs(self, pipeline_traces):
        tasks = pipeline_traces[0].by_category("task")
        assert len(tasks) == 3  # three pipeline stages
        for span in tasks:
            assert span.end is not None and span.end > span.start
            assert "host" in span.attrs
            assert "started" in span.attrs  # task.start annotation
            assert span.attrs["outcome"] == "task.done"

    def test_after_edges_reference_real_spans(self, pipeline_traces):
        trace = pipeline_traces[0]
        for span in trace.by_category("task"):
            for predecessor in span.attrs.get("after", ()):
                assert predecessor in trace.spans

    def test_orphan_closer_becomes_zero_length_span(self):
        log = EventLog()
        log.emit(3.0, "task.done", "t[0]", trace_id="tr", span_id="sp")
        traces = TraceAssembler(log).assemble()
        assert len(traces) == 1
        span = traces[0].spans["sp"]
        assert span.start == span.end == 3.0

    def test_untagged_records_ignored(self):
        log = EventLog()
        log.emit(1.0, "task.start", "t[0]", host="ws0")
        assert TraceAssembler(log).assemble() == []

    def test_suspend_windows_attached(self):
        log = EventLog()
        tag = {"trace_id": "tr", "span_id": "sp"}
        log.emit(0.0, "runtime.dispatch", "t[0]", task="t", rank=0, **tag)
        log.emit(2.0, "task.suspend", "t[0]", **tag)
        log.emit(5.0, "task.resume", "t[0]", **tag)
        log.emit(9.0, "task.done", "t[0]", **tag)
        span = TraceAssembler(log).assemble()[0].spans["sp"]
        assert span.attrs["suspends"] == [(2.0, 5.0)]


# ------------------------------------------------------------ critical path


class TestCriticalPath:
    def test_segments_tile_the_makespan(self, pipeline_traces):
        path = critical_path(pipeline_traces[0])
        assert path is not None
        assert path.total == pytest.approx(path.makespan, rel=1e-9)
        cursor = path.start
        for seg in path.segments:
            assert seg.start == pytest.approx(cursor)
            assert seg.end >= seg.start
            cursor = seg.end
        assert cursor == pytest.approx(path.end)

    def test_total_matches_metrics_collector(self, pipeline, pipeline_traces):
        vce, _run = pipeline
        path = critical_path(pipeline_traces[0])
        makespans = MetricsCollector(vce.sim.log).app_makespans()
        assert path.total == pytest.approx(makespans[path.app], rel=1e-9)

    def test_pipeline_walks_every_stage(self, pipeline_traces):
        path = critical_path(pipeline_traces[0])
        stages = {seg.span.split("[")[0] for seg in path.segments if seg.kind == "compute"}
        assert stages == {"s0", "s1", "s2"}  # a pipeline's chain is every stage

    def test_compute_dominates_pipeline(self, pipeline_traces):
        by_kind = critical_path(pipeline_traces[0]).by_kind()
        assert by_kind["compute"] == max(by_kind.values())

    def test_allocation_phase_reported_separately(self, pipeline_traces):
        path = critical_path(pipeline_traces[0])
        assert path.allocation, "bidding happened before app.submit"
        assert all(seg.end <= path.start + 1e-9 for seg in path.allocation)
        assert {seg.kind for seg in path.allocation} <= {"bid", "alloc"}

    def test_no_app_span_yields_none(self):
        log = EventLog()
        log.emit(0.0, "exec.submit", "exec-1", app="a", trace_id="tr", span_id="sp")
        trace = TraceAssembler(log).assemble()[0]
        assert critical_path(trace) is None


# ------------------------------------------------------- trace propagation


class TestPropagation:
    def test_task_records_all_tagged(self, pipeline):
        vce, _run = pipeline
        for category in ("task.start", "task.done"):
            records = list(vce.sim.log.records(category=category))
            assert records
            for record in records:
                assert record.get("trace_id") and record.get("span_id")

    @pytest.fixture(scope="class")
    def stencil(self):
        from repro.machines import MachineClass
        from repro.workloads import build_stencil_graph

        vce = VirtualComputingEnvironment(
            workstation_cluster(4), VCEConfig(seed=0)
        ).boot()
        run = vce.submit(
            build_stencil_graph(ranks=4, cells=32, iterations=2),
            class_map={"grid": MachineClass.WORKSTATION},
        )
        vce.run_to_completion(run)
        assert run.state is RunState.DONE
        return vce

    def test_channel_sends_tagged(self, stencil):
        sends = list(stencil.sim.log.records(category="chan.send"))
        assert sends
        for record in sends:
            assert record.get("trace_id") and record.get("span_id")

    def test_recv_records_link_sender_span(self, stencil):
        recvs = list(stencil.sim.log.records(category="chan.recv"))
        assert recvs
        send_spans = {
            r.get("span_id") for r in stencil.sim.log.records(category="chan.send")
        }
        for record in recvs:
            assert record.get("from_span") in send_spans

    def test_migration_records_tagged(self):
        cluster, _ = self._migrated_cluster()
        records = list(cluster.sim.log.records(category="migration.done"))
        assert records
        for record in records:
            assert record.get("trace_id") and record.get("span_id")
            assert record.get("parent_span_id")

    def test_migration_span_parented_under_app(self):
        cluster, app = self._migrated_cluster()
        traces = TraceAssembler(cluster.sim.log).assemble()
        trace = next(t for t in traces if t.by_category("migration"))
        migration = trace.by_category("migration")[0]
        app_span = trace.app_span()
        assert migration.parent_span_id == app_span.span_id
        assert migration.duration > 0

    @staticmethod
    def _migrated_cluster():
        cluster = make_cluster(3)
        context = MigrationContext(cluster.manager, cluster.net)
        graph = one_task_graph(plain_program(10.0), memory_mb=1)
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        cluster.run(until=4.0)
        DumpMigration(context).migrate(app, app.record("t", 0), "ws1")
        cluster.run()
        assert app.status is AppStatus.DONE
        return cluster, app


# ------------------------------------------------------------------ replay


def _weather_log():
    from repro.core import heterogeneous_cluster

    vce = VirtualComputingEnvironment(
        heterogeneous_cluster(), VCEConfig(seed=11)
    ).boot()
    run = vce.run_script(WEATHER_SCRIPT, weather_programs(), name="weather")
    vce.run_to_completion(run)
    assert run.state is RunState.DONE
    return vce.sim.log


def _pipeline_log():
    vce, _run = _pipeline_vce(seed=3)
    return vce.sim.log


class TestDeterministicReplay:
    def test_weather_replay_identical(self):
        assert_deterministic(_weather_log)

    def test_pipeline_replay_identical(self):
        assert_deterministic(_pipeline_log)

    def test_digest_covers_trace_fields(self):
        log = EventLog()
        log.emit(1.0, "task.start", "t[0]", trace_id="tr-A", span_id="sp")
        other = EventLog()
        other.emit(1.0, "task.start", "t[0]", trace_id="tr-B", span_id="sp")
        assert event_log_digest(log) != event_log_digest(other)

    def test_digest_stable_under_key_order(self):
        log = EventLog()
        log.emit(1.0, "x", "src", b=2, a=1)
        other = EventLog()
        other.emit(1.0, "x", "src", a=1, b=2)
        assert event_log_digest(log) == event_log_digest(other)

    def test_seed_changes_digest(self):
        logs = [
            _pipeline_vce(seed=s)[0].sim.log for s in (1, 2)
        ]
        assert event_log_digest(logs[0]) != event_log_digest(logs[1])

    def test_divergence_reported_with_record(self):
        logs = iter([_make_log(tag="A"), _make_log(tag="B")])
        with pytest.raises(AssertionError, match="diverged at record"):
            assert_deterministic(lambda: next(logs))


def _make_log(tag):
    log = EventLog()
    log.emit(0.0, "x", "src", tag=tag)
    return log


# ------------------------------------------------------------------ export


class TestChromeExport:
    def test_document_shape(self, pipeline_traces):
        doc = chrome_trace(pipeline_traces)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(pipeline_traces[0].spans)
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert {"name", "cat", "pid", "tid", "args"} <= set(event)
            assert "span_id" in event["args"]

    def test_round_trips_through_json(self, pipeline_traces, tmp_path):
        path = str(tmp_path / "trace.json")
        export_chrome_trace(pipeline_traces, path)
        doc = json.load(open(path))
        assert doc["traceEvents"]

    def test_lanes_group_by_span_name(self, pipeline_traces):
        doc = chrome_trace(pipeline_traces)
        names = {}
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                names.setdefault(event["name"], set()).add(event["tid"])
        for name, tids in names.items():
            assert len(tids) == 1, f"{name} spread over lanes {tids}"


# --------------------------------------------------------------------- CLI


class TestTraceCli:
    @pytest.fixture
    def weather_file(self, tmp_path):
        path = tmp_path / "snow.vce"
        path.write_text(WEATHER_SCRIPT)
        return str(path)

    def test_trace_subcommand(self, weather_file, tmp_path):
        export = str(tmp_path / "chrome.json")
        out = io.StringIO()
        code = main(["trace", weather_file, "--seed", "1", "--export", export], out=out)
        assert code == 0
        text = out.getvalue()
        assert "critical path" in text
        assert "compute" in text
        assert "path total" in text
        doc = json.load(open(export))
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_cli_total_equals_collector_makespan(self, weather_file):
        out = io.StringIO()
        assert main(["trace", weather_file, "--seed", "2"], out=out) == 0
        # the header prints both numbers; they must agree
        for line in out.getvalue().splitlines():
            if line.startswith("trace "):
                assert "makespan" in line and "collector" in line
                numbers = [
                    float(tok.rstrip("s)").rstrip("s"))
                    for tok in line.replace(",", "").split()
                    if tok.rstrip("s)").rstrip("s").replace(".", "", 1).isdigit()
                ]
                assert len(numbers) == 2
                assert numbers[0] == pytest.approx(numbers[1], abs=1e-3)
