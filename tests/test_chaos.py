"""Chaos soak: workloads under seeded fault schedules.

The acceptance bar for the fault-tolerant execution layer: with a daemon
crash-restart, 5% message drop, and one timed network partition (the
``chaos-mix`` recipe, fixed seed), every workload task completes exactly
once, results match the fault-free run, the makespan degrades gracefully,
and the whole chaotic run replays byte-identically.
"""

import pytest

from repro.core import VCEConfig, VirtualComputingEnvironment, heterogeneous_cluster
from repro.faults.schedule import SCHEDULES, FaultSchedule, build_schedule
from repro.migration.failover import FailoverConfig
from repro.scheduler.execution_program import RunState
from repro.trace.replay import event_log_digest
from repro.util.errors import SimulationError
from repro.workloads import WEATHER_SCRIPT, build_pipeline_graph, weather_programs

# seed 3 makes chaos-mix crash ws0 (~t+3.2s), which hosts both a weather
# collector and the pipeline's first stage — recovery provably exercised
SEED = 3


def chaos_vce(seed=SEED, schedule="chaos-mix", **config_kw):
    config = VCEConfig(
        seed=seed,
        reliable_transport=True,
        failover=FailoverConfig(),
        **config_kw,
    )
    vce = VirtualComputingEnvironment(heterogeneous_cluster(), config).boot()
    if schedule is not None:
        vce.chaos(schedule, seed=seed)
    return vce


def chaos_run(seed=SEED, schedule="chaos-mix"):
    """Weather + pipeline under *schedule*; returns (vce, runs)."""
    vce = chaos_vce(seed, schedule)
    runs = [
        vce.run_script(WEATHER_SCRIPT, weather_programs(), name="weather"),
        vce.submit(build_pipeline_graph(stages=4, stage_work=15.0, name="pipe")),
    ]
    for run in runs:
        vce.run_to_completion(run, timeout=2_000.0)
    vce.run(until=vce.sim.now + 30.0)  # let trailing fault windows close
    return vce, runs


@pytest.fixture(scope="module")
def chaotic():
    return chaos_run()


@pytest.fixture(scope="module")
def calm():
    """The same workloads with no faults injected (still fault-tolerant
    config, so the only delta is the schedule)."""
    return chaos_run(schedule=None)


class TestChaosSoak:
    def test_faults_actually_injected(self, chaotic):
        vce, _ = chaotic
        report = vce.chaos_controller.report()
        assert report.get("crash", 0) >= 1, report
        assert report.get("restart", 0) >= 1, report
        assert report.get("drop", 0) >= 1, report
        assert report.get("partition", 0) >= 1, report

    def test_all_runs_complete(self, chaotic):
        vce, runs = chaotic
        for run in runs:
            assert run.state is RunState.DONE, run.error

    def test_every_task_completes_exactly_once(self, chaotic):
        vce, runs = chaotic
        for run in runs:
            app = run.app
            done_counts = {}
            for record in vce.sim.log.records(category="task.done"):
                if record.get("app") != app.id:
                    continue
                key = (record.get("task"), record.get("rank"))
                done_counts[key] = done_counts.get(key, 0) + 1
            expected = {
                (node.name, rank)
                for node in app.graph
                for rank in range(node.instances)
            }
            assert set(done_counts) == expected
            multi = {k: n for k, n in done_counts.items() if n != 1}
            assert not multi, f"tasks not exactly-once: {multi}"

    def test_results_match_fault_free_run(self, chaotic, calm):
        chaotic_vce, chaotic_runs = chaotic
        calm_vce, calm_runs = calm
        for noisy, quiet in zip(chaotic_runs, calm_runs):
            assert quiet.state is RunState.DONE
            for node in quiet.app.graph:
                assert noisy.app.results(node.name) == quiet.app.results(node.name)

    def test_makespan_degrades_gracefully(self, chaotic, calm):
        _, chaotic_runs = chaotic
        _, calm_runs = calm
        for noisy, quiet in zip(chaotic_runs, calm_runs):
            assert noisy.app.makespan < 3 * quiet.app.makespan, (
                noisy.app.makespan,
                quiet.app.makespan,
            )

    def test_recovery_surfaced_in_telemetry(self, chaotic):
        vce, _ = chaotic
        registry = vce.telemetry.registry
        faults = registry.get("faults_injected_total")
        assert faults is not None
        assert sum(c.value for _, c in faults.samples()) >= 4
        recovery = registry.get("recovery_actions_total")
        assert recovery is not None
        by_action = {v[0]: c.value for v, c in recovery.samples()}
        assert by_action.get("strand", 0) >= 1, by_action
        assert by_action.get("redispatch", 0) >= 1, by_action
        # the injected/recovered counters appear in the top frame
        frame = vce.telemetry.render()
        assert "faults=" in frame and "recoveries=" in frame

    def test_recovery_events_in_log(self, chaotic):
        vce, _ = chaotic
        categories = {r.category for r in vce.sim.log}
        assert "fault.crash" in categories
        assert "fault.daemon_restart" in categories
        assert "recovery.strand" in categories
        assert "recovery.redispatch" in categories

    def test_byte_identical_replay(self):
        """Same seed + same fault schedule => byte-identical event log."""

        def fingerprint():
            vce, _ = chaos_run()
            return event_log_digest(vce.sim.log)

        assert fingerprint() == fingerprint()


class TestScheduleRecipes:
    def test_all_recipes_build(self):
        hosts = ["ws0", "ws1", "ws2", "mimd0"]
        for name in SCHEDULES:
            schedule = build_schedule(name, hosts, seed=5)
            assert len(schedule) >= 1
            assert schedule.name == name

    def test_build_is_deterministic(self):
        hosts = ["ws0", "ws1", "ws2"]
        a = build_schedule("chaos-mix", hosts, seed=9)
        b = build_schedule("chaos-mix", hosts, seed=9)
        assert a.actions == b.actions

    def test_unknown_schedule_rejected(self):
        with pytest.raises(SimulationError, match="unknown fault schedule"):
            build_schedule("nope", ["ws0"])
        with pytest.raises(SimulationError, match="at least one"):
            build_schedule("lossy", [])

    def test_actions_validate(self):
        from repro.faults.schedule import FaultAction

        with pytest.raises(SimulationError, match="unknown fault kind"):
            FaultAction(1.0, "meteor")
        with pytest.raises(SimulationError, match=">= 0"):
            FaultAction(-1.0, "crash")

    def test_window_restores_previous_setting(self):
        vce = chaos_vce(schedule=None)
        schedule = FaultSchedule("windows").drop_window(1.0, 2.0, 0.25)
        schedule.latency_spike(1.0, 2.0, 4.0)
        vce.chaos(schedule)
        vce.run(until=vce.sim.now + 2.0)
        assert vce.network._drop_rate == 0.25
        assert vce.network.latency_factor == 4.0
        vce.run(until=vce.sim.now + 3.0)
        assert vce.network._drop_rate == 0.0
        assert vce.network.latency_factor == 1.0


class TestDaemonRestart:
    def test_restarted_daemon_rejoins_group(self):
        vce = chaos_vce(schedule=None)
        victim = "ws1"
        schedule = FaultSchedule("bounce").bounce(2.0, victim, down_for=4.0)
        vce.chaos(schedule)
        vce.run(until=vce.sim.now + 40.0)
        daemon = vce.daemons[victim]
        assert daemon.alive
        assert daemon.joined
        # the group's directory converges back to including the victim
        from repro.machines import MachineClass

        members = vce.directory.members(MachineClass.WORKSTATION)
        assert any(m.host == victim for m in members)
