"""Tests for the happens-before sanitizer, protocol conformance, and the
tie-shuffle classification harness (``repro sanitize``).

The two load-bearing guarantees pinned here:

- an access ordered (by the schedule-parent tree) after every prior
  conflicting access is *never* reported as a race — the hypothesis
  property below drives the tracker over arbitrary trees and checks every
  reported pair against an independent ancestry oracle;
- the deliberately order-dependent ``injected-race`` fixture *is* detected
  and classified digest-diverging on both backends, while the golden
  scenarios stay byte-identical with the sanitizer attached.
"""

import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.detlint import iter_python_files, lint_source
from repro.analysis.hb import HBTracker
from repro.analysis.protocol import (
    ProtocolFSM,
    ProtocolMonitor,
    check_protocol_sources,
    check_records,
)
from repro.analysis.report import Severity
from repro.analysis.sanitize import (
    SCENARIOS,
    outcome_digest,
    sanitize_scenario,
    shuffle_salt,
)
from repro.util.eventlog import LogRecord


# ------------------------------------------------------------- HB tracking


def test_sequential_chain_never_races():
    hb = HBTracker()
    for _ in range(20):
        node = hb.on_schedule()
        hb.on_fire(node)
        hb.write("var", "R900", "chain.write")
        hb.read("var", "R900", "chain.read")
    assert hb.races == []


def test_unordered_writes_race():
    hb = HBTracker()
    # two siblings scheduled from the root, each writing the same var
    a = hb.on_schedule("a")
    b = hb.on_schedule("b")
    hb.on_fire(a)
    hb.write("var", "R900", "sib.a")
    hb.on_fire(b)
    hb.write("var", "R900", "sib.b")
    races = hb.races
    assert len(races) == 1
    assert races[0].kind == "write/write"
    assert races[0].count == 1


def test_read_read_is_not_a_conflict():
    hb = HBTracker()
    a = hb.on_schedule()
    b = hb.on_schedule()
    hb.on_fire(a)
    hb.read("var", "R900", "rr.a")
    hb.on_fire(b)
    hb.read("var", "R900", "rr.b")
    assert hb.races == []


def test_race_dedup_counts():
    hb = HBTracker()
    a = hb.on_schedule()
    b = hb.on_schedule()
    hb.on_fire(a)
    hb.write("var", "R900", "dup.a")
    for _ in range(3):
        hb.on_fire(b)
        hb.write("var", "R900", "dup.b")
        hb.on_fire(a)
        hb.write("var", "R900", "dup.a")
    assert len(hb.races) == 1
    assert hb.races[0].count >= 3


def test_walk_cap_is_conservative():
    hb = HBTracker(walk_cap=4)
    node = hb.on_schedule()
    hb.on_fire(node)
    hb.write("var", "R900", "deep.first")
    for _ in range(64):  # descend far deeper than the cap
        node = hb.on_schedule()
        hb.on_fire(node)
    # capped walk cannot prove anything; it must claim ordered, not race
    hb.write("var", "R900", "deep.second")
    assert hb.races == []
    assert hb.walk_cap_hits > 0


# The property the module docstring promises: conflicting accesses where
# each is HB-ordered after all prior ones never report.  The strategy
# builds an arbitrary schedule tree, then walks accesses down one root
# path so every next access context descends from the previous one.
@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(0, 3), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_ordered_chain_never_reported(ops):
    hb = HBTracker()
    for is_write, extra_children, same_node in ops:
        if not same_node or hb.current_node == 0:
            # descend: new node scheduled from the current context
            node = hb.on_schedule()
            # decoy siblings that never access the variable
            for _ in range(extra_children):
                hb.on_schedule()
            hb.on_fire(node)
        if is_write:
            hb.write("var", "R900", "prop.write")
        else:
            hb.read("var", "R900", "prop.read")
    assert hb.races == []


# False-positive freedom on arbitrary trees: every reported race pair
# must be genuinely unordered per an independent ancestry oracle.
@settings(max_examples=100, deadline=None)
@given(st.data())
def test_property_reported_races_are_unordered(data):
    n = data.draw(st.integers(2, 25))
    hb = HBTracker()
    nodes = [0]
    for _ in range(n):
        parent = data.draw(st.sampled_from(nodes))
        hb.on_fire(parent)
        nodes.append(hb.on_schedule())
    accesses = data.draw(
        st.lists(
            st.tuples(st.sampled_from(nodes), st.booleans()),
            min_size=2, max_size=30,
        )
    )
    parents = list(hb._parents)

    def ancestor(a, b):  # ground truth, independent of hb.ordered
        while b > a:
            b = parents[b]
        return a == b

    for node, is_write in accesses:
        hb.on_fire(node)
        if is_write:
            hb.write("v", "R900", "oracle.write")
        else:
            hb.read("v", "R900", "oracle.read")
    for race in hb.races:
        a, b = sorted((race.node_a, race.node_b))
        assert not ancestor(a, b), (race, parents)


def test_chain_rendering_names_hosts():
    hb = HBTracker()
    a = hb.on_schedule("alpha")
    hb.on_fire(a)
    b = hb.on_schedule("beta")
    assert hb.chain(b) == "#0@- < #1@alpha < #2@beta"


def test_stats_shape():
    hb = HBTracker()
    node = hb.on_schedule()
    hb.on_fire(node)
    hb.write("v", "R900", "stats.w")
    stats = hb.stats()
    assert stats["nodes"] == 2 and stats["notes"] == 1
    assert stats["variables"] == 1 and stats["races"] == 0


def test_race_telemetry_counter():
    from repro.telemetry.registry import MetricsRegistry

    registry = MetricsRegistry()
    hb = HBTracker(telemetry=registry)
    a, b = hb.on_schedule(), hb.on_schedule()
    hb.on_fire(a)
    hb.write("v", "R900", "tel.a")
    hb.on_fire(b)
    hb.write("v", "R900", "tel.b")
    assert registry.counter("analysis_races_detected_total").value == 1.0


# ------------------------------------------------- suppression and baseline


def _two_sibling_races(suppress: bool):
    hb = HBTracker()
    a, b = hb.on_schedule(), hb.on_schedule()
    hb.on_fire(a)
    if suppress:
        hb.write("v", "R900", "supp.a")  # hbrace: ok(R900)
    else:
        hb.write("v", "R900", "plain.a")
    hb.on_fire(b)
    if suppress:
        hb.write("v", "R900", "supp.b")
    else:
        hb.write("v", "R900", "plain.b")
    return hb


def test_site_comment_suppresses():
    findings, suppressed = _two_sibling_races(True).race_findings()
    assert findings == [] and suppressed == 1


def test_unsuppressed_race_reports_warning_unclassified():
    findings, suppressed = _two_sibling_races(False).race_findings()
    assert suppressed == 0
    assert [f.severity for f in findings] == [Severity.WARNING]
    assert "unclassified" in findings[0].message


def test_baseline_file_suppresses(tmp_path):
    hb = _two_sibling_races(False)
    baseline = tmp_path / "hb-baseline"
    baseline.write_text("# grandfathered\nR900 tests/test_hb_sanitizer.py\n")
    findings, suppressed = hb.race_findings(baseline=baseline)
    assert findings == [] and suppressed == 1


def test_real_classification_is_error():
    hb = _two_sibling_races(False)
    for race in hb.races:
        race.classification = "real"
    findings, _ = hb.race_findings()
    assert [f.severity for f in findings] == [Severity.ERROR]
    assert "digest-diverging" in findings[0].message


# --------------------------------------------------------- protocol FSMs


def _rec(time, category, source="s", **data):
    return LogRecord(time, category, source, data)


class TestProtocolFSMs:
    def test_clean_bidding_round(self):
        records = [
            _rec(1, "sched.request", req_id="r1"),
            _rec(2, "sched.alloc", req_id="r1"),
        ]
        assert check_records(records, include_end_states=False) == []

    def test_alloc_without_request_is_violation(self):
        findings = check_records(
            [_rec(1, "sched.alloc", req_id="r1")], include_end_states=False
        )
        assert [f.rule for f in findings] == ["P001"]
        assert findings[0].severity is Severity.ERROR

    def test_retransmit_is_tolerated_info(self):
        records = [
            _rec(1, "sched.request", req_id="r1"),
            _rec(2, "sched.request", req_id="r1"),  # at-least-once retransmit
            _rec(3, "sched.alloc", req_id="r1"),
        ]
        findings = check_records(records, include_end_states=False)
        assert [f.severity for f in findings] == [Severity.INFO]
        assert "retransmit" in findings[0].message

    def test_redispatch_without_strand_is_violation(self):
        findings = check_records(
            [_rec(1, "recovery.redispatch", "app", task="t", rank=0)],
            include_end_states=False,
        )
        assert [f.rule for f in findings] == ["P002"]

    def test_done_without_start_is_violation_then_resyncs(self):
        records = [
            _rec(1, "task.done", "h", task="t", rank=0, app="a"),
            # resync puts the instance in 'done'; a restart is then legal
            _rec(2, "task.start", "h", task="t", rank=0, app="a"),
            _rec(3, "task.done", "h", task="t", rank=0, app="a"),
        ]
        findings = check_records(records, include_end_states=False)
        assert [f.rule for f in findings] == ["P003"]
        assert sum(f.severity is Severity.ERROR for f in findings) == 1

    def test_non_accepting_end_state_is_aggregated_info(self):
        records = [_rec(1, "task.start", "h", task="t", rank=0, app="a")]
        findings = check_records(records, include_end_states=True)
        assert [f.severity for f in findings] == [Severity.INFO]
        assert "non-accepting" in findings[0].message

    def test_keyless_records_are_skipped(self):
        # no req_id / task+rank → no FSM instance, no findings
        assert check_records([_rec(1, "sched.alloc"), _rec(2, "task.done")]) == []

    def test_monitor_counts_violations_live(self):
        from repro.netsim.backend import create_simulator
        from repro.telemetry.registry import MetricsRegistry

        sim = create_simulator(1)
        registry = MetricsRegistry()
        monitor = ProtocolMonitor(sim, telemetry=registry)
        sim.schedule_at(1.0, lambda: sim.emit("sched.alloc", "s", req_id="r9"))
        sim.run(until=2.0)
        assert monitor.violations == 1
        assert (
            registry.counter("analysis_protocol_violations_total").value == 1.0
        )
        assert [f.rule for f in monitor.findings(include_end_states=False)] == ["P001"]
        monitor.detach()

    def test_static_p005_clean_on_tree(self):
        import repro
        from pathlib import Path

        assert check_protocol_sources(Path(repro.__file__).parent) == []

    def test_static_p005_flags_dead_alphabet(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            'def go(sim):\n    sim.emit("proto.hello", "x")\n'
        )
        fsm = ProtocolFSM(
            rule="P001", name="toy",
            categories=frozenset({"proto.hello", "proto.ghost"}),
            start="idle", accept=frozenset({"idle"}), transitions={},
        )
        findings = check_protocol_sources(tmp_path, fsms=(fsm,))
        assert len(findings) == 1
        assert "proto.ghost" in findings[0].message
        assert findings[0].rule == "P005"


# ------------------------------------------------------- outcome digests


class TestOutcomeDigest:
    def test_order_independent(self):
        records = [
            _rec(1, "task.done", "h1", task="a", rank=0),
            _rec(2, "task.done", "h2", task="b", rank=1),
        ]
        assert outcome_digest(records) == outcome_digest(records[::-1])

    def test_time_and_transient_keys_ignored(self):
        a = _rec(1, "task.done", "h", task="t", latency=0.5)
        b = _rec(9, "task.done", "h", task="t", latency=2.5)
        assert outcome_digest([a]) == outcome_digest([b])

    def test_durable_difference_diverges(self):
        a = _rec(1, "race.final", "fixture", x=5)
        b = _rec(1, "race.final", "fixture", x=8)
        assert outcome_digest([a]) != outcome_digest([b])

    def test_non_outcome_categories_ignored(self):
        a = [_rec(1, "task.done", "h", task="t")]
        b = a + [_rec(2, "net.send", "h", src="a", dst="b")]
        assert outcome_digest(a) == outcome_digest(b)

    def test_shuffle_salts_deterministic_positive_distinct(self):
        salts = [shuffle_salt(3, k) for k in range(8)]
        assert salts == [shuffle_salt(3, k) for k in range(8)]
        assert all(s > 0 for s in salts)
        assert len(set(salts)) == len(salts)


# --------------------------------------------------- sanitize harness


@pytest.mark.parametrize("backend,shards", [("serial", 1), ("sharded", 2)])
def test_injected_race_detected_and_real(backend, shards):
    result = sanitize_scenario(
        "injected-race", seed=3, backend=backend, shards=shards, shuffles=2
    )
    assert result.classification == "real"
    assert result.races == 1
    assert result.diverged
    errors = [f for f in result.report.sorted_findings() if f.severity is Severity.ERROR]
    assert [f.rule for f in errors] == ["R900"]
    assert result.report.exit_code(strict=False) == 1


def test_injected_race_shuffle_is_salt_deterministic():
    fixture = SCENARIOS["injected-race"].run
    salt = shuffle_salt(3, 0)
    d1 = outcome_digest(fixture(3, "serial", 1, False, salt).log)
    d2 = outcome_digest(fixture(3, "serial", 1, False, salt).log)
    assert d1 == d2
    base = outcome_digest(fixture(3, "serial", 1, False, 0).log)
    assert d1 != base  # this salt permutes the tie — the fixture's point


def test_unknown_scenario_raises():
    with pytest.raises(KeyError):
        sanitize_scenario("no-such-scenario")


def test_set_tie_shuffle_guards():
    from repro.netsim.backend import create_simulator
    from repro.util.errors import SimulationError

    sim = create_simulator(1)
    with pytest.raises(SimulationError):
        sim.set_tie_shuffle(-1)


@pytest.mark.parametrize("backend,shards", [("serial", 1), ("sharded", 2)])
def test_randomdag_race_free_and_digest_stable(backend, shards):
    result = sanitize_scenario(
        "randomdag", seed=3, backend=backend, shards=shards, shuffles=1
    )
    assert result.classification == "race-free"
    assert result.report.errors == []
    assert not result.diverged


def test_golden_digest_unchanged_with_sanitizer_attached():
    """The sanitizer is a pure observer: the golden replay digest must be
    byte-identical with it on."""
    from pathlib import Path

    from repro.analysis.sanitize import _randomdag
    from repro.trace.replay import event_log_digest

    golden = (
        Path(__file__).resolve().parent / "golden" / "randomdag_seed3.digest"
    ).read_text().strip()
    vce = _randomdag(3, "serial", 4, hb_sanitizer=True, tie_shuffle=0)
    assert event_log_digest(vce.sim.log) == golden
    assert vce.hb_tracker is not None and vce.hb_tracker.nodes > 100
    assert vce.protocol_monitor is not None


# ------------------------------------------------------------- CLI surface


def test_cli_sanitize_injected_race(tmp_path):
    from repro.cli import main

    out = io.StringIO()
    artifact = tmp_path / "san.json"
    code = main(
        [
            "sanitize", "injected-race", "--shuffles", "2",
            "--json", str(artifact), "--no-static",
        ],
        out=out,
    )
    assert code == 1  # the fixture race is an ERROR by design
    text = out.getvalue()
    assert "injected-race[serial]: real" in text
    payload = json.loads(artifact.read_text())
    assert payload["scenarios"][0]["classification"] == "real"
    assert payload["errors"] >= 1


def test_cli_sanitize_unknown_scenario():
    from repro.cli import main

    assert main(["sanitize", "bogus"]) == 2


# ------------------------------------------------------- detlint D004 + dirs


class TestD004:
    def test_flags_id_and_hash_keys(self):
        src = (
            "hosts.sort(key=id)\n"
            "pick = min(hosts, key=lambda h: hash(h))\n"
            "best = sorted(hosts, key=lambda h: (hash(h), h.name))\n"
        )
        findings = lint_source(src, "src/repro/scheduler/x.py")
        assert [f.rule for f in findings] == ["D004"] * 3
        assert all(f.severity is Severity.WARNING for f in findings)

    def test_stable_keys_and_other_modules_clean(self):
        src = "best = sorted(hosts, key=lambda h: h.name)\nhosts.sort(key=id)\n"
        assert lint_source("best = sorted(hosts, key=lambda h: h.name)\n",
                           "src/repro/scheduler/x.py") == []
        assert lint_source(src, "src/repro/util/x.py") == []

    def test_suppression(self):
        src = "hosts.sort(key=id)  # detlint: ok(D004)\n"
        assert lint_source(src, "src/repro/netsim/x.py") == []

    def test_iter_python_files_skips_litter(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "a.py").write_text("")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "b.py").write_text("")
        (tmp_path / "pkg.egg-info").mkdir()
        (tmp_path / "pkg.egg-info" / "c.py").write_text("")
        (tmp_path / "zz.py").write_text("")
        (tmp_path / "aa.py").write_text("")
        files = iter_python_files([tmp_path])
        assert [p.name for p in files] == ["aa.py", "zz.py"]  # sorted, filtered
