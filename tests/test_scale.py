"""Scale-conformance property tests (hypothesis).

The soak generator and hierarchical group leaders rest on three
mechanisms whose invariants must hold for *any* input, not just the
examples the soak regression happens to exercise:

- the consistent-hash ring (``repro.util.hashing``) — a join or leave
  moves only the keys the changed node owns, so daemon churn cannot
  reshuffle sub-leader cells wholesale;
- tenant quota accounting (``repro.core.tenancy``) — a tenant's admitted
  concurrent instances never exceed its quota under any admit/release
  interleaving, and the peak gauges track exactly;
- the aging admission queue (``repro.scheduler.queue``) — a waiting
  request's effective priority grows until it outranks any fixed-priority
  newcomer, so low-priority tenants never starve (§4.3).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tenancy import QuotaExceededError, TenantRegistry, TenantSpec
from repro.machines import MachineClass
from repro.netsim.host import Address
from repro.scheduler import AgingQueue, ResourceRequest
from repro.scheduler.hierarchy import build_cells
from repro.util.hashing import ConsistentHashRing

host_names = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=6).map(lambda s: f"ws-{s}"),
    min_size=2,
    max_size=14,
    unique=True,
)
ring_keys = st.lists(
    st.text(alphabet="0123456789abcdef", min_size=1, max_size=12),
    min_size=1,
    max_size=40,
    unique=True,
)


# ------------------------------------------------------- consistent hashing


class TestRingStability:
    @given(nodes=host_names, keys=ring_keys)
    def test_leave_moves_only_the_victims_keys(self, nodes, keys):
        ring = ConsistentHashRing(nodes)
        before = {k: ring.lookup(k) for k in keys}
        victim = nodes[0]
        after = ConsistentHashRing([n for n in nodes if n != victim])
        for k in keys:
            if before[k] != victim:
                assert after.lookup(k) == before[k]

    @given(nodes=host_names, keys=ring_keys)
    def test_join_moves_keys_only_to_the_new_node(self, nodes, keys):
        newcomer, *rest = nodes
        ring = ConsistentHashRing(rest)
        before = {k: ring.lookup(k) for k in keys}
        after = ConsistentHashRing(rest + [newcomer])
        for k in keys:
            if after.lookup(k) != newcomer:
                assert after.lookup(k) == before[k]

    @given(nodes=host_names, keys=ring_keys)
    def test_lookup_is_order_and_duplicate_insensitive(self, nodes, keys):
        a = ConsistentHashRing(nodes)
        b = ConsistentHashRing(list(reversed(nodes)) + [nodes[0]])
        for k in keys:
            assert a.lookup(k) == b.lookup(k)


# ------------------------------------------------------- sub-leader cells


def _cell_of(cell_map) -> dict[str, int]:
    return {
        m.host: cid
        for cid in cell_map.cell_ids
        for m in cell_map.members_of(cid)
    }


class TestCellStability:
    @given(hosts=host_names, fanout=st.integers(1, 8))
    def test_membership_churn_does_not_reshuffle_cells(self, hosts, fanout):
        """A member's cell depends only on its own host name: after one
        daemon leaves the view, every survivor keeps its cell id."""
        members = [Address(h, "vced") for h in hosts]
        full = _cell_of(build_cells(members, fanout))
        partial = _cell_of(build_cells(members[1:], fanout))
        assert partial == {h: c for h, c in full.items() if h != hosts[0]}

    @given(hosts=host_names, fanout=st.integers(1, 8))
    def test_view_order_does_not_change_assignment(self, hosts, fanout):
        members = [Address(h, "vced") for h in hosts]
        assert _cell_of(build_cells(members, fanout)) == _cell_of(
            build_cells(list(reversed(members)), fanout)
        )

    @given(
        hosts=host_names,
        fanout=st.integers(1, 8),
        req_id=st.text(alphabet="0123456789abcdef-", min_size=1, max_size=16),
        loads=st.lists(st.floats(0.0, 2.0, allow_nan=False), max_size=8),
    )
    def test_escalation_order_is_a_permutation_from_the_primary(
        self, hosts, fanout, req_id, loads
    ):
        cell_map = build_cells([Address(h, "vced") for h in hosts], fanout)
        primary = cell_map.route(req_id)
        assert primary in cell_map.cell_ids
        cell_loads = dict(zip(cell_map.cell_ids, loads))
        order = cell_map.escalation_order(req_id, cell_loads)
        assert order[0] == primary
        assert sorted(order) == sorted(cell_map.cell_ids)


# ------------------------------------------------------------ tenant quotas


quota_ops = st.lists(
    st.tuples(st.sampled_from(["admit", "release"]), st.integers(1, 30)),
    max_size=60,
)


class TestQuotaInvariant:
    @given(quota=st.integers(1, 50), ops=quota_ops)
    def test_admitted_never_exceeds_quota(self, quota, ops):
        registry = TenantRegistry([TenantSpec("t", quota=quota)])
        ledger = peak = 0
        for op, n in ops:
            if op == "admit":
                if ledger + n <= quota:
                    assert registry.can_admit("t", n)
                    registry.admit("t", n)
                    ledger += n
                    peak = max(peak, ledger)
                else:
                    assert not registry.can_admit("t", n)
                    with pytest.raises(QuotaExceededError):
                        registry.admit("t", n)
            else:
                freed = min(n, ledger)
                registry.release("t", freed)
                ledger -= freed
            state = registry.state("t")
            assert state.admitted == ledger <= quota
            assert registry.admitted_total == ledger
        assert registry.state("t").peak_admitted == peak
        assert registry.peak_admitted_total == peak

    @given(
        quotas=st.lists(st.integers(1, 40), min_size=2, max_size=5),
        ops=st.lists(
            st.tuples(
                st.integers(0, 4),
                st.sampled_from(["admit", "release"]),
                st.integers(1, 20),
            ),
            max_size=80,
        ),
    )
    def test_tenants_are_isolated(self, quotas, ops):
        """One tenant's admissions never consume another's quota."""
        specs = [TenantSpec(f"t{i}", quota=q) for i, q in enumerate(quotas)]
        registry = TenantRegistry(specs)
        ledgers = [0] * len(quotas)
        for idx, op, n in ops:
            idx %= len(quotas)
            name = f"t{idx}"
            if op == "admit" and ledgers[idx] + n <= quotas[idx]:
                registry.admit(name, n)
                ledgers[idx] += n
            elif op == "release":
                freed = min(n, ledgers[idx])
                registry.release(name, freed)
                ledgers[idx] -= freed
        for idx, expect in enumerate(ledgers):
            assert registry.state(f"t{idx}").admitted == expect
        assert registry.admitted_total == sum(ledgers)


# ----------------------------------------------------------- priority aging


def _req(req_id: str, priority: float) -> ResourceRequest:
    return ResourceRequest(
        req_id=req_id,
        app=req_id,
        machine_class=MachineClass.WORKSTATION,
        modules=(),
        reply_to=Address("user", "test"),
        priority=priority,
    )


class TestAgingNeverStarves:
    @settings(max_examples=60)
    @given(
        gap=st.floats(0.5, 50.0, allow_nan=False),
        rate=st.floats(0.01, 1.0, allow_nan=False),
        n_late=st.integers(1, 15),
    )
    def test_aged_request_outranks_late_higher_priority_arrivals(
        self, gap, rate, n_late
    ):
        """A request of priority 0 enqueued at t=0 outranks any request of
        priority *gap* enqueued after t = gap/rate — waiting always wins
        eventually, whatever the newcomers' fixed priority advantage."""
        q = AgingQueue(aging_rate=rate)
        q.push(_req("patient", 0.0), now=0.0)
        crossover = gap / rate
        for i in range(n_late):
            q.push(_req(f"late-{i}", gap), now=crossover * 1.01 + 1.0 + i)
        now = crossover * 2 + n_late + 2.0
        order = []
        while len(q):
            order.append(q.pop(now).request.req_id)
        assert order[0] == "patient"
        assert len(order) == n_late + 1

    @settings(max_examples=60)
    @given(
        rate=st.floats(0.01, 1.0, allow_nan=False),
        arrivals=st.lists(
            st.tuples(
                st.floats(-50.0, 50.0, allow_nan=False),
                st.floats(0.0, 100.0, allow_nan=False),
            ),
            min_size=1,
            max_size=25,
        ),
    )
    def test_pop_order_is_descending_effective_priority(self, rate, arrivals):
        q = AgingQueue(aging_rate=rate)
        for i, (priority, t) in enumerate(sorted(arrivals, key=lambda a: a[1])):
            q.push(_req(f"r{i}", priority), now=t)
        now = 200.0
        popped = []
        while len(q):
            popped.append(q.pop(now).effective_priority(now, rate))
        for earlier, later in zip(popped, popped[1:]):
            assert earlier >= later - 1e-6
