"""Tests for the metrics collector, report formatting, and workloads."""

import pytest

from repro.metrics import MetricsCollector, format_series, format_table
from repro.metrics.collector import _merge
from repro.core import VirtualComputingEnvironment, workstation_cluster
from repro.scheduler.execution_program import RunState
from repro.util.eventlog import EventLog
from repro.workloads import (
    build_diamond_graph,
    build_monte_carlo_graph,
    build_pipeline_graph,
    build_random_dag,
    build_sweep_graph,
    build_weather_graph,
)


class TestMergeIntervals:
    def test_empty(self):
        assert _merge([]) == []

    def test_disjoint(self):
        assert _merge([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_overlapping_merged(self):
        assert _merge([(0, 2), (1, 4), (5, 6)]) == [(0, 4), (5, 6)]

    def test_contained(self):
        assert _merge([(0, 10), (2, 3)]) == [(0, 10)]


class TestCollector:
    def _run_vce(self):
        vce = VirtualComputingEnvironment(workstation_cluster(4)).boot()
        run = vce.submit(build_pipeline_graph(stages=3, stage_work=4.0))
        vce.run_to_completion(run)
        return vce, run

    def test_app_makespans(self):
        vce, run = self._run_vce()
        makespans = vce.metrics().app_makespans()
        assert len(makespans) == 1
        assert list(makespans.values())[0] == pytest.approx(run.app.makespan, rel=1e-6)

    def test_utilization_positive_on_used_hosts(self):
        vce, run = self._run_vce()
        horizon = vce.sim.now
        util = vce.metrics().utilization(horizon)
        used = {run.placement.host_for(f"s{i}", 0) for i in range(3)}
        for host in used:
            assert util.get(host, 0.0) > 0.0

    def test_allocation_latencies(self):
        vce, run = self._run_vce()
        latencies = vce.metrics().allocation_latencies()
        assert latencies and all(0 < l < 10 for l in latencies)

    def test_allocation_latency_matches_trace_alloc_span(self):
        vce, run = self._run_vce()
        latencies = vce.metrics().allocation_latencies()
        assert run.allocation_latency in [pytest.approx(l) for l in latencies]

    def test_bid_counts(self):
        vce, run = self._run_vce()
        counts = vce.metrics().bid_counts()
        assert counts and counts[0] == 4  # all four workstations bid

    def test_throughput(self):
        vce, run = self._run_vce()
        assert vce.metrics().throughput(vce.sim.now) > 0

    def test_allocation_pairs_by_req_id_out_of_order(self):
        log = EventLog()
        log.emit(0.0, "exec.request", "exec-1", req_id="r1")
        log.emit(1.0, "exec.request", "exec-1", req_id="r2")
        log.emit(2.0, "exec.reply", "exec-1", req_id="r2")
        log.emit(5.0, "exec.reply", "exec-1", req_id="r1")
        assert MetricsCollector(log).allocation_latencies() == [1.0, 5.0]

    def test_allocation_one_reply_answers_only_one_request(self):
        # the old quadratic pairing matched one reply to every earlier
        # request from the same source, double-counting latencies
        log = EventLog()
        log.emit(0.0, "exec.request", "exec-1", req_id="r1")
        log.emit(1.0, "exec.request", "exec-1", req_id="r2")
        log.emit(2.0, "exec.reply", "exec-1", req_id="r1")
        assert MetricsCollector(log).allocation_latencies() == [2.0]

    def test_allocation_fifo_fallback_without_req_ids(self):
        log = EventLog()
        log.emit(0.0, "exec.request", "exec-1")
        log.emit(1.0, "exec.request", "exec-1")
        log.emit(2.0, "exec.reply", "exec-1")
        log.emit(3.0, "exec.reply", "exec-1")
        assert MetricsCollector(log).allocation_latencies() == [2.0, 2.0]

    def test_allocation_sources_do_not_cross_pair(self):
        log = EventLog()
        log.emit(0.0, "exec.request", "exec-1", req_id="a")
        log.emit(0.0, "exec.request", "exec-2", req_id="b")
        log.emit(1.0, "exec.reply", "exec-2", req_id="b")
        assert MetricsCollector(log).allocation_latencies() == [1.0]

    def test_allocation_reply_without_request_ignored(self):
        log = EventLog()
        log.emit(1.0, "exec.reply", "exec-1", req_id="ghost")
        assert MetricsCollector(log).allocation_latencies() == []

    def test_suspension_spans(self):
        log = EventLog()
        log.emit(1.0, "task.suspend", "x", app="a", task="t", rank=0)
        log.emit(4.0, "task.resume", "x", app="a", task="t", rank=0)
        spans = MetricsCollector(log).suspension_spans()
        assert spans == [3.0]

    def test_migration_latency_by_scheme(self):
        log = EventLog()
        log.emit(1.0, "migration.done", "t[0]", scheme="dump", latency=0.8)
        log.emit(2.0, "migration.done", "t[0]", scheme="dump", latency=1.0)
        log.emit(3.0, "migration.done", "t[1]", scheme="checkpoint", latency=0.1)
        by_scheme = MetricsCollector(log).migration_latency_by_scheme()
        assert by_scheme["dump"] == [0.8, 1.0]
        assert by_scheme["checkpoint"] == [0.1]


class TestReport:
    def test_format_table(self):
        table = format_table(
            ["scheme", "latency"], [["dump", 0.81234], ["checkpoint", 12.0]], title="E5"
        )
        lines = table.splitlines()
        assert lines[0] == "E5"
        assert "scheme" in lines[1] and "dump" in lines[3]

    def test_format_table_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table

    def test_format_series(self):
        series = format_series("speedup", [1, 2, 4], [1.0, 1.9, 3.5])
        assert series.startswith("speedup:")
        assert "(4, 3.50)" in series


class TestWorkloads:
    def test_weather_graph_annotated(self):
        graph = build_weather_graph()
        for node in graph:
            assert node.designed and node.coded
        assert graph.task("collector").instances == 2
        assert graph.task("display").local
        path, length = graph.critical_path()
        assert "predictor" in path

    def test_monte_carlo_deterministic(self):
        g1 = build_monte_carlo_graph(workers=2, seed=5)
        g2 = build_monte_carlo_graph(workers=2, seed=5)
        assert g1.task("worker").instances == 2
        assert g1.task("worker").hints.checkpointable

    def test_pipeline_structure(self):
        graph = build_pipeline_graph(stages=4)
        assert graph.levels() == [["s0"], ["s1"], ["s2"], ["s3"]]

    def test_diamond_structure(self):
        graph = build_diamond_graph(width=3)
        levels = graph.levels()
        assert levels[0] == ["source"] and levels[-1] == ["sink"]
        assert len(levels[1]) == 3

    def test_random_dag_valid_and_deterministic(self):
        g1 = build_random_dag(layers=4, width=4, seed=9)
        g2 = build_random_dag(layers=4, width=4, seed=9)
        g1.validate()
        assert sorted(t.name for t in g1) == sorted(t.name for t in g2)
        assert len(g1.arcs) == len(g2.arcs)
        different = build_random_dag(layers=4, width=4, seed=10)
        assert (
            sorted(t.name for t in g1) != sorted(t.name for t in different)
            or len(g1.arcs) != len(different.arcs)
            or [t.work for t in g1] != [t.work for t in different]
        )

    def test_random_dag_every_nonroot_has_parent(self):
        graph = build_random_dag(layers=5, width=3, seed=2)
        roots = set(graph.roots())
        for node in graph:
            if node.name not in roots:
                assert graph.predecessors(node.name)

    def test_sweep_instances(self):
        graph = build_sweep_graph(points=6)
        assert graph.task("point").instances == 6

    def test_all_workloads_run_on_vce(self):
        vce = VirtualComputingEnvironment(workstation_cluster(6)).boot()
        for graph in (
            build_pipeline_graph(stages=2, stage_work=2.0, name="w1"),
            build_diamond_graph(width=2, branch_work=3.0, name="w2"),
            build_random_dag(layers=2, width=2, seed=1, name="w3"),
            build_sweep_graph(points=3, work_per_point=2.0, name="w4"),
        ):
            run = vce.submit(graph)
            vce.run_to_completion(run)
            assert run.state is RunState.DONE, graph.name


class TestTimeline:
    def _spans(self):
        from repro.metrics import build_timeline

        vce = VirtualComputingEnvironment(workstation_cluster(3)).boot()
        run = vce.submit(build_pipeline_graph(stages=2, stage_work=5.0))
        vce.run_to_completion(run)
        return build_timeline(vce.sim.log, horizon=vce.sim.now), vce.sim.now

    def test_build_timeline_task_spans(self):
        spans, horizon = self._spans()
        task_spans = [s for s in spans if s.kind == "task"]
        assert len(task_spans) == 2
        for span in task_spans:
            assert 0 <= span.start < span.end <= horizon
            assert span.end - span.start >= 5.0

    def test_render_gantt_shape(self):
        from repro.metrics import render_gantt

        spans, horizon = self._spans()
        chart = render_gantt(spans, horizon, width=40)
        lines = chart.splitlines()
        assert any("#" in line for line in lines[1:])
        # every row has the same drawn width
        widths = {len(line.split("|")[1]) for line in lines[1:]}
        assert widths == {40}

    def test_down_spans(self):
        from repro.metrics import build_timeline, render_gantt

        vce = VirtualComputingEnvironment(workstation_cluster(2)).boot()
        vce.faults.crash_at("ws1", vce.sim.now + 1.0)
        vce.faults.recover_at("ws1", vce.sim.now + 5.0)
        vce.run(until=vce.sim.now + 10.0)
        spans = build_timeline(vce.sim.log, horizon=vce.sim.now)
        downs = [s for s in spans if s.kind == "down"]
        assert len(downs) == 1 and downs[0].host == "ws1"
        assert downs[0].end - downs[0].start == pytest.approx(4.0)
        chart = render_gantt(spans, vce.sim.now, width=30, hosts=["ws0", "ws1"])
        assert "x" in chart

    def test_host_busy_fraction(self):
        from repro.metrics import host_busy_fraction

        spans, horizon = self._spans()
        fractions = host_busy_fraction(spans, horizon)
        assert fractions and all(0 < f <= 1 for f in fractions.values())

    def test_empty_log(self):
        from repro.metrics import build_timeline, render_gantt
        from repro.util.eventlog import EventLog

        spans = build_timeline(EventLog())
        assert spans == []
        assert render_gantt(spans, 0.0) == "(empty timeline)"
