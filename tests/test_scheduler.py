"""Tests for the bidding scheduler: daemons, leaders, policies, queueing."""


from repro.machines import ConstantLoad, MachineClass
from repro.runtime import AppStatus
from repro.scheduler import (
    AgingQueue,
    DaemonConfig,
    ExecutionProgram,
    MachineBid,
    ModuleNeed,
    ResourceRequest,
    greedy_assignment,
    load_sorted_assignment,
    random_assignment,
    round_robin_assignment,
    utilization_first_assignment,
)
from repro.scheduler.execution_program import RunState
from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass
from repro.vmpi import Compute

from tests.helpers_sched import make_vce, workstation_farm, heterogeneous_site


def annotated_graph(name="app", tasks=(("t", 1, 2.0),)):
    spec = ProblemSpecification(name)
    for task, instances, work in tasks:
        spec.task(task, work=work, instances=instances)
    graph = spec.build()
    for node in graph:
        node.problem_class = ProblemClass.ASYNCHRONOUS
        node.language = "py"
        work = node.work

        def program(ctx, w=work):
            yield Compute(w)
            return f"{ctx.task}[{ctx.rank}]"

        node.program = program
    return graph


def launch(vce, graph, class_map=None, **kw):
    """Spawn an ExecutionProgram on the user host; returns its AppRun."""
    if class_map is None:
        class_map = {t.name: MachineClass.WORKSTATION for t in graph}
    done = []
    prog = ExecutionProgram(
        f"exec-{graph.name}",
        graph,
        class_map,
        vce.runtime,
        vce.directory,
        vce.db,
        on_finished=lambda run: done.append(run),
        **kw,
    )
    vce.user_host.spawn(prog)
    return prog.run_handle, done


class TestGroupFormation:
    def test_daemons_form_class_groups(self):
        vce = make_vce(heterogeneous_site())
        assert vce.directory.has_group(MachineClass.WORKSTATION)
        assert vce.directory.has_group(MachineClass.MIMD)
        assert vce.directory.has_group(MachineClass.SIMD)
        assert vce.directory.group_size(MachineClass.WORKSTATION) == 4
        assert vce.directory.group_size(MachineClass.MIMD) == 2

    def test_first_daemon_is_leader(self):
        vce = make_vce(workstation_farm(3))
        leader = vce.leader_of(MachineClass.WORKSTATION)
        assert leader.is_coordinator


class TestBiddingBasics:
    def test_simple_allocation_and_run(self):
        vce = make_vce(workstation_farm(3))
        graph = annotated_graph()
        run, done = launch(vce, graph)
        vce.run(until=vce.sim.now + 60.0)
        assert done and run.state is RunState.DONE
        assert run.app.status is AppStatus.DONE
        assert run.allocation_latency is not None and run.allocation_latency < 5.0

    def test_least_loaded_machine_chosen(self):
        loads = [ConstantLoad(0.6), ConstantLoad(0.05), ConstantLoad(0.3)]
        vce = make_vce(workstation_farm(3, loads=loads))
        graph = annotated_graph()
        run, done = launch(vce, graph)
        vce.run(until=vce.sim.now + 60.0)
        assert run.placement.host_for("t", 0) == "ws1"

    def test_busy_daemons_decline_to_bid(self):
        loads = [ConstantLoad(0.95), ConstantLoad(0.95), ConstantLoad(0.0)]
        vce = make_vce(workstation_farm(3, loads=loads))
        graph = annotated_graph()
        run, done = launch(vce, graph)
        vce.run(until=vce.sim.now + 60.0)
        assert run.state is RunState.DONE
        assert run.placement.host_for("t", 0) == "ws2"
        declines = vce.sim.log.records(category="sched.decline")
        assert len(declines) >= 2

    def test_insufficient_resources_alloc_error(self):
        vce = make_vce(workstation_farm(2))
        graph = annotated_graph(tasks=(("t", 5, 1.0),))  # needs 5, only 2 machines
        run, done = launch(vce, graph)
        vce.run(until=vce.sim.now + 30.0)
        assert run.state is RunState.FAILED
        assert "allocation error" in run.error
        errors = vce.sim.log.records(category="sched.alloc_error")
        assert errors and errors[0].get("requested") == 5

    def test_no_group_for_class_fails(self):
        vce = make_vce(workstation_farm(2))
        graph = annotated_graph()
        run, done = launch(vce, graph, class_map={"t": MachineClass.SIMD})
        vce.run(until=vce.sim.now + 10.0)
        assert run.state is RunState.FAILED
        assert "no" in run.error and "group" in run.error

    def test_multi_instance_spread_across_machines(self):
        vce = make_vce(workstation_farm(4))
        graph = annotated_graph(tasks=(("t", 3, 1.0),))
        run, done = launch(vce, graph)
        vce.run(until=vce.sim.now + 60.0)
        assert run.state is RunState.DONE
        hosts = {run.placement.host_for("t", r) for r in range(3)}
        assert len(hosts) == 3  # one instance per machine

    def test_local_directive_runs_on_user_workstation(self):
        vce = make_vce(workstation_farm(2))
        graph = annotated_graph(tasks=(("remote", 1, 1.0), ("display", 1, 0.5)))
        run, done = launch(
            vce,
            graph,
            class_map={"remote": MachineClass.WORKSTATION, "display": None},
        )
        vce.run(until=vce.sim.now + 60.0)
        assert run.state is RunState.DONE
        assert run.placement.host_for("display", 0) == "user"
        assert run.placement.host_for("remote", 0) != "user"

    def test_heterogeneous_multigroup_allocation(self):
        vce = make_vce(heterogeneous_site())
        graph = annotated_graph(
            tasks=(("collector", 2, 1.0), ("predictor", 1, 5.0), ("display", 1, 0.2))
        )
        run, done = launch(
            vce,
            graph,
            class_map={
                "collector": MachineClass.WORKSTATION,
                "predictor": MachineClass.SIMD,
                "display": None,
            },
        )
        vce.run(until=vce.sim.now + 120.0)
        assert run.state is RunState.DONE
        assert run.placement.host_for("predictor", 0).startswith("simd")

    def test_execution_info_and_terminate_notices(self):
        vce = make_vce(workstation_farm(3))
        graph = annotated_graph()
        run, done = launch(vce, graph)
        vce.run(until=vce.sim.now + 60.0)
        machine = run.placement.host_for("t", 0)
        daemon = vce.daemon_on(machine)
        # after termination the daemon's hosted table is cleared
        assert daemon.hosted == {}
        hostings = vce.sim.log.records(category="sched.hosting")
        releases = vce.sim.log.records(category="sched.released")
        assert hostings and releases

    def test_instance_range_uses_available_machines(self):
        vce = make_vce(workstation_farm(3))
        graph = annotated_graph(tasks=(("t", 1, 1.0),))
        run, done = launch(vce, graph, ranges={"t": (1, 5)})  # "ASYNC 5-"
        vce.run(until=vce.sim.now + 60.0)
        assert run.state is RunState.DONE
        # 3 machines available -> 3 instances chosen
        assert graph.task("t").instances == 3


class TestLeaderFailover:
    def test_request_succeeds_after_leader_crash(self):
        vce = make_vce(workstation_farm(4))
        leader = vce.leader_of(MachineClass.WORKSTATION)
        vce.net.host(leader.machine.name).crash()
        vce.run(until=vce.sim.now + 30.0)  # let takeover finish
        graph = annotated_graph()
        run, done = launch(vce, graph)
        vce.run(until=vce.sim.now + 60.0)
        assert run.state is RunState.DONE
        assert run.placement.host_for("t", 0) != leader.machine.name

    def test_stale_leader_request_forwarded(self):
        # Crash the leader *after* directory lookup by sending through a
        # non-leader daemon: daemon forwards to its coordinator.
        vce = make_vce(workstation_farm(3))
        leader = vce.leader_of(MachineClass.WORKSTATION)
        non_leader = next(
            d for d in vce.daemons.values() if d.address != leader.address
        )
        replies = []

        class Probe:
            pass

        # send a request directly to a non-leader; it must forward
        from repro.netsim import SimProcess

        class Requester(SimProcess):
            def on_start(self):
                req = ResourceRequest(
                    req_id="r1",
                    app="a",
                    machine_class=MachineClass.WORKSTATION,
                    modules=(ModuleNeed("t", 1, 1),),
                    reply_to=self.address,
                )
                self.send(non_leader.address, req, size=512)

            def on_message(self, src, payload):
                replies.append(payload)

        vce.user_host.spawn(Requester("req"))
        vce.run(until=vce.sim.now + 30.0)
        assert replies, "forwarded request never answered"


class TestQueueingAndAging:
    def test_queued_request_eventually_served(self):
        # one machine, one long-running app occupying it, second app queues
        vce = make_vce(
            workstation_farm(1),
            daemon_config=DaemonConfig(per_instance_load=0.9, retry_interval=1.0),
        )
        g1 = annotated_graph(name="first", tasks=(("t", 1, 20.0),))
        r1, d1 = launch(vce, g1)
        vce.run(until=vce.sim.now + 5.0)
        assert r1.state is RunState.RUNNING
        g2 = annotated_graph(name="second", tasks=(("t", 1, 1.0),))
        r2, d2 = launch(vce, g2, queue_if_insufficient=True)
        vce.run(until=vce.sim.now + 120.0)
        assert r1.state is RunState.DONE
        assert r2.state is RunState.DONE, f"queued app never ran: {r2.error}"
        assert vce.sim.log.records(category="sched.retry")

    def test_aging_queue_orders_by_effective_priority(self):
        q = AgingQueue(aging_rate=1.0)
        low = ResourceRequest("a", "app1", MachineClass.WORKSTATION, (), None, priority=0.0)
        high = ResourceRequest("b", "app2", MachineClass.WORKSTATION, (), None, priority=5.0)
        q.push(low, now=0.0)
        q.push(high, now=0.0)
        # immediately: high priority wins
        assert q.peek(now=0.1).request.req_id == "b"

    def test_aging_lets_old_low_priority_overtake(self):
        q = AgingQueue(aging_rate=1.0)
        q.push(ResourceRequest("old", "a", MachineClass.WORKSTATION, (), None, priority=0.0), now=0.0)
        q.push(ResourceRequest("new", "b", MachineClass.WORKSTATION, (), None, priority=5.0), now=10.0)
        # at t=20: old has prio 20, new has 15
        assert q.peek(now=20.0).request.req_id == "old"

    def test_no_aging_starves(self):
        q = AgingQueue(aging_rate=0.0)
        q.push(ResourceRequest("old", "a", MachineClass.WORKSTATION, (), None, priority=0.0), now=0.0)
        q.push(ResourceRequest("new", "b", MachineClass.WORKSTATION, (), None, priority=5.0), now=1000.0)
        assert q.peek(now=10_000.0).request.req_id == "new"

    def test_queue_remove_and_wait_times(self):
        q = AgingQueue()
        q.push(ResourceRequest("x", "a", MachineClass.WORKSTATION, (), None), now=0.0)
        assert q.wait_times(now=4.0) == [4.0]
        assert q.remove("x") and not q.remove("x")
        assert len(q) == 0


def bids(*specs):
    """specs: (machine, load) or (machine, load, speed)."""
    return [
        MachineBid(m, None, l, (s[0] if s else 1.0), MachineClass.WORKSTATION)
        for m, l, *s in specs
    ]


class TestPolicies:
    def test_load_sorted_prefers_least_loaded(self):
        needs = [("t", 0, ["a", "b", "c"])]
        out = load_sorted_assignment(needs, bids(("a", 0.5), ("b", 0.1), ("c", 0.3)))
        assert out[("t", 0)] == "b"

    def test_load_sorted_tie_breaks_by_speed(self):
        needs = [("t", 0, ["a", "b"])]
        out = load_sorted_assignment(needs, bids(("a", 0.2, 1.0), ("b", 0.2, 4.0)))
        assert out[("t", 0)] == "b"

    def test_greedy_can_strand_constrained_task(self):
        # the §4.3 machine-A scenario: flexible task first takes machine A
        needs = [
            ("flexible", 0, ["A", "B"]),  # runs fastest on A
            ("constrained", 0, ["A"]),  # can ONLY run on A
        ]
        out = greedy_assignment(needs, bids(("A", 0.0), ("B", 0.0)))
        assert out[("flexible", 0)] == "A"
        assert ("constrained", 0) not in out  # stranded!

    def test_utilization_first_serves_constrained_task(self):
        needs = [
            ("flexible", 0, ["A", "B"]),
            ("constrained", 0, ["A"]),
        ]
        out = utilization_first_assignment(needs, bids(("A", 0.0), ("B", 0.0)))
        assert out[("constrained", 0)] == "A"
        assert out[("flexible", 0)] == "B"

    def test_utilization_first_makes_flexible_wait_if_needed(self):
        # only machine A exists: the flexible task must wait (unassigned)
        needs = [
            ("flexible", 0, ["A"]),
            ("constrained", 0, ["A"]),
        ]
        out = utilization_first_assignment(needs, bids(("A", 0.0)))
        assert out == {("constrained", 0): "A"}

    def test_random_assignment_deterministic_with_rng(self):
        import random

        needs = [("t", r, ["a", "b", "c"]) for r in range(2)]
        b = bids(("a", 0.0), ("b", 0.0), ("c", 0.0))
        o1 = random_assignment(needs, b, random.Random(3))
        o2 = random_assignment(needs, b, random.Random(3))
        assert o1 == o2

    def test_round_robin_cycles(self):
        needs = [("t", r, ["a", "b", "c"]) for r in range(3)]
        out = round_robin_assignment(needs, bids(("a", 0.0), ("b", 0.0), ("c", 0.0)))
        assert set(out.values()) == {"a", "b", "c"}

    def test_policies_respect_feasibility(self):
        needs = [("t", 0, ["b"])]
        b = bids(("a", 0.0), ("b", 0.9))
        for policy in (
            load_sorted_assignment,
            greedy_assignment,
            utilization_first_assignment,
            round_robin_assignment,
        ):
            assert policy(needs, b) == {("t", 0): "b"}, policy.__name__


class TestAllocationRetry:
    def test_leader_crash_mid_allocation_retried(self):
        """The leader dies after receiving the request but before replying;
        the execution program's timeout retransmits to the successor."""
        vce = make_vce(workstation_farm(4))
        leader = vce.leader_of(MachineClass.WORKSTATION)
        # crash the leader while the request is on the wire / mid-bidding,
        # before any AllocationReply can leave it
        graph = annotated_graph()
        run, done = launch(vce, graph)
        vce.sim.schedule(0.002, lambda: vce.net.host(leader.machine.name).crash())
        vce.run(until=vce.sim.now + 120.0)
        assert run.state is RunState.DONE, run.error
        assert run.placement.host_for("t", 0) != leader.machine.name
        retries = vce.sim.log.records(category="exec.retry_request")
        assert retries, "the retry path never fired"
