"""Helpers to stand up a full VCE (daemons + directory + runtime) in tests
and benchmarks.

Machine *composition* lives in :mod:`repro.core.cluster` — the helpers here
only add what tests need on top: per-machine load/speed overrides
(:func:`workstation_farm`), the low-level daemon wiring of
:func:`make_vce` for tests that poke at scheduler internals, and
:func:`make_full_vce` for tests that want the real
:class:`~repro.core.environment.VirtualComputingEnvironment` facade
(tenancy, hierarchy, telemetry) on a small cluster.
"""

from __future__ import annotations

from repro.core import VCEConfig, VirtualComputingEnvironment
from repro.core.cluster import heterogeneous_cluster, workstation_cluster
from repro.machines import Machine, MachineClass, MachineDatabase
from repro.netsim import Network, Simulator
from repro.runtime import RuntimeManager
from repro.scheduler import DaemonConfig, GroupDirectory, SchedulerDaemon
from repro.isis import IsisConfig


class VCECluster:
    """A booted VCE: hosts, machines, daemons, directory, runtime."""

    def __init__(self, sim, net, db, directory, runtime, daemons, user_host):
        self.sim = sim
        self.net = net
        self.db = db
        self.directory = directory
        self.runtime = runtime
        self.daemons = daemons  # machine name -> SchedulerDaemon
        self.user_host = user_host

    def run(self, until=None, **kw):
        return self.sim.run(until=until, **kw)

    def daemon_on(self, machine_name):
        return self.daemons[machine_name]

    def leader_of(self, arch_class):
        addr = self.directory.leader(arch_class)
        return self.daemons[addr.host]


def wire_machines(net: Network, db: MachineDatabase, machines) -> dict:
    """Register *machines* onto *net* hosts and into *db*; returns
    machine name -> Host. The one wiring loop every cluster builder
    shares (the environment facade has its own copy because it also
    spawns daemons inline)."""
    hosts = {}
    for machine in machines:
        host = net.add_host(machine.name, speed=machine.speed)
        host.machine = machine
        db.register(machine)
        hosts[machine.name] = host
    return hosts


def make_vce(
    machines=None,
    seed=0,
    daemon_config=None,
    isis_config=None,
    settle=15.0,
    binary_service=None,
):
    """Boot a VCE cluster.

    Args:
        machines: list of Machine objects (default: 4 idle workstations).
        settle: simulation time allotted for group formation.
    """
    sim = Simulator(seed)
    net = Network(sim)
    db = MachineDatabase()
    directory = GroupDirectory()
    runtime = RuntimeManager(sim, net, binary_service=binary_service)
    daemon_config = daemon_config or DaemonConfig()
    isis_config = isis_config or IsisConfig()

    if machines is None:
        machines = workstation_cluster(4)

    hosts = wire_machines(net, db, machines)
    daemons = {}
    first_of_class = {}
    for machine in machines:
        contacts = None
        if machine.arch_class in first_of_class:
            contacts = [first_of_class[machine.arch_class]]
        daemon = SchedulerDaemon(
            "vced", machine, directory, contacts, daemon_config, isis_config
        )
        hosts[machine.name].spawn(daemon)
        if machine.arch_class not in first_of_class:
            first_of_class[machine.arch_class] = daemon.address
        daemons[machine.name] = daemon

    user_host = net.add_host("user")
    user_host.machine = Machine("user", MachineClass.WORKSTATION)
    # the user workstation is not registered as a biddable machine

    sim.run(until=settle)
    return VCECluster(sim, net, db, directory, runtime, daemons, user_host)


def make_full_vce(
    n_machines=8,
    seed=0,
    fanout=1,
    settle=20.0,
    machines=None,
    **config_kw,
) -> VirtualComputingEnvironment:
    """Boot the real environment facade on a small workstation cluster —
    the builder for hierarchy/tenancy/soak tests (``leader_fanout``,
    ``tenants=``, backend selection all flow through *config_kw*)."""
    config = VCEConfig(
        seed=seed, leader_fanout=fanout, settle_time=settle, **config_kw
    )
    return VirtualComputingEnvironment(
        machines if machines is not None else workstation_cluster(n_machines),
        config,
    ).boot()


def workstation_farm(n, loads=None, speeds=None):
    """n workstation Machine objects with optional per-machine load/speed.

    With neither override this is exactly
    :func:`repro.core.cluster.workstation_cluster`.
    """
    if loads is None and speeds is None:
        return workstation_cluster(n)
    machines = workstation_cluster(n)
    out = []
    for i, machine in enumerate(machines):
        out.append(
            Machine(
                machine.name,
                machine.arch_class,
                speed=(speeds[i] if speeds else machine.speed),
                background_load=(loads[i] if loads else machine.background_load),
                memory_mb=machine.memory_mb,
            )
        )
    return out


def heterogeneous_site(n_ws=4, n_mimd=2, n_simd=1):
    """The paper's 'typical heterogeneous environment': a workstation
    group, a MIMD group and a SIMD group (delegates to
    :func:`repro.core.cluster.heterogeneous_cluster`)."""
    return heterogeneous_cluster(n_ws, n_mimd, n_simd)
