"""Helpers to stand up a full VCE (daemons + directory + runtime) in tests
and benchmarks."""

from __future__ import annotations


from repro.machines import ConstantLoad, Machine, MachineClass, MachineDatabase
from repro.netsim import Network, Simulator
from repro.runtime import RuntimeManager
from repro.scheduler import DaemonConfig, GroupDirectory, SchedulerDaemon
from repro.isis import IsisConfig


class VCECluster:
    """A booted VCE: hosts, machines, daemons, directory, runtime."""

    def __init__(self, sim, net, db, directory, runtime, daemons, user_host):
        self.sim = sim
        self.net = net
        self.db = db
        self.directory = directory
        self.runtime = runtime
        self.daemons = daemons  # machine name -> SchedulerDaemon
        self.user_host = user_host

    def run(self, until=None, **kw):
        return self.sim.run(until=until, **kw)

    def daemon_on(self, machine_name):
        return self.daemons[machine_name]

    def leader_of(self, arch_class):
        addr = self.directory.leader(arch_class)
        return self.daemons[addr.host]


def make_vce(
    machines=None,
    seed=0,
    daemon_config=None,
    isis_config=None,
    settle=15.0,
    binary_service=None,
):
    """Boot a VCE cluster.

    Args:
        machines: list of Machine objects (default: 4 idle workstations).
        settle: simulation time allotted for group formation.
    """
    sim = Simulator(seed)
    net = Network(sim)
    db = MachineDatabase()
    directory = GroupDirectory()
    runtime = RuntimeManager(sim, net, binary_service=binary_service)
    daemon_config = daemon_config or DaemonConfig()
    isis_config = isis_config or IsisConfig()

    if machines is None:
        machines = [
            Machine(f"ws{i}", MachineClass.WORKSTATION, background_load=ConstantLoad(0.0))
            for i in range(4)
        ]

    daemons = {}
    first_of_class = {}
    for machine in machines:
        host = net.add_host(machine.name, speed=machine.speed)
        host.machine = machine
        db.register(machine)
        contacts = None
        if machine.arch_class in first_of_class:
            contacts = [first_of_class[machine.arch_class]]
        daemon = SchedulerDaemon(
            "vced", machine, directory, contacts, daemon_config, isis_config
        )
        host.spawn(daemon)
        if machine.arch_class not in first_of_class:
            first_of_class[machine.arch_class] = daemon.address
        daemons[machine.name] = daemon

    user_host = net.add_host("user")
    user_host.machine = Machine("user", MachineClass.WORKSTATION)
    # the user workstation is not registered as a biddable machine

    sim.run(until=settle)
    return VCECluster(sim, net, db, directory, runtime, daemons, user_host)


def workstation_farm(n, loads=None, speeds=None):
    """n workstation Machine objects with optional per-machine load/speed."""
    out = []
    for i in range(n):
        out.append(
            Machine(
                f"ws{i}",
                MachineClass.WORKSTATION,
                speed=(speeds[i] if speeds else 1.0),
                background_load=(loads[i] if loads else ConstantLoad(0.0)),
                memory_mb=256,
            )
        )
    return out


def heterogeneous_site(n_ws=4, n_mimd=2, n_simd=1):
    """The paper's 'typical heterogeneous environment': a workstation
    group, a MIMD group and a SIMD group."""
    machines = workstation_farm(n_ws)
    for i in range(n_mimd):
        machines.append(Machine(f"mimd{i}", MachineClass.MIMD, speed=10.0, memory_mb=2048))
    for i in range(n_simd):
        machines.append(Machine(f"simd{i}", MachineClass.SIMD, speed=40.0, memory_mb=4096))
    return machines
