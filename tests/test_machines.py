"""Tests for machine classes, load models, Machine, and MachineDatabase."""

import pytest
from hypothesis import given, strategies as st

from repro.machines import (
    ConstantLoad,
    Machine,
    MachineClass,
    MachineDatabase,
    StochasticLoad,
    TraceLoad,
)
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStreams


class TestMachineClass:
    def test_parse_case_insensitive(self):
        assert MachineClass.parse("simd") is MachineClass.SIMD
        assert MachineClass.parse(" Workstation ") is MachineClass.WORKSTATION

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown machine class"):
            MachineClass.parse("QUANTUM")

    def test_str(self):
        assert str(MachineClass.MIMD) == "MIMD"


class TestLoadModels:
    def test_constant(self):
        assert ConstantLoad(0.3).load(999.0) == 0.3

    def test_constant_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantLoad(1.5)

    def test_trace_steps(self):
        trace = TraceLoad([(10.0, 0.8), (20.0, 0.2)], initial=0.0)
        assert trace.load(5.0) == 0.0
        assert trace.load(10.0) == 0.8
        assert trace.load(15.0) == 0.8
        assert trace.load(25.0) == 0.2

    def test_trace_unsorted_input_ok(self):
        trace = TraceLoad([(20.0, 0.2), (10.0, 0.8)])
        assert trace.load(15.0) == 0.8

    def test_stochastic_two_levels_only(self):
        load = StochasticLoad(RngStreams(1), "m", mean_idle=5, mean_busy=5, busy_level=0.7)
        values = {load.load(t * 3.0) for t in range(200)}
        assert values <= {0.0, 0.7}
        assert len(values) == 2  # both states visited over a long horizon

    def test_stochastic_deterministic(self):
        a = StochasticLoad(RngStreams(9), "m")
        b = StochasticLoad(RngStreams(9), "m")
        assert [a.load(t * 10.0) for t in range(50)] == [b.load(t * 10.0) for t in range(50)]

    def test_stochastic_start_busy(self):
        load = StochasticLoad(RngStreams(1), "m", start_busy=True, busy_level=0.9)
        assert load.load(0.0) == 0.9

    def test_stochastic_next_change_after(self):
        load = StochasticLoad(RngStreams(1), "m")
        t1 = load.next_change_after(0.0)
        assert t1 > 0.0
        before, after = load.load(t1 - 1e-9), load.load(t1)
        assert before != after

    def test_stochastic_validation(self):
        with pytest.raises(ConfigurationError):
            StochasticLoad(RngStreams(1), "m", mean_idle=0)

    @given(st.floats(min_value=0, max_value=1e4))
    def test_stochastic_load_in_range(self, t):
        load = StochasticLoad(RngStreams(4), "p", busy_level=0.85)
        assert load.load(t) in (0.0, 0.85)


class TestMachine:
    def test_defaults(self):
        m = Machine("ws1", MachineClass.WORKSTATION)
        assert m.object_code_format == "workstation-elf"
        assert m.load_at(0.0) == 0.0
        assert m.effective_speed(0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Machine("bad", MachineClass.SIMD, speed=0)
        with pytest.raises(ConfigurationError):
            Machine("bad", MachineClass.SIMD, memory_mb=0)

    def test_effective_speed_under_load(self):
        m = Machine("ws", MachineClass.WORKSTATION, speed=2.0, background_load=ConstantLoad(0.25))
        assert m.effective_speed(0.0) == pytest.approx(1.5)

    def test_satisfies_arch_and_memory(self):
        m = Machine("cm5", MachineClass.SIMD, memory_mb=1024)
        assert m.satisfies({"arch_class": MachineClass.SIMD, "min_memory_mb": 512})
        assert m.satisfies({"arch_class": "simd"})
        assert not m.satisfies({"arch_class": MachineClass.MIMD})
        assert not m.satisfies({"min_memory_mb": 2048})

    def test_satisfies_files_and_attributes(self):
        m = Machine(
            "ws",
            MachineClass.WORKSTATION,
            files={"a.dat", "b.dat"},
            attributes={"graphics": True},
        )
        assert m.satisfies({"files": ["a.dat"]})
        assert not m.satisfies({"files": ["c.dat"]})
        assert m.satisfies({"graphics": True})
        assert not m.satisfies({"graphics": False})
        assert not m.satisfies({"fpu": "vector"})

    def test_satisfies_os(self):
        m = Machine("ws", MachineClass.WORKSTATION, os="unix")
        assert m.satisfies({"os": "unix"})
        assert not m.satisfies({"os": "vms"})

    def test_binary_compatibility(self):
        a = Machine("a", MachineClass.WORKSTATION)
        b = Machine("b", MachineClass.WORKSTATION)
        c = Machine("c", MachineClass.SIMD)
        assert a.binary_compatible_with(b)
        assert not a.binary_compatible_with(c)

    def test_custom_object_code_format(self):
        a = Machine("a", MachineClass.WORKSTATION, object_code_format="sparc")
        b = Machine("b", MachineClass.WORKSTATION, object_code_format="mips")
        assert not a.binary_compatible_with(b)


class TestMachineDatabase:
    def _db(self):
        db = MachineDatabase()
        db.register(Machine("ws1", MachineClass.WORKSTATION, memory_mb=64))
        db.register(Machine("ws2", MachineClass.WORKSTATION, memory_mb=256))
        db.register(Machine("cm5", MachineClass.SIMD, speed=50, memory_mb=4096))
        db.register(Machine("cube", MachineClass.MIMD, speed=20, memory_mb=2048))
        return db

    def test_register_and_lookup(self):
        db = self._db()
        assert len(db) == 4
        assert "ws1" in db
        assert db.get("cm5").speed == 50

    def test_duplicate_rejected(self):
        db = self._db()
        with pytest.raises(ConfigurationError):
            db.register(Machine("ws1", MachineClass.WORKSTATION))

    def test_unknown_get(self):
        with pytest.raises(ConfigurationError):
            self._db().get("nope")

    def test_machines_in_class(self):
        db = self._db()
        names = {m.name for m in db.machines_in_class(MachineClass.WORKSTATION)}
        assert names == {"ws1", "ws2"}
        assert db.machines_in_class(MachineClass.VECTOR) == []

    def test_classes_present_and_counts(self):
        db = self._db()
        assert db.classes_present() == {
            MachineClass.WORKSTATION,
            MachineClass.SIMD,
            MachineClass.MIMD,
        }
        assert db.class_counts()[MachineClass.WORKSTATION] == 2

    def test_find_by_requirements(self):
        db = self._db()
        big = db.find({"min_memory_mb": 1024})
        assert {m.name for m in big} == {"cm5", "cube"}

    def test_feasible_classes(self):
        db = self._db()
        assert db.feasible_classes({"min_memory_mb": 1024}) == {
            MachineClass.SIMD,
            MachineClass.MIMD,
        }
        assert db.feasible_classes({"min_memory_mb": 10**6}) == set()

    def test_unregister(self):
        db = self._db()
        db.unregister("ws1")
        assert "ws1" not in db
        assert {m.name for m in db.machines_in_class(MachineClass.WORKSTATION)} == {"ws2"}
        db.unregister("ws1")  # idempotent

    def test_iteration(self):
        assert {m.name for m in self._db()} == {"ws1", "ws2", "cm5", "cube"}
