"""Tests for channels, ports, splitting/interposition, and redirection."""

import pytest

from repro.channels import (
    AuthenticationInterposer,
    ChannelDelivery,
    ChannelManager,
    DataConversionInterposer,
    Port,
    PortDirection,
)
from repro.netsim import Address, Network, SimProcess, Simulator
from repro.util.errors import CommunicationError


class Sink(SimProcess):
    """Records channel deliveries."""

    def __init__(self, name):
        super().__init__(name)
        self.got = []

    def on_message(self, src, payload):
        if isinstance(payload, ChannelDelivery):
            self.got.append((self.now, payload))


def rig(n_receivers=2, seed=0):
    sim = Simulator(seed)
    net = Network(sim)
    mgr = ChannelManager(net)
    chan = mgr.create("data")
    sender_host = net.add_host("sender-host")
    sender = Sink("sender")
    sender_host.spawn(sender)
    send_port = Port("tx", Address("sender-host", "sender"), PortDirection.SEND)
    chan.attach(send_port)
    sinks = []
    for i in range(n_receivers):
        host = net.add_host(f"rh{i}")
        sink = Sink(f"sink{i}")
        host.spawn(sink)
        chan.attach(Port(f"rx{i}", sink.address, PortDirection.RECEIVE))
        sinks.append(sink)
    return sim, net, mgr, chan, send_port, sinks


class TestChannelBasics:
    def test_group_delivery_to_all_receivers(self):
        sim, net, mgr, chan, tx, sinks = rig(3)
        chan.send(tx, {"v": 1}, size=100)
        sim.run()
        for sink in sinks:
            assert len(sink.got) == 1
            assert sink.got[0][1].data == {"v": 1}
            assert sink.got[0][1].sender_port == "tx"

    def test_directed_delivery_single_receiver(self):
        sim, net, mgr, chan, tx, sinks = rig(3)
        chan.send(tx, "solo", to="rx1")
        sim.run()
        assert [len(s.got) for s in sinks] == [0, 1, 0]

    def test_directed_to_unknown_port_drops(self):
        sim, net, mgr, chan, tx, sinks = rig(2)
        chan.send(tx, "x", to="ghost")
        sim.run()
        assert all(not s.got for s in sinks)
        assert chan.dropped_no_receiver == 1

    def test_no_receivers_drop_counted(self):
        sim = Simulator()
        net = Network(sim)
        chan = ChannelManager(net).create("c")
        host = net.add_host("h")
        p = Sink("p")
        host.spawn(p)
        chan.send(Port("tx", p.address, PortDirection.SEND), "data")
        sim.run()
        assert chan.dropped_no_receiver == 1

    def test_counters(self):
        sim, net, mgr, chan, tx, sinks = rig(2)
        chan.send(tx, "a", size=10)
        chan.send(tx, "b", size=20)
        sim.run()
        assert chan.messages == 2 and chan.bytes == 30

    def test_duplicate_port_rejected(self):
        sim, net, mgr, chan, tx, sinks = rig(1)
        with pytest.raises(CommunicationError):
            chan.attach(Port("rx0", sinks[0].address, PortDirection.RECEIVE))

    def test_same_name_opposite_directions_ok(self):
        sim, net, mgr, chan, tx, sinks = rig(1)
        chan.attach(Port("rx0", sinks[0].address, PortDirection.SEND))  # no raise

    def test_detach_stops_delivery(self):
        sim, net, mgr, chan, tx, sinks = rig(2)
        chan.detach("rx0")
        chan.send(tx, "x")
        sim.run()
        assert not sinks[0].got and sinks[1].got


class TestRedirection:
    def test_rebind_moves_deliveries(self):
        sim, net, mgr, chan, tx, sinks = rig(1)
        new_host = net.add_host("new-host")
        replacement = Sink("replacement")
        new_host.spawn(replacement)
        chan.rebind("rx0", replacement.address)
        chan.send(tx, "after-move")
        sim.run()
        assert not sinks[0].got
        assert replacement.got and replacement.got[0][1].data == "after-move"

    def test_rebind_unknown_port_raises(self):
        sim, net, mgr, chan, tx, sinks = rig(1)
        with pytest.raises(CommunicationError):
            chan.rebind("ghost", sinks[0].address)

    def test_rebind_everywhere(self):
        sim = Simulator()
        net = Network(sim)
        mgr = ChannelManager(net)
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        old, new = Sink("old"), Sink("new")
        h1.spawn(old)
        h2.spawn(new)
        c1, c2 = mgr.create("c1"), mgr.create("c2")
        c1.attach(Port("p", old.address, PortDirection.RECEIVE))
        c2.attach(Port("q", old.address, PortDirection.RECEIVE))
        moved = mgr.rebind_everywhere(old.address, new.address)
        assert moved == 2
        tx = Port("tx", old.address, PortDirection.SEND)
        c1.send(tx, 1)
        c2.send(tx, 2)
        sim.run()
        assert len(new.got) == 2 and not old.got


class TestInterposition:
    def test_identity_interposer_passes_through(self):
        from repro.channels.interpose import Interposer

        sim, net, mgr, chan, tx, sinks = rig(2)
        ihost = net.add_host("ihost")
        inter = Interposer("relay")
        ihost.spawn(inter)
        chan.split(inter)
        sim.run()  # let interposer start
        chan.send(tx, "through")
        sim.run()
        for sink in sinks:
            assert sink.got and sink.got[0][1].data == "through"
        assert inter.processed == 1

    def test_unspawned_interposer_rejected(self):
        from repro.channels.interpose import Interposer

        sim, net, mgr, chan, tx, sinks = rig(1)
        with pytest.raises(CommunicationError):
            chan.split(Interposer("floating"))

    def test_authentication_drops_unlisted_sender(self):
        sim, net, mgr, chan, tx, sinks = rig(1)
        ihost = net.add_host("ihost")
        auth = AuthenticationInterposer("auth", allowed_senders={"trusted"})
        ihost.spawn(auth)
        chan.split(auth)
        sim.run()
        chan.send(tx, "bad")  # tx port name is "tx", not allowed
        sim.run()
        assert not sinks[0].got
        assert auth.dropped == 1
        trusted = Port("trusted", tx.owner, PortDirection.SEND)
        chan.attach(trusted)
        chan.send(trusted, "good")
        sim.run()
        assert sinks[0].got and sinks[0].got[0][1].data == "good"

    def test_data_conversion_charges_delay_and_resizes(self):
        sim, net, mgr, chan, tx, sinks = rig(1)
        ihost = net.add_host("ihost")
        conv = DataConversionInterposer(
            "conv", seconds_per_byte=1e-3, size_factor=2.0, convert=lambda d: d.upper()
        )
        ihost.spawn(conv)
        chan.split(conv)
        sim.run()
        t0 = sim.now
        chan.send(tx, "abc", size=1000)
        sim.run()
        delivery = sinks[0].got[0]
        assert delivery[1].data == "ABC"
        assert delivery[1].size == 2000
        assert delivery[0] - t0 >= 1.0  # 1000 bytes * 1e-3 s/byte

    def test_chained_interposers_apply_in_order(self):
        sim, net, mgr, chan, tx, sinks = rig(1)
        h1, h2 = net.add_host("i1"), net.add_host("i2")
        first = DataConversionInterposer("first", convert=lambda d: d + "-1")
        second = DataConversionInterposer("second", convert=lambda d: d + "-2")
        h1.spawn(first)
        h2.spawn(second)
        chan.split(first)
        chan.split(second)
        sim.run()
        chan.send(tx, "m")
        sim.run()
        assert sinks[0].got[0][1].data == "m-1-2"

    def test_interposer_single_channel_constraint(self):
        from repro.channels.interpose import Interposer

        sim, net, mgr, chan, tx, sinks = rig(1)
        other = mgr.create("other")
        ihost = net.add_host("ihost")
        inter = Interposer("i")
        ihost.spawn(inter)
        chan.split(inter)
        with pytest.raises(CommunicationError):
            other.split(inter)

    def test_split_preserves_directed_sends(self):
        from repro.channels.interpose import Interposer

        sim, net, mgr, chan, tx, sinks = rig(3)
        ihost = net.add_host("ihost")
        inter = Interposer("relay")
        ihost.spawn(inter)
        chan.split(inter)
        sim.run()
        chan.send(tx, "only-1", to="rx1")
        sim.run()
        assert [len(s.got) for s in sinks] == [0, 1, 0]


class TestChannelManager:
    def test_create_get_destroy(self):
        mgr = ChannelManager(Network(Simulator()))
        chan = mgr.create("c")
        assert mgr.get("c") is chan
        assert "c" in mgr and len(mgr) == 1
        mgr.destroy("c")
        assert "c" not in mgr

    def test_duplicate_create_rejected(self):
        mgr = ChannelManager(Network(Simulator()))
        mgr.create("c")
        with pytest.raises(CommunicationError):
            mgr.create("c")

    def test_get_unknown_raises(self):
        with pytest.raises(CommunicationError):
            ChannelManager(Network(Simulator())).get("nope")

    def test_get_or_create(self):
        mgr = ChannelManager(Network(Simulator()))
        a = mgr.get_or_create("c")
        assert mgr.get_or_create("c") is a
