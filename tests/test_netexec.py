"""Unit and integration tests for the network execution backend.

Three layers, matching the netexec stack:

- **codec** — framing and the restricted unpickler: hypothesis-fuzzed
  round-trips through :class:`~repro.netexec.codec.FrameDecoder` under
  arbitrary TCP chunking, plus every rejection path (bad magic, CRC
  mismatch, oversized length, truncated pickle, disallowed globals).
- **transport** — in-process :class:`FrameRouter`/:class:`DaemonConnection`
  pairs over real localhost sockets: handshake, routing, bare frames,
  reconnect-with-Hello-resend, disconnect detection, and the
  bind-failure / unreachable-supervisor error paths.
- **real processes** (``network`` marker) — a supervisor SIGKILLs a real
  daemon mid-task with eager detection off, so recovery must come from
  the pure lease-expiry path.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.netexec import codec
from repro.netexec.frames import (
    Envelope,
    Heartbeat,
    Hello,
    Ping,
    TaskAssignment,
    TaskDone,
    WorkloadSpec,
)
from repro.netexec.transport import DaemonConnection, FrameRouter, TransportError
from repro.netsim.host import Address

# --------------------------------------------------------------------- codec

_names = st.text(
    st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=12
)

_frames = st.one_of(
    st.builds(
        Hello,
        host=_names,
        machine_name=_names,
        arch_class=st.sampled_from(["WORKSTATION", "VECTOR", "PARALLEL"]),
        speed=st.floats(0.1, 10.0, allow_nan=False),
        pid=st.integers(1, 2**31),
        incarnation=st.integers(0, 50),
    ),
    st.builds(Heartbeat, host=_names, load=st.integers(0, 64), running=st.integers(0, 64)),
    st.builds(
        TaskAssignment,
        app=_names,
        task=_names,
        rank=st.integers(0, 16),
        epoch=st.integers(0, 16),
        work=st.floats(0.0, 100.0, allow_nan=False),
        trace=st.tuples(st.tuples(st.just("trace_id"), _names)),
    ),
    st.builds(
        TaskDone,
        app=_names,
        task=_names,
        rank=st.integers(0, 16),
        epoch=st.integers(0, 16),
        result=st.one_of(st.none(), st.integers(), st.floats(allow_nan=False), _names),
    ),
    st.builds(Ping, nonce=st.integers(0, 2**32), body=st.binary(max_size=256)),
)


class TestCodec:
    @given(messages=st.lists(_frames, min_size=1, max_size=6), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_survives_arbitrary_chunking(self, messages, data):
        """However TCP slices the stream, the decoder reassembles exactly
        the frames that were encoded, in order."""
        wire = b"".join(codec.encode(m) for m in messages)
        dec = codec.FrameDecoder()
        out = []
        pos = 0
        while pos < len(wire):
            size = data.draw(st.integers(1, max(1, len(wire) - pos)))
            out.extend(dec.feed(wire[pos : pos + size]))
            pos += size
        assert out == list(messages)
        assert dec.buffered == 0

    def test_byte_at_a_time_feed(self):
        msg = Envelope(
            src=Address("ws0", "daemon"),
            dst=Address("_supervisor", "exec"),
            payload=Heartbeat(host="ws0", load=1, running=1),
        )
        dec = codec.FrameDecoder()
        out = []
        for i in range(len(codec.encode(msg))):
            out.extend(dec.feed(codec.encode(msg)[i : i + 1]))
        assert out == [msg]

    def test_bad_magic_rejected(self):
        frame = bytearray(codec.encode(Ping(nonce=1, body=b"x")))
        frame[0:4] = b"EVIL"
        with pytest.raises(codec.CodecError, match="bad frame magic"):
            codec.FrameDecoder().feed(bytes(frame))

    def test_crc_mismatch_rejected(self):
        frame = bytearray(codec.encode(Ping(nonce=1, body=b"payload")))
        frame[-1] ^= 0xFF
        with pytest.raises(codec.CodecError, match="CRC mismatch"):
            codec.FrameDecoder().feed(bytes(frame))

    def test_oversized_length_field_rejected_before_buffering(self):
        """A corrupt length field must be rejected from the header alone —
        the decoder never waits for gigabytes that will never arrive."""
        header = codec.HEADER.pack(codec.MAGIC, codec.MAX_FRAME + 1, 0)
        with pytest.raises(codec.CodecError, match="exceeds"):
            codec.FrameDecoder().feed(header)

    def test_oversized_payload_rejected_at_encode(self):
        with pytest.raises(codec.CodecError, match="too large"):
            codec.encode(Ping(nonce=0, body=b"\x00" * (codec.MAX_FRAME + 1)))

    def test_truncated_pickle_rejected(self):
        payload = pickle.dumps(Ping(nonce=7, body=b"x"), protocol=5)[:-4]
        frame = codec.HEADER.pack(codec.MAGIC, len(payload), zlib.crc32(payload))
        with pytest.raises(codec.CodecError, match="undecodable"):
            codec.FrameDecoder().feed(frame + payload)

    def test_disallowed_global_rejected(self):
        """A frame smuggling an ``os.system`` reducer is refused before any
        object is constructed."""

        class Evil:
            def __reduce__(self):
                import os

                return (os.system, ("true",))

        payload = pickle.dumps(Evil(), protocol=5)
        assert any("system" in g for g in codec.scan_globals(payload))
        frame = codec.HEADER.pack(codec.MAGIC, len(payload), zlib.crc32(payload))
        with pytest.raises(codec.CodecError, match="disallowed global"):
            codec.FrameDecoder().feed(frame + payload)

    def test_private_names_in_allowed_modules_rejected(self):
        """The allowlist is module + public name: underscore names inside
        an allowed module are still refused."""
        import io

        unpickler = codec._RestrictedUnpickler(io.BytesIO(b""))
        with pytest.raises(codec.CodecError, match="disallowed global"):
            unpickler.find_class("repro.netexec.frames", "_secret")

    def test_workload_spec_roundtrip(self):
        spec = WorkloadSpec("randomdag", (("layers", 3), ("width", 1), ("seed", 7)))
        (out,) = codec.FrameDecoder().feed(codec.encode(spec))
        assert out == spec
        assert out.as_kwargs() == {"layers": 3, "width": 1, "seed": 7}

    def test_garbage_after_valid_frame_fails_loudly(self):
        """A good frame followed by junk decodes nothing silently: the
        stream errors instead of resynchronizing past corruption."""
        dec = codec.FrameDecoder()
        good = codec.encode(Ping(nonce=3, body=b"ok"))
        (msg,) = dec.feed(good)
        assert msg == Ping(nonce=3, body=b"ok")
        with pytest.raises(codec.CodecError, match="bad frame magic"):
            dec.feed(b"XXXX" + struct.pack(">II", 0, 0) + b"padding")


# ----------------------------------------------------------------- transport


def _run(coro, timeout=15.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def _wait_for(predicate, timeout=5.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


def _hello(host="ws0", incarnation=0):
    return Hello(
        host=host,
        machine_name=host,
        arch_class="WORKSTATION",
        speed=1.0,
        pid=0,
        incarnation=incarnation,
    )


class TestTransport:
    def test_handshake_registers_peer(self):
        async def scenario():
            hellos = []

            async def on_hello(hello, peer):
                hellos.append(hello)

            router = FrameRouter(lambda env: None, on_hello=on_hello)
            port = await router.start(port=0)
            assert port != 0  # the OS picked a real port

            inbound = []

            async def handler(message):
                inbound.append(message)

            conn = DaemonConnection("127.0.0.1", port, handler)
            conn.on_connect = lambda: conn.send(_hello("ws0"))
            await conn.connect()
            await _wait_for(lambda: "ws0" in router.peers)
            assert [h.host for h in hellos] == ["ws0"]

            # routed envelope reaches the daemon
            router.send(
                "ws0",
                Envelope(
                    src=Address("_supervisor", "exec"),
                    dst=Address("ws0", "daemon"),
                    payload=Ping(nonce=9, body=b"hi"),
                ),
            )
            await _wait_for(lambda: len(inbound) == 1)
            assert inbound[0].payload == Ping(nonce=9, body=b"hi")

            await conn.close()
            await router.close()

        _run(scenario())

    def test_envelope_to_unknown_host_goes_local(self):
        async def scenario():
            local = []
            router = FrameRouter(local.append)
            port = await router.start(port=0)
            env = Envelope(
                src=Address("ws9", "daemon"),
                dst=Address("_supervisor", "log"),
                payload=Ping(nonce=1, body=b""),
            )
            router.route(env)
            assert local == [env]
            await router.close()
            return port

        _run(scenario())

    def test_bare_frames_hit_on_frame_after_hello(self):
        async def scenario():
            beats = []
            router = FrameRouter(
                lambda env: None, on_frame=lambda host, msg: beats.append((host, msg))
            )
            port = await router.start(port=0)
            conn = DaemonConnection("127.0.0.1", port, lambda m: None)
            conn.on_connect = lambda: conn.send(_hello("ws1"))
            await conn.connect()
            await _wait_for(lambda: "ws1" in router.peers)
            conn.send(Heartbeat(host="ws1", load=2, running=1))
            await _wait_for(lambda: len(beats) == 1)
            assert beats[0] == ("ws1", Heartbeat(host="ws1", load=2, running=1))
            await conn.close()
            await router.close()

        _run(scenario())

    def test_frame_before_hello_drops_connection(self):
        async def scenario():
            router = FrameRouter(lambda env: None)
            port = await router.start(port=0)
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(codec.encode(Heartbeat(host="rogue", load=0, running=0)))
            await writer.drain()
            # the router closes a connection whose first frame is not Hello
            assert await reader.read() == b""
            assert router.peers == {}
            writer.close()
            await router.close()

        _run(scenario())

    def test_reconnect_resends_hello_with_bumped_incarnation(self):
        """When the server side drops the link, the daemon client dials
        back and the on_connect hook re-registers it — the supervisor sees
        a fresh Hello with a higher incarnation."""

        async def scenario():
            hellos = []

            async def on_hello(hello, peer):
                hellos.append(hello)

            drops = []
            router = FrameRouter(
                lambda env: None, on_hello=on_hello, on_disconnect=drops.append
            )
            port = await router.start(port=0)

            incarnation = [-1]
            conn = DaemonConnection("127.0.0.1", port, lambda m: None)

            def register():
                incarnation[0] += 1
                conn.send(_hello("ws0", incarnation=incarnation[0]))

            conn.on_connect = register
            await conn.connect()
            await _wait_for(lambda: "ws0" in router.peers)

            router.peers["ws0"].writer.close()
            await _wait_for(lambda: len(hellos) == 2)
            await _wait_for(lambda: "ws0" in router.peers)
            assert drops == ["ws0"]
            assert [h.incarnation for h in hellos] == [0, 1]

            await conn.close()
            await router.close()

        _run(scenario())

    def test_daemon_close_fires_on_disconnect(self):
        async def scenario():
            drops = []
            router = FrameRouter(lambda env: None, on_disconnect=drops.append)
            port = await router.start(port=0)
            conn = DaemonConnection("127.0.0.1", port, lambda m: None)
            conn.on_connect = lambda: conn.send(_hello("ws2"))
            await conn.connect()
            await _wait_for(lambda: "ws2" in router.peers)
            await conn.close()
            await _wait_for(lambda: drops == ["ws2"])
            assert "ws2" not in router.peers
            await router.close()

        _run(scenario())

    def test_bind_collision_raises_transport_error(self):
        """Two routers on one explicit port: the second bind fails with a
        TransportError naming the address instead of a bare OSError."""

        async def scenario():
            first = FrameRouter(lambda env: None)
            port = await first.start(port=0)
            second = FrameRouter(lambda env: None)
            with pytest.raises(TransportError, match=f"127.0.0.1:{port}"):
                await second.start(port=port)
            await first.close()

        _run(scenario())

    def test_unreachable_supervisor_raises_after_bounded_retries(self):
        async def scenario():
            probe = FrameRouter(lambda env: None)
            dead_port = await probe.start(port=0)
            await probe.close()  # nothing listens here any more
            conn = DaemonConnection(
                "127.0.0.1", dead_port, lambda m: None, retries=3, backoff=0.01
            )
            with pytest.raises(TransportError, match="after 3 attempts"):
                await conn.connect()

        _run(scenario())


# ----------------------------------------------------- real daemon processes


@pytest.mark.network
class TestRealProcessFailover:
    def test_sigkill_recovers_via_lease_expiry(self):
        """With eager (EOF-based) detection off, a SIGKILL-ed daemon's
        tasks come back only when the wall-clock lease expires — the pure
        §4.4 recovery path, on real OS processes."""
        from repro.core import VCEConfig, workstation_cluster
        from repro.migration.failover import FailoverConfig
        from repro.netexec.frames import WorkloadSpec
        from repro.netexec.supervisor import NetworkVCE

        spec = WorkloadSpec(
            "randomdag",
            (("layers", 3), ("width", 1), ("seed", 23),
             ("min_work", 8.0), ("max_work", 10.0)),
        )
        vce = NetworkVCE(
            workstation_cluster(3),
            VCEConfig(seed=23, backend="network"),
            rate=20.0,
            failover=FailoverConfig(lease=4.0, detection=1.0),
            eager_detection=False,
        )

        async def scenario():
            await vce.aboot(spec)
            try:
                app = await vce.asubmit(spec)
                drive = asyncio.get_running_loop().create_task(
                    vce.sim.drive(stop_when=app.finished.is_set)
                )
                await _wait_for(
                    lambda: vce.sim.log.records(category="runtime.dispatch"),
                    timeout=30.0,
                )
                await asyncio.sleep(0.05)  # let the task actually start
                victim = vce.sim.log.records(category="runtime.dispatch")[0].data["host"]
                vce.kill_daemon(victim)
                await asyncio.wait_for(app.finished.wait(), 60.0)
                drive.cancel()
                return app
            finally:
                await vce.ashutdown()

        app = asyncio.run(scenario())
        assert not app.failed
        assert app.done_set() == {("L0T0", 0), ("L1T0", 0), ("L2T0", 0)}
        log = vce.sim.log
        assert len(log.records(category="recovery.lease_expired")) >= 1
        assert len(log.records(category="recovery.redispatch")) >= 1
        # eager detection was off: no daemon-takeover strands
        assert all(
            r.data.get("via") != "daemon-takeover"
            for r in log.records(category="recovery.strand")
        )
        assert vce.orphan_pids() == []
