"""Integration tests: redundant execution as a fault-tolerance handler."""


from repro.migration import MigrationContext, RedundantExecutionManager
from repro.runtime import AppStatus, InstanceState
from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass
from repro.vmpi import Compute

from tests.conftest import make_cluster, place_all_on


def job_graph(work=30.0, name="job-app"):
    graph = ProblemSpecification(name).task("job", work=work).build()
    node = graph.task("job")
    node.problem_class = ProblemClass.ASYNCHRONOUS
    node.language = "py"

    def program(ctx):
        yield Compute(work)
        return "ok"

    node.program = program
    return graph


class TestRedundantFailover:
    def test_primary_host_crash_absorbed(self):
        cluster = make_cluster(3)
        graph = job_graph()
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        mgr = RedundantExecutionManager(
            MigrationContext(cluster.manager, cluster.net)
        ).install()
        cluster.run(until=1.0)
        record = app.record("job", 0)
        mgr.dispatch_redundant(app, record, ["ws1"])
        cluster.run(until=5.0)
        cluster.hosts["ws0"].crash()
        cluster.run(until=100.0)
        assert app.status is AppStatus.DONE
        assert record.host_name == "ws1"
        failovers = cluster.sim.log.records(category="migration.redundant_failover")
        assert failovers and failovers[0].get("to") == "ws1"

    def test_without_install_crash_fails_app(self):
        cluster = make_cluster(3)
        graph = job_graph()
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        mgr = RedundantExecutionManager(MigrationContext(cluster.manager, cluster.net))
        cluster.run(until=1.0)
        mgr.dispatch_redundant(app, app.record("job", 0), ["ws1"])
        cluster.run(until=5.0)
        cluster.hosts["ws0"].crash()
        cluster.run(until=100.0)
        # copies exist but nobody promotes them on failure
        assert app.status is AppStatus.FAILED

    def test_no_live_copy_failure_propagates(self):
        cluster = make_cluster(3)
        graph = job_graph()
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        RedundantExecutionManager(
            MigrationContext(cluster.manager, cluster.net)
        ).install()
        cluster.run(until=5.0)
        cluster.hosts["ws0"].crash()  # no copies were ever dispatched
        cluster.run(until=100.0)
        assert app.status is AppStatus.FAILED

    def test_double_crash_second_copy_takes_over(self):
        cluster = make_cluster(3)
        graph = job_graph(work=40.0)
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        mgr = RedundantExecutionManager(
            MigrationContext(cluster.manager, cluster.net)
        ).install()
        cluster.run(until=1.0)
        record = app.record("job", 0)
        mgr.dispatch_redundant(app, record, ["ws1", "ws2"])
        cluster.run(until=5.0)
        cluster.hosts["ws0"].crash()
        cluster.run(until=10.0)
        crashed_second = record.host_name
        cluster.hosts[crashed_second].crash()
        cluster.run(until=200.0)
        assert app.status is AppStatus.DONE
        assert record.host_name not in ("ws0", crashed_second)

    def test_install_idempotent(self):
        cluster = make_cluster(2)
        mgr = RedundantExecutionManager(MigrationContext(cluster.manager, cluster.net))
        mgr.install().install()
        assert cluster.manager.failure_handlers.count(mgr._on_primary_failure) == 1

    def test_failover_rebinding_keeps_result_path(self):
        """The promoted copy's completion flows through the normal runtime
        bookkeeping (results, makespan, checkpoint cleanup)."""
        cluster = make_cluster(2)
        graph = job_graph(work=20.0)
        app = cluster.manager.submit(graph, place_all_on(graph, "ws0"))
        mgr = RedundantExecutionManager(
            MigrationContext(cluster.manager, cluster.net)
        ).install()
        cluster.run(until=1.0)
        record = app.record("job", 0)
        mgr.dispatch_redundant(app, record, ["ws1"])
        cluster.run(until=3.0)
        cluster.hosts["ws0"].crash()
        cluster.run()
        assert app.status is AppStatus.DONE
        assert app.results("job") == ["ok"]
        assert app.makespan is not None
        assert record.state is InstanceState.DONE


class TestAutoRedundancy:
    """ExecutionHints.redundancy wired through the dispatch hook."""

    def _vce(self, n=4):
        from repro.core import VirtualComputingEnvironment, workstation_cluster

        return VirtualComputingEnvironment(workstation_cluster(n)).boot()

    def _redundant_graph(self, redundancy=2, work=25.0):
        from repro.taskgraph import ExecutionHints

        graph = ProblemSpecification("auto-red").task(
            "job", work=work, hints=ExecutionHints(redundancy=redundancy)
        ).build()
        node = graph.task("job")
        node.problem_class = ProblemClass.ASYNCHRONOUS
        node.language = "py"

        def program(ctx):
            yield Compute(work)
            return "ok"

        node.program = program
        return graph

    def test_copies_launched_automatically(self):
        vce = self._vce()
        manager = vce.enable_redundancy()
        run = vce.submit(self._redundant_graph(redundancy=3))
        vce.run(until=vce.sim.now + 5.0)
        record = run.app.record("job", 0)
        assert len(record.redundant_copies) == 2
        assert manager.copies_launched == 2
        vce.run_to_completion(run)
        from repro.scheduler.execution_program import RunState

        assert run.state is RunState.DONE

    def test_hinted_app_survives_primary_crash(self):
        from repro.scheduler.execution_program import RunState

        vce = self._vce()
        vce.enable_redundancy()
        run = vce.submit(self._redundant_graph(redundancy=2))
        vce.run(until=vce.sim.now + 5.0)
        primary_host = run.app.record("job", 0).host_name
        vce.network.host(primary_host).crash()
        vce.run_to_completion(run)
        assert run.state is RunState.DONE
        assert run.app.record("job", 0).host_name != primary_host

    def test_redundancy_one_launches_nothing(self):
        vce = self._vce()
        manager = vce.enable_redundancy()
        run = vce.submit(self._redundant_graph(redundancy=1))
        vce.run_to_completion(run)
        assert manager.copies_launched == 0

    def test_migration_redispatch_does_not_duplicate_copies(self):
        from repro.migration import CheckpointMigration

        vce = self._vce()
        manager = vce.enable_redundancy()
        run = vce.submit(self._redundant_graph(redundancy=2, work=40.0))
        vce.run(until=vce.sim.now + 5.0)
        app = run.app
        record = app.record("job", 0)
        copies_before = manager.copies_launched
        target = next(
            n for n in vce.network.hosts
            if n not in (record.host_name, "user")
            and vce.network.hosts[n].machine is not None
        )
        CheckpointMigration(vce.migration.context).migrate(app, record, target)
        vce.run(until=vce.sim.now + 5.0)
        assert manager.copies_launched == copies_before  # no re-spawn
        vce.run_to_completion(run)
