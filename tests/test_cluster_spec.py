"""Tests for JSON cluster specifications and the CLI integration."""

import io
import json

import pytest

from repro.core import VCEConfig, VirtualComputingEnvironment, machines_from_spec, load_cluster_file
from repro.cli import main
from repro.machines import MachineClass
from repro.util.errors import ConfigurationError
from repro.workloads import WEATHER_SCRIPT

SPEC = {
    "machines": [
        {"name": "a", "class": "WORKSTATION", "speed": 2.0, "memory_mb": 512,
         "site": "syr", "files": ["obs.dat"]},
        {"name": "b", "class": "simd", "speed": 40.0, "site": "syr"},
        {"name": "c", "class": "WORKSTATION", "site": "cornell",
         "load": {"type": "constant", "level": 0.3}},
        {"name": "d", "class": "WORKSTATION",
         "load": {"type": "trace", "points": [[5.0, 0.8]], "initial": 0.1}},
        {"name": "e", "class": "WORKSTATION",
         "load": {"type": "stochastic", "mean_idle": 10.0, "mean_busy": 5.0,
                  "busy_level": 0.7}},
    ],
    "wan": {"base_latency": 0.08, "bandwidth": 100000.0},
}


class TestMachinesFromSpec:
    def test_basic_fields(self):
        machines, wan = machines_from_spec(SPEC)
        by_name = {m.name: m for m in machines}
        assert by_name["a"].speed == 2.0
        assert by_name["a"].memory_mb == 512
        assert by_name["a"].attributes["site"] == "syr"
        assert "obs.dat" in by_name["a"].files
        assert by_name["b"].arch_class is MachineClass.SIMD  # case-insensitive
        assert wan is not None and wan.base_latency == 0.08

    def test_load_models(self):
        machines, _ = machines_from_spec(SPEC)
        by_name = {m.name: m for m in machines}
        assert by_name["c"].load_at(100.0) == 0.3
        assert by_name["d"].load_at(0.0) == 0.1
        assert by_name["d"].load_at(6.0) == 0.8
        assert by_name["e"].load_at(0.0) in (0.0, 0.7)

    def test_stochastic_deterministic_per_seed(self):
        a, _ = machines_from_spec(SPEC, seed=1)
        b, _ = machines_from_spec(SPEC, seed=1)
        ea = next(m for m in a if m.name == "e")
        eb = next(m for m in b if m.name == "e")
        assert [ea.load_at(t) for t in range(0, 100, 7)] == [
            eb.load_at(t) for t in range(0, 100, 7)
        ]

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="no machines"):
            machines_from_spec({"machines": []})

    def test_missing_name_rejected(self):
        with pytest.raises(ConfigurationError, match="missing 'name'"):
            machines_from_spec({"machines": [{"class": "SIMD"}]})

    def test_unknown_load_type_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown load model"):
            machines_from_spec(
                {"machines": [{"name": "x", "load": {"type": "quantum"}}]}
            )

    def test_no_wan_key(self):
        machines, wan = machines_from_spec({"machines": [{"name": "x"}]})
        assert wan is None

    def test_vce_boots_from_spec(self):
        machines, wan = machines_from_spec(SPEC)
        vce = VirtualComputingEnvironment(
            machines, VCEConfig(wan_latency=wan)
        ).boot()
        assert vce.directory.has_group(MachineClass.WORKSTATION)
        assert vce.directory.has_group(MachineClass.SIMD)
        # cross-site pair uses the WAN model
        assert vce.network.latency_between("a", "c").base_latency == 0.08
        assert vce.network.latency_between("a", "b") is vce.network.latency


class TestLoadClusterFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "cluster.json"
        path.write_text(json.dumps(SPEC))
        machines, wan = load_cluster_file(str(path))
        assert len(machines) == 5 and wan is not None

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            load_cluster_file(str(path))


class TestCliClusterFile:
    def test_run_with_cluster_file(self, tmp_path):
        cluster = tmp_path / "cluster.json"
        cluster.write_text(json.dumps({
            "machines": [
                {"name": f"ws{i}", "class": "WORKSTATION"} for i in range(3)
            ] + [{"name": "simd0", "class": "SIMD", "speed": 40.0, "memory_mb": 4096}],
        }))
        script = tmp_path / "snow.vce"
        script.write_text(WEATHER_SCRIPT)
        out = io.StringIO()
        code = main(
            ["run", str(script), "--cluster-file", str(cluster)], out=out
        )
        assert code == 0, out.getvalue()
        assert "simd0" in out.getvalue()

    def test_bad_cluster_file_exit_code(self, tmp_path):
        script = tmp_path / "s.vce"
        script.write_text('LOCAL "/a/x.vce"')
        assert main(["run", str(script), "--cluster-file", "/nope.json"]) == 2
