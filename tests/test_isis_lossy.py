"""Reliable multicast under message loss.

The paper's prototype assumed a LAN; the reliability layer (acks +
retransmission for CBCAST, NACK-based gap repair for ABCAST) extends the
toolkit to fair-lossy links. These tests run the group over a network that
drops 15–30% of cross-host messages.
"""


from repro.isis import IsisConfig

from tests.test_isis_group import build_group


#: On lossy links the failure-detection timeout must be long enough that a
#: run of dropped heartbeats is overwhelmingly unlikely to be mistaken for
#: a crash (p_false ~ drop^(timeout/interval) per check window). 12 beats at
#: 30% loss gives ~5e-7 — the standard deployment-time tuning.
LOSSY_CFG = IsisConfig(hb_interval=0.5, hb_timeout=6.0, flush_timeout=4.0)


def lossy_group(n, drop, seed=0, settle=20.0):
    sim, net, members = build_group(n, seed=seed, settle=settle, config=LOSSY_CFG)
    net.set_drop_rate(drop)
    return sim, net, members


class TestLossyCBcast:
    def test_all_messages_eventually_delivered(self):
        sim, net, members = lossy_group(4, drop=0.2)
        for i in range(15):
            members[0].cbcast("seq", i)
        sim.run(until=sim.now + 60.0)
        for m in members:
            got = [p for (_, k, p) in m.cb_deliveries if k == "seq"]
            assert got == list(range(15)), f"{m.name} got {got}"

    def test_no_duplicate_deliveries(self):
        sim, net, members = lossy_group(4, drop=0.3, seed=3)
        for i in range(10):
            members[1].cbcast("x", i)
        sim.run(until=sim.now + 90.0)
        for m in members:
            got = [p for (_, k, p) in m.cb_deliveries if k == "x"]
            assert sorted(got) == list(range(10))
            assert len(got) == len(set(got))

    def test_causality_preserved_under_loss(self):
        sim, net, members = lossy_group(3, drop=0.25, seed=5)
        m1, m2 = members[1], members[2]
        original = m2.on_cbcast

        def reactive(sender, kind, payload):
            original(sender, kind, payload)
            if kind == "question":
                m2.cbcast("answer", "42")

        m2.on_cbcast = reactive
        m1.cbcast("question", "?")
        sim.run(until=sim.now + 60.0)
        for m in members:
            kinds = [k for (_, k, _) in m.cb_deliveries]
            assert "question" in kinds and "answer" in kinds
            assert kinds.index("question") < kinds.index("answer")

    def test_retransmissions_stop_after_acks(self):
        sim, net, members = lossy_group(3, drop=0.2, seed=7)
        members[0].cbcast("one", 1)
        sim.run(until=sim.now + 60.0)
        assert not members[0]._unacked
        assert not members[0].has_timer("rtx")


class TestLossyAbcast:
    def test_total_order_despite_gaps(self):
        sim, net, members = lossy_group(4, drop=0.2, seed=9)
        for i in range(6):
            members[1].abcast("t", f"a{i}")
            members[2].abcast("t", f"b{i}")
        sim.run(until=sim.now + 120.0)
        orders = [[p for (_, _, p) in m.ab_deliveries] for m in members]
        assert all(len(o) == 12 for o in orders), [len(o) for o in orders]
        assert all(o == orders[0] for o in orders)

    def test_nack_repair_recovers_everything(self):
        sim, net, members = lossy_group(4, drop=0.35, seed=11)
        for i in range(8):
            members[1].abcast("t", i)
        sim.run(until=sim.now + 120.0)
        # heavy loss reorders *sequencing* (retransmitted requests arrive
        # late) — ABCAST guarantees one agreed total order, not send order
        orders = [[p for (_, _, p) in m.ab_deliveries] for m in members]
        for order in orders:
            assert sorted(order) == list(range(8)), order  # nothing lost
            assert order == orders[0]  # total order agreed


class TestLossyScheduling:
    def test_bidding_still_allocates_under_loss(self):
        """The scheduler's request path (cbcast disclosure + unicast bids)
        tolerates a lossy network: lost bids are simply absent from the
        reply set and the leader decides from what arrived, or the exec
        program retries on timeout."""
        from tests.helpers_sched import make_vce, workstation_farm
        from tests.test_scheduler import annotated_graph, launch
        from repro.scheduler.execution_program import RunState

        vce = make_vce(workstation_farm(4), seed=13, isis_config=LOSSY_CFG)
        vce.net.set_drop_rate(0.1)
        graph = annotated_graph()
        run, done = launch(vce, graph)
        vce.run(until=vce.sim.now + 120.0)
        assert run.state is RunState.DONE, run.error
