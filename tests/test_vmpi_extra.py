"""Tests for the channel monitor and the extended vMPI collectives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.channels import ChannelMonitor
from repro.runtime import AppStatus
from repro.sdm import ProblemSpecification
from repro.taskgraph import ProblemClass
from repro.vmpi import Compute, Send, alltoall, sendrecv

from tests.conftest import make_cluster, round_robin_placement


def mpi_graph(program, instances, name="mpi"):
    graph = ProblemSpecification(name).task("t", instances=instances).build()
    node = graph.task("t")
    node.problem_class = ProblemClass.LOOSELY_SYNCHRONOUS
    node.language = "py"
    node.program = program
    return graph


def run_mpi(program, instances, n_hosts=None):
    n_hosts = n_hosts or instances
    cluster = make_cluster(n_hosts)
    graph = mpi_graph(program, instances)
    app = cluster.manager.submit(
        graph, round_robin_placement(graph, [f"ws{i}" for i in range(n_hosts)])
    )
    cluster.run()
    assert app.status is AppStatus.DONE
    return cluster, app


class TestSendrecv:
    def test_ring_shift(self):
        def program(ctx):
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            got = yield from sendrecv(ctx, dst=right, send_value=ctx.rank, src=left)
            return got

        cluster, app = run_mpi(program, 4)
        # every rank receives its left neighbour's rank
        assert app.results("t") == [3, 0, 1, 2]

    def test_pairwise_swap_no_deadlock(self):
        def program(ctx):
            partner = ctx.rank ^ 1
            got = yield from sendrecv(ctx, dst=partner, send_value=f"r{ctx.rank}", src=partner)
            return got

        cluster, app = run_mpi(program, 4)
        assert app.results("t") == ["r1", "r0", "r3", "r2"]


class TestAlltoall:
    def test_is_a_transpose(self):
        def program(ctx):
            items = [f"{ctx.rank}->{j}" for j in range(ctx.size)]
            out = yield from alltoall(ctx, items)
            return out

        cluster, app = run_mpi(program, 3)
        results = app.results("t")
        for i in range(3):
            assert results[i] == [f"{j}->{i}" for j in range(3)]

    @settings(deadline=None, max_examples=6)
    @given(p=st.sampled_from([2, 3, 4, 6]), seed=st.integers(0, 100))
    def test_transpose_property(self, p, seed):
        import random

        rng = random.Random(seed)
        matrix = [[rng.randint(0, 99) for _ in range(p)] for _ in range(p)]

        def program(ctx):
            out = yield from alltoall(ctx, list(matrix[ctx.rank]))
            return out

        cluster, app = run_mpi(program, p, n_hosts=min(p, 4))
        results = app.results("t")
        for i in range(p):
            assert results[i] == [matrix[j][i] for j in range(p)]

    def test_wrong_item_count_fails(self):
        def program(ctx):
            yield from alltoall(ctx, [1])  # wrong length for size 3

        cluster = make_cluster(3)
        graph = mpi_graph(program, 3)
        app = cluster.manager.submit(
            graph, round_robin_placement(graph, ["ws0", "ws1", "ws2"])
        )
        cluster.run()
        assert app.status is AppStatus.FAILED


class TestChannelMonitor:
    def _chatty_app(self, cluster):
        def producer(ctx):
            for i in range(30):
                yield Send(dst="consumer[0]", data=i, channel="pipe", size=5_000)
                yield Compute(0.5)

        def consumer(ctx):
            from repro.vmpi import Recv

            for _ in range(30):
                yield Recv(channel="pipe")
            return "drained"

        spec = ProblemSpecification("chatty").task("producer").task("consumer")
        spec.stream("producer", "consumer", channel="pipe")
        graph = spec.build()
        for name, program in (("producer", producer), ("consumer", consumer)):
            node = graph.task(name)
            node.problem_class = ProblemClass.ASYNCHRONOUS
            node.language = "py"
            node.program = program
        from repro.runtime import Placement

        placement = Placement()
        placement.assign("producer", 0, "ws0")
        placement.assign("consumer", 0, "ws1")
        return cluster.manager.submit(graph, placement)

    def test_samples_traffic(self):
        cluster = make_cluster(2)
        monitor = ChannelMonitor(cluster.sim, cluster.manager.channels, interval=1.0).start()
        app = self._chatty_app(cluster)
        cluster.run()
        assert app.status is AppStatus.DONE
        series = monitor.rate_series("pipe")
        assert series, "no samples recorded"
        # ~2 msgs/s at 5000B each -> ~10 kB/s while active
        peak = max(rate for _, rate in series)
        assert 5_000 <= peak <= 20_000
        assert cluster.sim.log.records(category="channel.sample")

    def test_busiest_ranking(self):
        cluster = make_cluster(2)
        monitor = ChannelMonitor(cluster.sim, cluster.manager.channels, interval=1.0).start()
        self._chatty_app(cluster)
        cluster.run()
        busiest = monitor.busiest()
        assert busiest and busiest[0][0] == "pipe"

    def test_stop_ends_sampling(self):
        cluster = make_cluster(2)
        monitor = ChannelMonitor(cluster.sim, cluster.manager.channels, interval=1.0).start()
        cluster.run(until=2.0)
        monitor.stop()
        count = len(monitor.samples)
        cluster.run(until=10.0)
        assert len(monitor.samples) == count

    def test_quiet_channels_not_sampled(self):
        cluster = make_cluster(2)
        cluster.manager.channels.create("idle")
        monitor = ChannelMonitor(cluster.sim, cluster.manager.channels, interval=1.0).start()
        cluster.run(until=5.0)
        assert monitor.rate_series("idle") == []


class TestCommunicator:
    def test_port_names(self):
        from repro.channels import ChannelManager
        from repro.netsim import Network, Simulator
        from repro.vmpi import Communicator

        chan = ChannelManager(Network(Simulator())).create("mpi")
        comm = Communicator(chan, size=4)
        assert [comm.port_name(r) for r in range(4)] == ["0", "1", "2", "3"]

    def test_rank_bounds(self):
        from repro.channels import ChannelManager
        from repro.netsim import Network, Simulator
        from repro.util.errors import CommunicationError
        from repro.vmpi import Communicator

        chan = ChannelManager(Network(Simulator())).create("mpi")
        comm = Communicator(chan, size=2)
        with pytest.raises(CommunicationError):
            comm.port_name(2)
        with pytest.raises(CommunicationError):
            comm.port_name(-1)
        with pytest.raises(CommunicationError):
            Communicator(chan, size=0)

    def test_task_context_instance_name(self):
        from repro.vmpi import TaskContext

        ctx = TaskContext(app="a1", task="worker", rank=3, size=8)
        assert ctx.instance_name == "a1.worker.3"
