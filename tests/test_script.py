"""Tests for the application description language: lexer, parser, interp."""

import pytest

from repro.machines import MachineClass
from repro.script import (
    Environment,
    interpret,
    parse_script,
    tokenize,
)
from repro.script.ast import ChannelStmt, Condition, PrioritySpec, SetVar
from repro.script.interp import task_name_from_path
from repro.script.lexer import TokenKind
from repro.taskgraph import ProblemClass
from repro.util.errors import ScriptError

WEATHER = '''
# the paper's weather forecasting application (§5)
ASYNC 2 "/apps/snow/collector.vce"
WORKSTATION 1 "/apps/snow/usercollect.vce"
SYNC 1 "/apps/snow/predictor.vce"
LOCAL "/apps/snow/display.vce"
'''


class TestLexer:
    def test_weather_script_tokens(self):
        tokens = tokenize(WEATHER)
        kinds = [t.kind for t in tokens]
        assert kinds.count(TokenKind.STRING) == 4
        assert kinds.count(TokenKind.INT) == 3
        assert kinds[-1] is TokenKind.EOF

    def test_comments_stripped(self):
        tokens = tokenize("# only a comment\n")
        assert [t.kind for t in tokens] == [TokenKind.EOF]

    def test_countspec_tokens(self):
        tokens = tokenize('ASYNC 5- "x"')
        assert [t.kind for t in tokens[:3]] == [TokenKind.WORD, TokenKind.INT, TokenKind.DASH]

    def test_compare_tokens(self):
        tokens = tokenize("IF a >= 3 THEN")
        assert any(t.kind is TokenKind.COMPARE and t.text == ">=" for t in tokens)

    def test_illegal_character_located(self):
        with pytest.raises(ScriptError, match="line 2"):
            tokenize('LOCAL "x"\n@')


class TestParser:
    def test_weather_script(self):
        stmts = parse_script(WEATHER)
        assert len(stmts) == 4
        collector, usercollect, predictor, display = stmts
        assert collector.problem_class is ProblemClass.ASYNCHRONOUS
        assert collector.min_instances == collector.max_instances == 2
        assert usercollect.machine_class is MachineClass.WORKSTATION
        assert predictor.problem_class is ProblemClass.SYNCHRONOUS
        assert display.local and display.path == "/apps/snow/display.vce"

    def test_at_most_countspec(self):
        (d,) = parse_script('ASYNC 5- "/a/t.vce"')
        assert (d.min_instances, d.max_instances) == (1, 5)

    def test_range_countspec(self):
        (d,) = parse_script('SYNC 5,10 "/a/t.vce"')
        assert (d.min_instances, d.max_instances) == (5, 10)

    def test_default_count_is_one(self):
        (d,) = parse_script('MIMD "/a/t.vce"')
        assert (d.min_instances, d.max_instances) == (1, 1)
        assert d.machine_class is MachineClass.MIMD

    def test_inverted_range_rejected(self):
        with pytest.raises(ScriptError, match="inverted"):
            parse_script('SYNC 10,5 "/a/t.vce"')

    def test_zero_count_rejected(self):
        with pytest.raises(ScriptError, match=">= 1"):
            parse_script('ASYNC 0 "/a/t.vce"')

    def test_channel_statement(self):
        (c,) = parse_script('CHANNEL obs FROM "/a/src.vce" TO "/a/dst.vce" VOLUME 1000')
        assert isinstance(c, ChannelStmt)
        assert c.name == "obs" and c.volume == 1000

    def test_channel_without_volume(self):
        (c,) = parse_script('CHANNEL obs FROM "/a/s.vce" TO "/a/d.vce"')
        assert c.volume == 0

    def test_set_and_priority(self):
        s, p = parse_script("SET n = 4\nPRIORITY 7")
        assert isinstance(s, SetVar) and isinstance(p, PrioritySpec)
        assert p.value == 7

    def test_conditional(self):
        (c,) = parse_script(
            'IF AVAILABLE(WORKSTATION) >= 4 THEN ASYNC 4 "/a/w.vce" '
            'ELSE ASYNC 1 "/a/w.vce" ENDIF'
        )
        assert isinstance(c, Condition)
        assert len(c.then_body) == 1 and len(c.else_body) == 1

    def test_nested_conditionals(self):
        script = (
            "IF a > 1 THEN "
            "  IF b > 2 THEN LOCAL \"/x.vce\" ENDIF "
            "ELSE PRIORITY 2 ENDIF"
        )
        (outer,) = parse_script(script)
        assert isinstance(outer.then_body[0], Condition)

    def test_missing_endif(self):
        with pytest.raises(ScriptError, match="ENDIF"):
            parse_script('IF a > 1 THEN LOCAL "/x.vce"')

    def test_missing_path(self):
        with pytest.raises(ScriptError, match="quoted program path"):
            parse_script("ASYNC 2")

    def test_garbage_statement(self):
        with pytest.raises(ScriptError):
            parse_script('FROB 3 "/x.vce"')


class TestInterpreter:
    def test_weather_description(self):
        desc = interpret(parse_script(WEATHER), name="snow")
        assert [m.task for m in desc.modules] == [
            "collector",
            "usercollect",
            "predictor",
            "display",
        ]
        collector = desc.module("collector")
        # ASYNC problem class resolves to the WORKSTATION machine class
        assert collector.machine_class is MachineClass.WORKSTATION
        assert collector.min_instances == 2
        predictor = desc.module("predictor")
        assert predictor.machine_class is MachineClass.SIMD  # SYNC -> SIMD
        assert desc.module("display").machine_class is None
        assert len(desc.local_modules) == 1 and len(desc.remote_modules) == 3

    def test_task_name_from_path(self):
        assert task_name_from_path("/apps/snow/collector.vce") == "collector"
        assert task_name_from_path("plain") == "plain"

    def test_channels_resolved_to_tasks(self):
        script = (
            'ASYNC 1 "/a/src.vce"\nASYNC 1 "/a/dst.vce"\n'
            'CHANNEL pipe FROM "/a/src.vce" TO "/a/dst.vce" VOLUME 42'
        )
        desc = interpret(parse_script(script))
        (chan,) = desc.channels
        assert (chan.src_task, chan.dst_task, chan.volume) == ("src", "dst", 42)

    def test_channel_to_undeclared_module(self):
        script = 'ASYNC 1 "/a/src.vce"\nCHANNEL p FROM "/a/src.vce" TO "/a/ghost.vce"'
        with pytest.raises(ScriptError, match="undeclared module"):
            interpret(parse_script(script))

    def test_conditional_on_availability(self):
        script = (
            'IF AVAILABLE(WORKSTATION) >= 4 THEN ASYNC 4 "/a/w.vce" '
            'ELSE ASYNC 1 "/a/w.vce" ENDIF'
        )
        rich = interpret(
            parse_script(script), Environment({MachineClass.WORKSTATION: 8})
        )
        poor = interpret(
            parse_script(script), Environment({MachineClass.WORKSTATION: 2})
        )
        assert rich.module("w").min_instances == 4
        assert poor.module("w").min_instances == 1

    def test_set_variables_in_conditions(self):
        script = 'SET n = 5\nIF n > 3 THEN PRIORITY 9 ENDIF\nLOCAL "/a/x.vce"'
        desc = interpret(parse_script(script))
        assert desc.priority == 9.0

    def test_undefined_variable(self):
        with pytest.raises(ScriptError, match="undefined variable"):
            interpret(parse_script('IF ghost > 1 THEN LOCAL "/x.vce" ENDIF'))

    def test_duplicate_module_rejected(self):
        script = 'LOCAL "/a/x.vce"\nLOCAL "/b/x.vce"'
        with pytest.raises(ScriptError, match="declared twice"):
            interpret(parse_script(script))

    def test_empty_script_rejected(self):
        with pytest.raises(ScriptError, match="no modules"):
            interpret(parse_script("PRIORITY 3"))

    def test_available_with_problem_class_word(self):
        script = 'IF AVAILABLE(SYNC) >= 1 THEN SYNC 1 "/a/p.vce" ELSE LOCAL "/a/p.vce" ENDIF'
        has_simd = interpret(parse_script(script), Environment({MachineClass.SIMD: 1}))
        assert has_simd.module("p").machine_class is MachineClass.SIMD
        no_simd = interpret(parse_script(script), Environment({}))
        assert no_simd.module("p").machine_class is None
