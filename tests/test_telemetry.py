"""Tests for repro.telemetry: registry, series, exporters, sampler,
watchdog, and the `repro top` renderer."""

import json
import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import VCEConfig, VirtualComputingEnvironment, heterogeneous_cluster
from repro.telemetry import (
    ClusterSampler,
    Histogram,
    HealthWatchdog,
    MetricsRegistry,
    QuantileSketch,
    RingSeries,
    SeriesStore,
    WatchdogConfig,
    exponential_bounds,
    registry_from_snapshot,
    render_top,
    snapshot,
    straggler_severity,
    to_prometheus,
)
from repro.telemetry.registry import DEFAULT_FACTOR
from repro.util.errors import ConfigurationError
from repro.workloads import WEATHER_SCRIPT, weather_programs


# --------------------------------------------------------------- registry


class TestExponentialBounds:
    def test_ladder(self):
        bounds = exponential_bounds(1.0, 2.0, 4)
        assert bounds == (1.0, 2.0, 4.0, 8.0)

    def test_defaults_span_milliseconds_to_days(self):
        bounds = exponential_bounds()
        assert bounds[0] == pytest.approx(1e-3)
        assert bounds[-1] > 86_400  # > 1 simulated day

    def test_bounds_strictly_increasing(self):
        bounds = exponential_bounds()
        assert all(a < b for a, b in zip(bounds, bounds[1:]))

    @pytest.mark.parametrize(
        "start,factor,count", [(0.0, 2.0, 4), (1.0, 1.0, 4), (1.0, 2.0, 0)]
    )
    def test_bad_ladders_rejected(self, start, factor, count):
        with pytest.raises(ConfigurationError):
            exponential_bounds(start, factor, count)


class TestCounterGauge:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("reqs_total", "requests")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "queue depth")
        g.set(4)
        g.dec()
        g.inc(0.5)
        assert g.value == 3.5

    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ConfigurationError):
            reg.gauge("x_total")

    def test_labels_create_children(self):
        reg = MetricsRegistry()
        fam = reg.gauge("host_load", "load", labels=("host",))
        fam.labels("ws0").set(0.5)
        fam.labels("ws1").set(0.9)
        assert [(v, c.value) for v, c in fam.samples()] == [
            (("ws0",), 0.5),
            (("ws1",), 0.9),
        ]

    def test_wrong_label_arity_rejected(self):
        reg = MetricsRegistry()
        fam = reg.counter("x_total", labels=("a", "b"))
        with pytest.raises(ConfigurationError):
            fam.labels("only-one")


class TestHistogram:
    def test_bucket_boundaries_inclusive_upper(self):
        h = Histogram(exponential_bounds(1.0, 2.0, 3))  # bounds 1, 2, 4
        h.observe(1.0)  # lands in bucket le=1
        h.observe(1.5)  # le=2
        h.observe(2.0)  # le=2 (upper bound inclusive)
        h.observe(4.0)  # le=4
        h.observe(9.0)  # overflow
        assert h.bucket_counts == [1, 2, 1]
        assert h.overflow == 1
        assert h.count == 5
        assert h.sum == pytest.approx(17.5)

    def test_cumulative_ends_with_inf_total(self):
        h = Histogram(exponential_bounds(1.0, 2.0, 3))
        for v in (0.5, 3.0, 100.0):
            h.observe(v)
        cumulative = h.cumulative_buckets()
        assert cumulative[-1] == (math.inf, 3)
        counts = [c for _, c in cumulative]
        assert counts == sorted(counts)

    def test_quantile_relative_error_bound(self):
        # the interpolated quantile is off by at most factor-1 (relative)
        rng = random.Random(42)
        samples = [rng.uniform(0.01, 50.0) for _ in range(2000)]
        h = Histogram(exponential_bounds())
        for s in samples:
            h.observe(s)
        samples.sort()
        for q in (0.25, 0.5, 0.9, 0.99):
            exact = samples[int(q * len(samples)) - 1]
            estimate = h.quantile(q)
            assert abs(estimate - exact) / exact <= DEFAULT_FACTOR - 1.0 + 0.01

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram(exponential_bounds())
        h.observe(3.0)
        assert h.quantile(0.0) == 3.0
        assert h.quantile(1.0) == 3.0

    def test_empty_quantile_zero(self):
        h = Histogram(exponential_bounds())
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0

    def test_quantile_range_checked(self):
        h = Histogram(exponential_bounds())
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)


class TestQuantileSketch:
    def test_exact_below_five_observations(self):
        s = QuantileSketch(0.5)
        for v in (5.0, 1.0, 3.0):
            s.observe(v)
        assert s.value == 3.0

    def test_p2_median_error_bound(self):
        rng = random.Random(7)
        samples = [rng.uniform(0.0, 100.0) for _ in range(2000)]
        s = QuantileSketch(0.5)
        for v in samples:
            s.observe(v)
        exact = sorted(samples)[1000]
        # P² converges to the true quantile; allow a loose 10% of range
        assert abs(s.value - exact) <= 10.0

    def test_p2_p90_on_skewed_data(self):
        rng = random.Random(11)
        samples = [rng.expovariate(1.0) for _ in range(5000)]
        s = QuantileSketch(0.9)
        for v in samples:
            s.observe(v)
        exact = sorted(samples)[4500]
        assert abs(s.value - exact) / exact <= 0.25

    def test_q_range_checked(self):
        with pytest.raises(ConfigurationError):
            QuantileSketch(1.0)

    def test_registry_sketch_family(self):
        reg = MetricsRegistry()
        fam = reg.sketch("lat_p50", q=0.5, help_text="median latency")
        for v in range(1, 11):
            fam.observe(float(v))
        assert 3.0 <= fam.value <= 8.0


# ----------------------------------------------------------------- series


class TestRingSeries:
    def test_capacity_evicts_oldest(self):
        s = RingSeries(capacity=3)
        for t in range(5):
            s.append(float(t), float(t * 10))
        assert s.values() == [20.0, 30.0, 40.0]
        assert len(s) == 3 and s.capacity == 3

    def test_latest_tail_window(self):
        s = RingSeries()
        for t in range(4):
            s.append(float(t), float(t))
        assert s.latest() == 3.0
        assert s.tail(2) == [2.0, 3.0]
        assert s.window(since=2.0) == [(2.0, 2.0), (3.0, 3.0)]

    def test_delta_counter_window(self):
        s = RingSeries()
        for t, v in enumerate([0, 1, 1, 4, 9]):
            s.append(float(t), float(v))
        assert s.delta(2) == 8.0  # 9 - 1
        assert s.delta(10) == 0.0  # not enough points

    def test_spark_shape(self):
        s = RingSeries()
        for t, v in enumerate([0.0, 0.5, 1.0]):
            s.append(float(t), v)
        spark = s.spark()
        assert len(spark) == 3
        assert spark[0] == "▁" and spark[-1] == "█"

    def test_spark_flat_series(self):
        s = RingSeries()
        for t in range(4):
            s.append(float(t), 2.0)
        assert s.spark() == "▁▁▁▁"

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            RingSeries(0)


class TestSeriesStore:
    def test_get_or_create_and_keys(self):
        store = SeriesStore(capacity=4)
        store.append("host_load", "ws0", 0.0, 0.5)
        store.append("host_load", "ws1", 0.0, 0.7)
        assert store.keys_for("host_load") == ["ws0", "ws1"]
        assert store.series("host_load", "ws0").latest() == 0.5
        assert ("host_load", "ws0") in store

    def test_empty_store_is_usable_when_passed_in(self):
        # regression: SeriesStore defines __len__, so `store or default()`
        # used to silently replace an empty (falsy) store with a new one
        reg = MetricsRegistry()
        store = SeriesStore()
        sampler = ClusterSampler("t", reg, runtime=None, daemons={}, store=store)
        assert sampler.store is store


# -------------------------------------------------------------- exporters


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("reqs_total", "requests", labels=("kind",)).labels("get").inc(7)
    reg.gauge("host_load", "load", labels=("host",)).labels("ws0").set(0.25)
    hist = reg.histogram("dur_seconds", "durations")
    for v in (0.002, 0.5, 3.0, 200.0):
        hist.observe(v)
    sketch = reg.sketch("lat_p50", q=0.5, help_text="median")
    for v in range(10):
        sketch.observe(float(v))
    return reg


class TestPrometheusText:
    def test_format_shape(self):
        text = to_prometheus(_populated_registry())
        assert '# TYPE vce_reqs_total counter' in text
        assert 'vce_reqs_total{kind="get"} 7' in text
        assert 'vce_host_load{host="ws0"} 0.25' in text
        assert '# TYPE vce_dur_seconds histogram' in text
        assert 'le="+Inf"} 4' in text
        assert "vce_dur_seconds_sum" in text and "vce_dur_seconds_count 4" in text
        assert "# TYPE vce_lat_p50 gauge" in text  # sketches expose a gauge

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels=("k",)).labels('a"b\\c').inc()
        text = to_prometheus(reg)
        assert r'k="a\"b\\c"' in text

    def test_custom_prefix(self):
        reg = MetricsRegistry()
        reg.counter("x_total").inc()
        assert "myapp_x_total 1" in to_prometheus(reg, prefix="myapp_")


class TestSnapshotRoundTrip:
    def test_json_round_trip_preserves_prometheus_text(self):
        reg = _populated_registry()
        data = json.loads(json.dumps(snapshot(reg, time=12.5)))
        assert data["time"] == 12.5
        rebuilt = registry_from_snapshot(data)
        assert to_prometheus(rebuilt) == to_prometheus(reg)

    def test_round_trip_preserves_quantiles(self):
        reg = _populated_registry()
        rebuilt = registry_from_snapshot(snapshot(reg))
        original = reg.get("dur_seconds").quantile(0.5)
        assert rebuilt.get("dur_seconds").quantile(0.5) == original

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            registry_from_snapshot(
                {"metrics": {"x": {"kind": "mystery", "series": [{"labels": []}]}}}
            )


# --------------------------------------------------------------- watchdog


class _StubDaemon:
    """Just enough daemon surface for queue/starvation rules."""

    def __init__(self, items=()):
        self.is_coordinator = bool(items)
        self._items = list(items)

    @property
    def pending_queue(self):
        return self

    def items(self):
        return list(self._items)

    def __len__(self):
        return len(self._items)


class _QueueItem:
    def __init__(self, req_id, enqueued_at, app="app", attempts=1):
        self.enqueued_at = enqueued_at
        self.attempts = attempts
        self.request = type("Req", (), {"req_id": req_id, "app": app})()


class TestWatchdogRules:
    def _watchdog(self, daemons=None, config=None):
        reg = MetricsRegistry()
        events = []
        dog = HealthWatchdog(
            reg,
            runtime=None,
            daemons=daemons or {},
            emit=lambda category, **data: events.append((category, data)),
            config=config,
        )
        return dog, events, reg

    def test_queue_saturation_needs_consecutive_ticks(self):
        cfg = WatchdogConfig(queue_depth_threshold=4, queue_depth_ticks=3)
        dog, events, _ = self._watchdog(daemons={"ws0": _StubDaemon()}, config=cfg)
        store = SeriesStore()
        for t, depth in enumerate([5, 5]):
            store.append("daemon_queue_depth", "ws0", float(t), depth)
        assert dog.evaluate(2.0, store) == []  # only two ticks so far
        store.append("daemon_queue_depth", "ws0", 3.0, 5)
        raised = dog.evaluate(3.0, store)
        assert [e.rule for e in raised] == ["queue_saturation"]
        assert raised[0].severity == "warning"

    def test_queue_saturation_critical_at_double_threshold(self):
        cfg = WatchdogConfig(queue_depth_threshold=4, queue_depth_ticks=2)
        dog, _, _ = self._watchdog(daemons={"ws0": _StubDaemon()}, config=cfg)
        store = SeriesStore()
        store.append("daemon_queue_depth", "ws0", 0.0, 8)
        store.append("daemon_queue_depth", "ws0", 1.0, 9)
        raised = dog.evaluate(1.0, store)
        assert raised[0].severity == "critical"

    def test_edge_triggered_raise_and_clear(self):
        cfg = WatchdogConfig(queue_depth_threshold=2, queue_depth_ticks=1)
        dog, events, reg = self._watchdog(daemons={"ws0": _StubDaemon()}, config=cfg)
        store = SeriesStore()
        store.append("daemon_queue_depth", "ws0", 0.0, 5)
        assert len(dog.evaluate(0.0, store)) == 1
        store.append("daemon_queue_depth", "ws0", 1.0, 5)
        assert dog.evaluate(1.0, store) == []  # still active, not re-raised
        assert len(dog.active()) == 1
        store.append("daemon_queue_depth", "ws0", 2.0, 0)
        assert dog.evaluate(2.0, store) == []
        assert dog.active() == []
        categories = [c for c, _ in events]
        assert categories == ["health.queue_saturation", "health.cleared"]
        fam = reg.get("health_events_total")
        total = sum(child.value for _, child in fam.samples())
        assert total == 2  # one raise + one clear

    def test_bid_starvation(self):
        daemon = _StubDaemon(items=[_QueueItem("req-1", enqueued_at=0.0)])
        dog, events, _ = self._watchdog(daemons={"ws0": daemon})
        raised = dog.evaluate(31.0, SeriesStore())
        assert [e.rule for e in raised] == ["bid_starvation"]
        assert raised[0].detail["waited"] == 31.0

    def test_bid_starvation_not_before_deadline(self):
        daemon = _StubDaemon(items=[_QueueItem("req-1", enqueued_at=0.0)])
        dog, _, _ = self._watchdog(daemons={"ws0": daemon})
        assert dog.evaluate(10.0, SeriesStore()) == []

    def test_alloc_error_burst(self):
        cfg = WatchdogConfig(alloc_error_window=3, alloc_error_threshold=5)
        dog, _, _ = self._watchdog(config=cfg)
        store = SeriesStore()
        for t, total in enumerate([0, 1, 2, 8]):  # +6 over the last 3 ticks
            store.append("sched_alloc_errors_total", "", float(t), total)
        raised = dog.evaluate(3.0, store)
        assert [e.rule for e in raised] == ["alloc_errors"]
        assert raised[0].severity == "critical"

    def test_event_history_bounded(self):
        cfg = WatchdogConfig(queue_depth_threshold=1, queue_depth_ticks=1)
        dog, _, _ = self._watchdog(daemons={"ws0": _StubDaemon()}, config=cfg)
        dog.max_events = 10
        store = SeriesStore()
        for t in range(40):  # alternate raise/clear
            store.append("daemon_queue_depth", "ws0", float(t), t % 2 * 5)
            dog.evaluate(float(t), store)
        assert len(dog.events) <= 10


class TestStragglerRule:
    def _completed(self, durations):
        h = Histogram(exponential_bounds())
        for d in durations:
            h.observe(d)
        return h

    def test_fires_past_factor_times_median(self):
        cfg = WatchdogConfig(straggler_factor=3.0)
        completed = self._completed([10.0, 10.0, 10.0, 10.0])
        assert straggler_severity(31.0, completed, cfg) == "warning"
        assert straggler_severity(100.0, completed, cfg) == "critical"
        assert straggler_severity(20.0, completed, cfg) is None

    def test_needs_baseline(self):
        cfg = WatchdogConfig(straggler_min_completed=3)
        assert straggler_severity(100.0, self._completed([10.0]), cfg) is None

    def test_grace_period(self):
        cfg = WatchdogConfig(straggler_min_elapsed=1.0)
        completed = self._completed([0.01, 0.01, 0.01, 0.01])
        assert straggler_severity(0.5, completed, cfg) is None

    @settings(max_examples=200, deadline=None)
    @given(
        base=st.floats(min_value=0.01, max_value=1000.0),
        n=st.integers(min_value=3, max_value=40),
        spread=st.floats(min_value=1.0, max_value=1.8),
        elapsed_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_never_fires_on_uniform_workload(self, base, n, spread, elapsed_frac):
        """On a no-straggler workload — every sibling duration within
        `spread` (< straggler_factor) of the fastest — an in-flight
        instance that has run no longer than the slowest sibling is never
        flagged, for any elapsed time up to that maximum."""
        cfg = WatchdogConfig()
        completed = self._completed(
            [base * (1.0 + (spread - 1.0) * i / max(1, n - 1)) for i in range(n)]
        )
        elapsed = elapsed_frac * base * spread
        assert straggler_severity(elapsed, completed, cfg) is None


# ----------------------------------------------- sampler + top integration


@pytest.fixture(scope="module")
def weather_vce():
    vce = VirtualComputingEnvironment(
        # a fast sampling interval so short runs still collect many ticks
        heterogeneous_cluster(), VCEConfig(seed=3, telemetry_interval=1.0)
    ).boot()
    run = vce.run_script(WEATHER_SCRIPT, weather_programs(), name="snow")
    vce.run_to_completion(run)
    return vce, run


class TestSamplerIntegration:
    def test_sampler_ticks_and_host_gauges(self, weather_vce):
        vce, _ = weather_vce
        telemetry = vce.telemetry
        assert telemetry is not None
        assert telemetry.sampler.ticks > 10
        load = telemetry.registry.get("host_load")
        hosts = {values[0] for values, _ in load.samples()}
        assert {"ws0", "simd0", "mimd0"} <= hosts

    def test_task_duration_histograms_fed(self, weather_vce):
        vce, _ = weather_vce
        durations = vce.telemetry.registry.get("task_duration_seconds")
        predictor = durations.labels("predictor")
        assert predictor.count == 1
        assert predictor.quantile(0.5) > 0

    def test_run_completes_despite_daemon_timer(self, weather_vce):
        # the sampler's daemon timer must never keep the simulation alive
        vce, run = weather_vce
        assert run.state.value == "done"

    def test_series_recorded(self, weather_vce):
        vce, _ = weather_vce
        store = vce.telemetry.store
        assert len(store.series("host_load", "ws0")) > 10
        assert store.series("net_messages_sent", "").latest() > 0

    def test_no_health_events_on_healthy_run(self, weather_vce):
        vce, _ = weather_vce
        assert vce.telemetry.watchdog.active() == []

    def test_render_top_frame(self, weather_vce):
        vce, _ = weather_vce
        frame = vce.telemetry.render()
        assert "ws0" in frame and "load" in frame
        assert "predictor" in frame and "p95" in frame
        assert "health: ok" in frame

    def test_telemetry_off_leaves_no_registry(self):
        vce = VirtualComputingEnvironment(
            heterogeneous_cluster(), VCEConfig(seed=3, telemetry=False)
        ).boot()
        assert vce.telemetry is None
        assert vce.sim.telemetry is None

    def test_same_seed_same_metrics(self):
        def run_once():
            vce = VirtualComputingEnvironment(
                heterogeneous_cluster(), VCEConfig(seed=9)
            ).boot()
            run = vce.run_script(WEATHER_SCRIPT, weather_programs(), name="snow")
            vce.run_to_completion(run)
            return vce.telemetry.prometheus()

        assert run_once() == run_once()


class TestRenderTop:
    def test_renders_from_bare_registry(self):
        reg = _populated_registry()
        frame = render_top(reg, SeriesStore(), watchdog=None, now=4.5)
        assert "t=4.50s" in frame
        assert "totals:" in frame
