"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.workloads import WEATHER_SCRIPT


@pytest.fixture
def weather_file(tmp_path):
    path = tmp_path / "snow.vce"
    path.write_text(WEATHER_SCRIPT)
    return str(path)


class TestDescribe:
    def test_weather_script(self, weather_file):
        out = io.StringIO()
        assert main(["describe", weather_file], out=out) == 0
        text = out.getvalue()
        assert "collector" in text and "predictor" in text
        assert "SIMD" in text and "LOCAL" in text
        assert "2..2" in text  # ASYNC 2

    def test_with_channels_and_priority(self, tmp_path):
        script = tmp_path / "app.vce"
        script.write_text(
            'ASYNC 1 "/a/src.vce"\nASYNC 1 "/a/dst.vce"\n'
            'CHANNEL pipe FROM "/a/src.vce" TO "/a/dst.vce" VOLUME 9\nPRIORITY 3'
        )
        out = io.StringIO()
        assert main(["describe", str(script)], out=out) == 0
        assert "pipe" in out.getvalue()
        assert "priority: 3" in out.getvalue()

    def test_variables(self, tmp_path):
        script = tmp_path / "cond.vce"
        script.write_text(
            'IF n >= 4 THEN ASYNC 4 "/a/w.vce" ELSE ASYNC 1 "/a/w.vce" ENDIF'
        )
        out = io.StringIO()
        assert main(["describe", str(script), "--var", "n=5"], out=out) == 0
        assert "4..4" in out.getvalue()

    def test_missing_file(self):
        assert main(["describe", "/nonexistent.vce"]) == 2

    def test_bad_script(self, tmp_path):
        script = tmp_path / "bad.vce"
        script.write_text("FROB!!")
        assert main(["describe", str(script)]) == 2


class TestRun:
    def test_weather_end_to_end(self, weather_file):
        out = io.StringIO()
        code = main(["run", weather_file, "--seed", "1"], out=out)
        text = out.getvalue()
        assert code == 0, text
        assert "state: done" in text
        assert "predictor[0]" in text and "simd0" in text
        assert "makespan" in text

    def test_run_ws_cluster_policy(self, tmp_path):
        script = tmp_path / "batch.vce"
        script.write_text('ASYNC 3 "/a/jobs.vce"')
        out = io.StringIO()
        code = main(
            ["run", str(script), "--cluster", "ws:4", "--policy", "round-robin",
             "--default-work", "2"],
            out=out,
        )
        assert code == 0, out.getvalue()
        assert "jobs[2]" in out.getvalue()

    def test_insufficient_cluster_fails_nonzero(self, tmp_path):
        script = tmp_path / "big.vce"
        script.write_text('ASYNC 5 "/a/jobs.vce"')
        out = io.StringIO()
        code = main(["run", str(script), "--cluster", "ws:2"], out=out)
        assert code == 1
        assert "state: failed" in out.getvalue()

    def test_bad_cluster_spec(self, weather_file):
        assert main(["run", weather_file, "--cluster", "quantum:3"]) == 2


class TestDemo:
    @pytest.mark.parametrize("workload", ["weather", "montecarlo", "stencil", "pipeline"])
    def test_demos_complete(self, workload):
        out = io.StringIO()
        assert main(["demo", workload], out=out) == 0, out.getvalue()
        assert "state: done" in out.getvalue()

    def test_demo_prints_results(self):
        out = io.StringIO()
        main(["demo", "montecarlo"], out=out)
        assert "result worker: 3.1" in out.getvalue()  # a pi estimate


class TestTop:
    def test_snapshot_prints_gauges_and_quantiles(self, weather_file):
        out = io.StringIO()
        code = main(["top", weather_file, "--snapshot"], out=out)
        text = out.getvalue()
        assert code == 0, text
        # per-host gauge rows
        assert "host" in text and "load" in text and "inflight" in text
        assert "ws0" in text and "simd0" in text
        # at least one histogram quantile
        assert "p50 (s)" in text and "predictor" in text
        assert "state: done" in text

    def test_snapshot_exports_round_trip(self, weather_file, tmp_path):
        import json

        from repro.telemetry import registry_from_snapshot, to_prometheus

        json_path = tmp_path / "metrics.json"
        prom_path = tmp_path / "metrics.prom"
        out = io.StringIO()
        code = main(
            ["top", weather_file, "--snapshot",
             "--json", str(json_path), "--prom", str(prom_path)],
            out=out,
        )
        assert code == 0, out.getvalue()
        exported = prom_path.read_text()
        assert '# TYPE vce_host_load gauge' in exported
        assert 'vce_task_duration_seconds_bucket' in exported
        # the JSON snapshot rebuilds to the exact same exposition text
        rebuilt = registry_from_snapshot(json.loads(json_path.read_text()))
        assert to_prometheus(rebuilt) == exported

    def test_interactive_frames(self, weather_file):
        out = io.StringIO()
        code = main(["top", weather_file, "--refresh", "10", "--frames", "2"], out=out)
        text = out.getvalue()
        assert code in (0, 1)
        assert "[frame 1]" in text and "[frame 2]" in text
        assert "[frame 3]" not in text

    def test_interactive_runs_to_done_by_default(self, weather_file):
        out = io.StringIO()
        code = main(["top", weather_file, "--refresh", "50"], out=out)
        assert code == 0, out.getvalue()
        assert "state: done" in out.getvalue()


class TestTraceCLI:
    def test_prints_critical_path_and_attribution(self, weather_file):
        out = io.StringIO()
        code = main(["trace", weather_file], out=out)
        text = out.getvalue()
        assert code == 0, text
        assert "critical path" in text
        assert "attribution:" in text
        assert "path total:" in text

    def test_missing_script_exits_2(self):
        assert main(["trace", "/nonexistent.vce"]) == 2

    def test_failed_run_exits_1(self, tmp_path):
        script = tmp_path / "big.vce"
        script.write_text('ASYNC 5 "/a/jobs.vce"')
        out = io.StringIO()
        code = main(["trace", str(script), "--cluster", "ws:2"], out=out)
        assert code == 1
        assert "state: failed" in out.getvalue()

    def test_export_to_missing_dir_exits_2(self, weather_file, capsys):
        code = main(["trace", weather_file, "--export", "/nonexistent-dir/t.json"],
                    out=io.StringIO())
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_export_writes_chrome_json(self, weather_file, tmp_path):
        import json

        path = tmp_path / "trace.json"
        out = io.StringIO()
        assert main(["trace", weather_file, "--export", str(path)], out=out) == 0
        events = json.loads(path.read_text())["traceEvents"]
        assert any(e.get("ph") == "X" for e in events)
        assert str(path) in out.getvalue()

    def test_bad_var_rejected_by_parser(self, weather_file, capsys):
        with pytest.raises(SystemExit):
            main(["trace", weather_file, "--var", "n"], out=io.StringIO())
        assert "invalid" in capsys.readouterr().err


class TestTopErrorPaths:
    def test_missing_script_exits_2(self, capsys):
        assert main(["top", "/nonexistent.vce", "--snapshot"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_failed_run_exits_1_but_renders(self, tmp_path):
        script = tmp_path / "big.vce"
        script.write_text('ASYNC 5 "/a/jobs.vce"')
        out = io.StringIO()
        code = main(["top", str(script), "--cluster", "ws:2", "--snapshot"], out=out)
        text = out.getvalue()
        assert code == 1
        assert "state: failed" in text
        assert "host" in text  # the frame still renders host gauges

    def test_empty_registry_exports_cleanly(self, tmp_path):
        """A run that fails before any task executes still exports a valid
        (task-sample-free) registry."""
        import json

        script = tmp_path / "big.vce"
        script.write_text('ASYNC 5 "/a/jobs.vce"')
        json_path = tmp_path / "m.json"
        out = io.StringIO()
        code = main(
            ["top", str(script), "--cluster", "ws:2", "--snapshot",
             "--json", str(json_path)],
            out=out,
        )
        assert code == 1
        snapshot = json.loads(json_path.read_text())
        assert "host_load" in snapshot["metrics"]
        durations = snapshot["metrics"].get("task_duration_seconds")
        assert durations is None or all(
            entry["count"] == 0 for entry in durations["series"]
        )

    def test_json_to_missing_dir_exits_2(self, weather_file, capsys):
        code = main(
            ["top", weather_file, "--snapshot", "--json", "/nonexistent-dir/m.json"],
            out=io.StringIO(),
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestChaosCLI:
    def test_chaos_mix_reports_faults_and_recovery(self, weather_file):
        out = io.StringIO()
        code = main(["chaos", weather_file, "--schedule", "chaos-mix", "--seed", "3"],
                    out=out)
        text = out.getvalue()
        assert code == 0, text
        assert "state: done" in text
        assert "schedule: chaos-mix" in text
        assert "injected faults:" in text and "crash=" in text
        assert "recovery actions:" in text
        assert "retransmits" in text

    def test_missing_script_exits_2(self, capsys):
        assert main(["chaos", "/nonexistent.vce"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_schedule_rejected_by_parser(self, weather_file, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", weather_file, "--schedule", "meteor"])
        assert "invalid choice" in capsys.readouterr().err


class TestGantt:
    def test_gantt_printed(self, weather_file):
        out = io.StringIO()
        code = main(["run", weather_file, "--gantt"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "timeline" in text and "#" in text
        assert "|" in text
