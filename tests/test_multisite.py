"""Tests for multi-site (WAN) support: routes, clusters, site-packed
placement."""


from repro.core import VCEConfig, VirtualComputingEnvironment, multi_site_cluster
from repro.machines import MachineClass
from repro.netsim import Address, LatencyModel, Network, SimProcess, Simulator
from repro.scheduler import MachineBid, site_packed_assignment
from repro.scheduler.execution_program import RunState
from repro.workloads import build_stencil_graph

WAN = LatencyModel(base_latency=0.05, bandwidth=125_000, jitter=0.0)  # 1 Mb/s, 50ms


class _Echo(SimProcess):
    def __init__(self, name):
        super().__init__(name)
        self.got = []

    def on_message(self, src, payload):
        self.got.append((self.now, payload))


class TestRoutes:
    def test_per_pair_latency_override(self):
        sim = Simulator()
        net = Network(sim, LatencyModel(base_latency=1e-3, jitter=0.0))
        a, b, c = net.add_host("a"), net.add_host("b"), net.add_host("c")
        net.set_route("a", "c", WAN)
        sinks = {}
        for host in (b, c):
            sink = _Echo("sink")
            host.spawn(sink)
            sinks[host.name] = sink
        sender = _Echo("sender")
        a.spawn(sender)
        sim.run()
        sender.send(Address("b", "sink"), "lan", size=100)
        sender.send(Address("c", "sink"), "wan", size=100)
        sim.run()
        lan_time = sinks["b"].got[0][0]
        wan_time = sinks["c"].got[0][0]
        assert wan_time > lan_time + 0.04  # the 50ms WAN base latency

    def test_route_symmetric(self):
        net = Network(Simulator())
        net.add_host("a")
        net.add_host("b")
        net.set_route("a", "b", WAN)
        assert net.latency_between("b", "a") is WAN
        assert net.latency_between("a", "a") is net.latency


class TestMultiSiteCluster:
    def test_machines_carry_sites(self):
        machines = multi_site_cluster({"syr": 3, "cornell": 2})
        sites = [m.attributes["site"] for m in machines]
        assert sites.count("syr") == 3 and sites.count("cornell") == 2
        assert machines[0].name == "syr-ws0"

    def test_vce_wires_wan_routes(self):
        machines = multi_site_cluster({"syr": 2, "cornell": 2})
        config = VCEConfig(wan_latency=WAN)
        vce = VirtualComputingEnvironment(machines, config)
        assert vce.network.latency_between("syr-ws0", "cornell-ws0") is WAN
        assert vce.network.latency_between("syr-ws0", "syr-ws1") is vce.network.latency
        # the user workstation joins the first site
        assert vce.network.latency_between("user", "syr-ws0") is vce.network.latency
        assert vce.network.latency_between("user", "cornell-ws1") is WAN

    def test_no_wan_config_means_flat_lan(self):
        machines = multi_site_cluster({"syr": 1, "cornell": 1})
        vce = VirtualComputingEnvironment(machines)
        assert (
            vce.network.latency_between("syr-ws0", "cornell-ws0")
            is vce.network.latency
        )


class TestSitePackedPolicy:
    def _bids(self):
        return [
            MachineBid("syr-ws0", None, 0.3, 1.0, MachineClass.WORKSTATION, site="syr"),
            MachineBid("syr-ws1", None, 0.3, 1.0, MachineClass.WORKSTATION, site="syr"),
            MachineBid("cor-ws0", None, 0.0, 1.0, MachineClass.WORKSTATION, site="cor"),
            MachineBid("cor-ws1", None, 0.0, 1.0, MachineClass.WORKSTATION, site="cor"),
            MachineBid("cor-ws2", None, 0.0, 1.0, MachineClass.WORKSTATION, site="cor"),
        ]

    def test_packs_task_on_biggest_site(self):
        all_machines = [b.machine for b in self._bids()]
        needs = [("t", r, all_machines) for r in range(3)]
        out = site_packed_assignment(needs, self._bids())
        assert len(out) == 3
        assert all(m.startswith("cor-") for m in out.values())

    def test_spills_over_when_site_too_small(self):
        all_machines = [b.machine for b in self._bids()]
        needs = [("t", r, all_machines) for r in range(5)]
        out = site_packed_assignment(needs, self._bids())
        assert len(out) == 5
        assert len(set(out.values())) == 5

    def test_two_tasks_pack_independently(self):
        all_machines = [b.machine for b in self._bids()]
        needs = [("a", 0, all_machines), ("a", 1, all_machines),
                 ("b", 0, all_machines), ("b", 1, all_machines)]
        out = site_packed_assignment(needs, self._bids())
        assert len(out) == 4
        a_sites = {out[("a", 0)].split("-")[0], out[("a", 1)].split("-")[0]}
        assert len(a_sites) == 1  # task a stayed on one site


class TestEndToEndWan:
    def _run(self, policy, seed=30):
        machines = multi_site_cluster({"syr": 4, "cornell": 4})
        config = VCEConfig(seed=seed, wan_latency=WAN)
        vce = VirtualComputingEnvironment(machines, config).boot()
        graph = build_stencil_graph(ranks=4, cells=32, iterations=20)
        run = vce.submit(
            graph, class_map={"grid": MachineClass.WORKSTATION}, policy=policy
        )
        vce.run_to_completion(run, timeout=3_000.0)
        assert run.state is RunState.DONE, run.error
        sites = {
            run.placement.host_for("grid", r).split("-")[0] for r in range(4)
        }
        return run.app.makespan, sites

    def test_site_packed_beats_load_sorted_for_stencil(self):
        """Halo exchange every iteration: scattering ranks across the WAN
        pays 2x50ms per iteration; packing them on one campus does not."""
        from repro.scheduler import load_sorted_assignment

        packed_ms, packed_sites = self._run(site_packed_assignment)
        assert len(packed_sites) == 1  # all ranks on one campus
        spread_ms, spread_sites = self._run(load_sorted_assignment)
        if len(spread_sites) > 1:  # load-sorted happened to scatter
            assert packed_ms < spread_ms / 2
