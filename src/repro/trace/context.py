"""The trace context carried along an application's causal path.

A :class:`TraceContext` is immutable and cheap: components hand out child
contexts (same trace, new span, parent = their own span) as causality
crosses a boundary — execution program → resource request → bidding round,
application → task instance, and so on. Span ids are drawn from the
simulator's deterministic :class:`~repro.util.ids.IdGenerator`, so two runs
with the same seed mint identical trace/span ids (the deterministic-replay
harness relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class TraceContext:
    """Identity of one span within one trace.

    Attributes:
        trace_id: the whole causal tree (one per application run).
        span_id: this node in the tree.
        parent_span_id: the span that caused this one (None at the root).
    """

    trace_id: str
    span_id: str
    parent_span_id: str | None = None

    def child(self, span_id: str) -> "TraceContext":
        """A new span in the same trace, parented to this one."""
        return TraceContext(self.trace_id, span_id, self.span_id)

    def fields(self) -> dict[str, Any]:
        """The event-log payload keys every traced record carries."""
        out: dict[str, Any] = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_span_id is not None:
            out["parent_span_id"] = self.parent_span_id
        return out


def trace_fields(ctx: TraceContext | None) -> dict[str, Any]:
    """``ctx.fields()``, or ``{}`` for untraced flows (e.g. hand-built
    scheduler messages in unit tests)."""
    return ctx.fields() if ctx is not None else {}
