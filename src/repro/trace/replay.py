"""Deterministic-replay harness.

The simulator promises bit-identical behaviour for identical seeds — the
heap's (time, sequence) total order, per-prefix id counters, and named RNG
streams leave no room for nondeterminism. The trace layer must not break
that promise (trace/span ids are minted from the same deterministic id
generator), and this module is the guard: it canonicalizes a whole event
log — *including* every trace field — into a digest, so a test can run a
scenario twice and compare one hash instead of thousands of records.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable

from repro.util.eventlog import EventLog, LogRecord


def canonical_record(record: LogRecord) -> str:
    """A stable one-line rendering of *record* (sorted payload keys,
    ``repr`` values so floats round-trip exactly)."""
    payload = ",".join(f"{k}={record.data[k]!r}" for k in sorted(record.data))
    return f"{record.time!r}|{record.category}|{record.source}|{payload}"


def event_log_digest(log: EventLog | Iterable[LogRecord]) -> str:
    """SHA-256 over the canonical rendering of every record, in order."""
    digest = hashlib.sha256()
    for record in log:
        digest.update(canonical_record(record).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def run_digest(scenario: Callable[[], EventLog]) -> str:
    """Run *scenario* (builds, runs, and returns a fresh simulation's
    event log) and digest the result."""
    return event_log_digest(scenario())


def assert_deterministic(scenario: Callable[[], EventLog], runs: int = 2) -> str:
    """Run *scenario* *runs* times; raise AssertionError with the first
    diverging record if any digest differs. Returns the common digest."""
    logs = [list(scenario()) for _ in range(runs)]
    digests = [event_log_digest(log) for log in logs]
    if len(set(digests)) != 1:
        reference = logs[0]
        for other in logs[1:]:
            for i, (a, b) in enumerate(zip(reference, other)):
                if canonical_record(a) != canonical_record(b):
                    raise AssertionError(
                        f"replay diverged at record {i}:\n"
                        f"  run 0: {canonical_record(a)}\n"
                        f"  run n: {canonical_record(b)}"
                    )
            if len(reference) != len(other):
                raise AssertionError(
                    f"replay diverged in length: {len(reference)} vs {len(other)} records"
                )
        raise AssertionError(f"replay digests differ: {digests}")
    return digests[0]
