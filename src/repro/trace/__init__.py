"""Causal tracing: follow one application through the distributed runtime.

The flat :class:`~repro.util.eventlog.EventLog` answers *what happened*;
this package answers *why it happened when it did*. A
:class:`TraceContext` (trace id + span id + parent span id) is minted when
an application enters the system and propagated through scheduler
messages, daemon bidding rounds, runtime dispatch, task instances,
channel sends, and migrations, so every log record on an application's
causal path carries ``trace_id``/``span_id`` fields.

On top of the tagged log:

- :class:`TraceAssembler` rebuilds the span tree of each trace;
- :func:`critical_path` extracts the longest causal chain submit → done
  and attributes its time to queue-wait / bidding / comms / compute /
  migration;
- :func:`chrome_trace` / :func:`export_chrome_trace` emit Chrome
  trace-event JSON (load in ``chrome://tracing`` or Perfetto);
- :mod:`repro.trace.replay` is a deterministic-replay harness: digest an
  event log (trace ids included) and assert that re-running a scenario
  reproduces it byte for byte.
"""

from repro.trace.assemble import Span, Trace, TraceAssembler
from repro.trace.context import TraceContext, trace_fields
from repro.trace.critical import CriticalPath, PathSegment, critical_path
from repro.trace.export import chrome_trace, export_chrome_trace
from repro.trace.replay import assert_deterministic, event_log_digest

__all__ = [
    "TraceContext",
    "trace_fields",
    "Span",
    "Trace",
    "TraceAssembler",
    "CriticalPath",
    "PathSegment",
    "critical_path",
    "chrome_trace",
    "export_chrome_trace",
    "event_log_digest",
    "assert_deterministic",
]
