"""Chrome trace-event JSON export.

Produces the `trace event format`_ consumed by ``chrome://tracing`` and
Perfetto: one complete ("ph": "X") event per span, grouped one process
per trace and one thread lane per span name, with metadata events naming
both. Timestamps are microseconds (simulation seconds × 1e6).

.. _trace event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.trace.assemble import Trace

_US = 1e6  # seconds -> microseconds


def chrome_trace(traces: Iterable[Trace]) -> dict[str, Any]:
    """Assembled traces → a Chrome trace-event document (a JSON-ready
    dict with a ``traceEvents`` list)."""
    events: list[dict[str, Any]] = []
    for pid, trace in enumerate(traces):
        events.append(_meta(pid, 0, "process_name", name=f"trace {trace.trace_id}"))
        lanes: dict[str, int] = {}
        for span in sorted(trace.spans.values(), key=lambda s: (s.start, s.span_id)):
            tid = lanes.setdefault(span.name, len(lanes))
            args: dict[str, Any] = {
                "span_id": span.span_id,
                "parent_span_id": span.parent_span_id,
            }
            for key, value in span.attrs.items():
                args[key] = value if isinstance(value, (int, float, str, bool)) else str(value)
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start * _US,
                    "dur": span.duration * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            for time, category, data in span.events:
                events.append(
                    {
                        "name": category,
                        "cat": "event",
                        "ph": "i",
                        "s": "t",  # thread-scoped instant
                        "ts": time * _US,
                        "pid": pid,
                        "tid": tid,
                        "args": {
                            k: v if isinstance(v, (int, float, str, bool)) else str(v)
                            for k, v in data.items()
                        },
                    }
                )
        for name, tid in lanes.items():
            events.append(_meta(pid, tid, "thread_name", name=name))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _meta(pid: int, tid: int, event: str, **args: Any) -> dict[str, Any]:
    return {"name": event, "ph": "M", "pid": pid, "tid": tid, "args": args}


def export_chrome_trace(traces: Iterable[Trace], path: str) -> str:
    """Write :func:`chrome_trace` output to *path*; returns the path."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(traces), fh, indent=1)
    return path
