"""Rebuild span trees from a trace-tagged event log.

The runtime never materializes span objects while it runs — it only tags
:class:`~repro.util.eventlog.LogRecord` payloads with
``trace_id``/``span_id``/``parent_span_id``. The :class:`TraceAssembler`
is the post-hoc inverse: it pairs span-opening records with their closing
records, attaches annotations (task.start times, suspend windows, channel
hops) to the owning span, and links parents to children.

Span vocabulary (opener → closers):

========  ==================  =============================================
category  opened by           closed by
========  ==================  =============================================
exec      exec.submit         exec.finished / exec.failed
alloc     exec.request        exec.reply
sched     sched.request       sched.alloc / sched.alloc_error
app       app.submit          app.done / app.failed / app.terminate
task      runtime.dispatch    task.done / task.failed / task.killed /
                              task.host_crashed
migration migration.done      (point record: span is [time-latency, time])
========  ==================  =============================================

Any other trace-tagged record (chan.send, chan.recv, task.checkpoint,
task.file_fetch, sched.retry, ...) becomes a timestamped *event* on the
span it names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.util.eventlog import EventLog


@dataclass
class Span:
    """One node of a trace's span tree."""

    trace_id: str
    span_id: str
    parent_span_id: str | None
    name: str
    category: str
    start: float
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    events: list[tuple[float, str, dict[str, Any]]] = field(default_factory=list)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def tree(self) -> Iterable["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.tree()


@dataclass
class Trace:
    """All spans of one trace_id, linked into a tree."""

    trace_id: str
    spans: dict[str, Span]
    roots: list[Span]

    @property
    def root(self) -> Span:
        return self.roots[0]

    def by_category(self, category: str) -> list[Span]:
        return [s for s in self.spans.values() if s.category == category]

    def app_span(self) -> Span | None:
        apps = self.by_category("app")
        return min(apps, key=lambda s: s.start) if apps else None


#: opener record category → (span category, name builder)
_OPENERS: dict[str, tuple[str, Any]] = {
    "exec.submit": ("exec", lambda r: f"exec:{r.get('app')}"),
    "exec.request": ("alloc", lambda r: f"alloc:{r.get('cls')}"),
    "sched.request": ("sched", lambda r: f"bidding:{r.get('req_id')}"),
    "app.submit": ("app", lambda r: f"app:{r.source}"),
    "runtime.dispatch": (
        "task",
        lambda r: f"{r.get('task')}[{r.get('rank')}]#{r.get('incarnation', 0)}",
    ),
}

_CLOSERS = {
    "exec.finished",
    "exec.failed",
    "exec.reply",
    "sched.alloc",
    "sched.alloc_error",
    "app.done",
    "app.failed",
    "app.terminate",
    "task.done",
    "task.failed",
    "task.killed",
    "task.host_crashed",
}

#: opener payload keys copied onto the span's attrs
_ATTR_KEYS = (
    "app", "cls", "req_id", "task", "rank", "host",
    "stage_in", "binary", "incarnation", "after", "tasks", "needed",
)


class TraceAssembler:
    """Pairs trace-tagged records back into :class:`Trace` objects."""

    def __init__(self, log: EventLog) -> None:
        self.log = log

    def assemble(self) -> list[Trace]:
        """All traces present in the log, roots ordered by start time."""
        spans: dict[tuple[str, str], Span] = {}  # (trace_id, span_id) -> span
        open_suspends: dict[tuple[str, str], float] = {}
        last_time: dict[str, float] = {}

        for record in self.log:
            trace_id = record.get("trace_id")
            span_id = record.get("span_id")
            if trace_id is None or span_id is None:
                continue
            last_time[trace_id] = record.time
            key = (trace_id, span_id)

            if record.category in _OPENERS:
                category, name_of = _OPENERS[record.category]
                span = Span(
                    trace_id=trace_id,
                    span_id=span_id,
                    parent_span_id=record.get("parent_span_id"),
                    name=name_of(record),
                    category=category,
                    start=record.time,
                    attrs={
                        k: record.get(k) for k in _ATTR_KEYS if k in record.data
                    },
                )
                if category == "app":
                    span.attrs.setdefault("app", record.source)
                spans[key] = span
            elif record.category == "migration.done":
                latency = float(record.get("latency", 0.0))
                spans[key] = Span(
                    trace_id=trace_id,
                    span_id=span_id,
                    parent_span_id=record.get("parent_span_id"),
                    name=f"migrate:{record.source}:{record.get('scheme')}",
                    category="migration",
                    start=record.time - latency,
                    end=record.time,
                    attrs={
                        "scheme": record.get("scheme"),
                        "src": record.get("src"),
                        "dst": record.get("dst"),
                        "task": record.get("task"),
                        "rank": record.get("rank"),
                        "latency": latency,
                    },
                )
            elif record.category in _CLOSERS:
                span = spans.get(key)
                if span is None:
                    # closer without a recorded opener (truncated log):
                    # represent it as a zero-length span so nothing is lost
                    span = Span(
                        trace_id=trace_id,
                        span_id=span_id,
                        parent_span_id=record.get("parent_span_id"),
                        name=record.category,
                        category=record.category.split(".")[0],
                        start=record.time,
                    )
                    spans[key] = span
                span.end = record.time
                span.attrs["outcome"] = record.category
            elif record.category == "task.start":
                span = spans.get(key)
                if span is not None:
                    span.attrs["started"] = record.time
            elif record.category == "task.suspend":
                open_suspends[key] = record.time
            elif record.category == "task.resume":
                span = spans.get(key)
                suspended_at = open_suspends.pop(key, None)
                if span is not None and suspended_at is not None:
                    span.attrs.setdefault("suspends", []).append(
                        (suspended_at, record.time)
                    )
            else:
                span = spans.get(key)
                if span is not None:
                    span.events.append((record.time, record.category, record.data))

        # close dangling suspend windows and open spans at trace end
        for key, suspended_at in open_suspends.items():
            span = spans.get(key)
            if span is not None:
                until = span.end if span.end is not None else last_time[span.trace_id]
                span.attrs.setdefault("suspends", []).append((suspended_at, until))
        for span in spans.values():
            if span.end is None:
                span.end = max(last_time[span.trace_id], span.start)

        return self._link(spans)

    @staticmethod
    def _link(spans: dict[tuple[str, str], Span]) -> list[Trace]:
        by_trace: dict[str, dict[str, Span]] = {}
        for (trace_id, span_id), span in spans.items():
            by_trace.setdefault(trace_id, {})[span_id] = span
        traces = []
        for trace_id, members in by_trace.items():
            roots = []
            for span in members.values():
                parent = (
                    members.get(span.parent_span_id)
                    if span.parent_span_id is not None
                    else None
                )
                if parent is not None and parent is not span:
                    parent.children.append(span)
                else:
                    roots.append(span)
            for span in members.values():
                span.children.sort(key=lambda s: (s.start, s.span_id))
            roots.sort(key=lambda s: (s.start, s.span_id))
            traces.append(Trace(trace_id, members, roots))
        traces.sort(key=lambda t: (t.root.start, t.trace_id))
        return traces


def assemble(log: EventLog) -> list[Trace]:
    """Convenience wrapper: ``TraceAssembler(log).assemble()``."""
    return TraceAssembler(log).assemble()
