"""Critical-path extraction over an assembled trace.

The critical path of an application is the longest causal chain from
``app.submit`` to ``app.done``: the sequence of instance spans in which
each dispatch was released by the previous span's completion (precedence
edges come from the ``after`` field the runtime manager records at
dispatch; migration re-dispatches chain to the superseded incarnation).

The path is returned as a *contiguous* sequence of
:class:`PathSegment`\\ s covering exactly ``[submit, done]``, each
attributed to one of:

- ``comms`` — data stage-in (DATA-arc transfer before the program runs);
- ``queue-wait`` — binary load / compile-on-demand wait before start;
- ``compute`` — the program advancing on its host;
- ``suspended`` — Stealth-style suspension windows (§4.3 ripple effect);
- ``migration`` — moving an incarnation between hosts;
- ``dispatch`` — runtime bookkeeping between a trigger and the next
  dispatch (usually ~0);
- ``wait`` — any residual hole the chain cannot explain.

Because the segments tile the interval, their durations always sum to the
application makespan — the property the ``repro trace`` CLI (and the
acceptance test) checks against ``MetricsCollector.app_makespans``.

The allocation phase (resource request → bids → placement) happens
*before* ``app.submit`` and therefore outside the makespan; it is
attributed separately (``bid`` for leader bidding rounds, ``alloc`` for
request/queue/reply time) in :attr:`CriticalPath.allocation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.trace.assemble import Span, Trace

_EPS = 1e-12


@dataclass(frozen=True, slots=True)
class PathSegment:
    """One attributed interval on the critical path."""

    kind: str
    start: float
    end: float
    span: str  # name of the span the interval belongs to

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The attributed critical path of one application."""

    app: str
    trace_id: str
    start: float  # app.submit time
    end: float  # app completion time
    segments: list[PathSegment]  # contiguous over [start, end]
    allocation: list[PathSegment] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return self.end - self.start

    @property
    def total(self) -> float:
        """Sum of segment durations — equals :attr:`makespan` by
        construction (the tiling invariant)."""
        return sum(seg.duration for seg in self.segments)

    def by_kind(self) -> dict[str, float]:
        """kind → total attributed seconds (path segments only)."""
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.kind] = out.get(seg.kind, 0.0) + seg.duration
        return out


def critical_path(trace: Trace, app_span: Span | None = None) -> CriticalPath | None:
    """Extract the critical path of *trace*'s application (None when the
    trace contains no app span)."""
    if app_span is None:
        app_span = trace.app_span()
    if app_span is None or app_span.end is None:
        return None

    instances = [
        s for s in trace.spans.values()
        if s.category == "task" and s.parent_span_id == app_span.span_id
    ]
    chain = _walk_back(trace, instances)
    raw = _attribute(chain)
    segments = _tile(raw, app_span.start, app_span.end)
    return CriticalPath(
        app=app_span.attrs.get("app", app_span.name),
        trace_id=trace.trace_id,
        start=app_span.start,
        end=app_span.end,
        segments=segments,
        allocation=_allocation_segments(trace, app_span),
    )


# --------------------------------------------------------------- back-walk


def _walk_back(trace: Trace, instances: list[Span]) -> list[tuple[Span, str]]:
    """Chain of (span, edge-kind-before-it) from first to last, where the
    edge kind labels the gap between the trigger's end and the span's
    dispatch."""
    if not instances:
        return []
    span = max(instances, key=lambda s: (s.end, s.start, s.span_id))
    order: list[Span] = []
    edges: dict[str, str] = {}  # span_id -> kind of the gap before it
    seen: set[str] = set()
    while span is not None and span.span_id not in seen:
        seen.add(span.span_id)
        order.append(span)
        trigger, edges[span.span_id] = _trigger_of(trace, instances, span)
        span = trigger
    order.reverse()
    return [(s, edges[s.span_id]) for s in order]


def _trigger_of(
    trace: Trace, instances: list[Span], span: Span
) -> tuple[Span | None, str]:
    """The span whose completion released *span*'s dispatch."""
    after = span.attrs.get("after") or ()
    candidates = [
        trace.spans[a]
        for a in after
        if a in trace.spans and trace.spans[a].end is not None
        and trace.spans[a].end <= span.start + _EPS
    ]
    best: Span | None = None
    kind = "dispatch"
    if candidates:
        best = max(candidates, key=lambda c: (c.end, c.start, c.span_id))
    incarnation = span.attrs.get("incarnation", 0)
    if incarnation:
        # a re-dispatch chains to the incarnation it superseded — the
        # latest-ending trigger wins (the migration is usually it)
        previous = [
            c for c in instances
            if c.attrs.get("task") == span.attrs.get("task")
            and c.attrs.get("rank") == span.attrs.get("rank")
            and c.attrs.get("incarnation") == incarnation - 1
            and c.end is not None and c.end <= span.start + _EPS
        ]
        if previous and (best is None or previous[0].end >= best.end):
            best, kind = previous[0], "migration"
    return best, kind


# ------------------------------------------------------------- attribution


def _attribute(chain: Iterable[tuple[Span, str]]) -> list[tuple[str, float, float, str]]:
    """(kind, start, end, span-name) intervals, chronological, possibly
    with holes (the tiler fills those)."""
    raw: list[tuple[str, float, float, str]] = []
    previous_end: float | None = None
    for span, edge in chain:
        if previous_end is not None and span.start > previous_end + _EPS:
            raw.append((edge, previous_end, span.start, span.name))
        stage_in = float(span.attrs.get("stage_in", 0.0) or 0.0)
        started = min(
            max(float(span.attrs.get("started", span.start + stage_in)), span.start),
            span.end,
        )
        stage_split = min(span.start + stage_in, started)
        if stage_split > span.start:
            raw.append(("comms", span.start, stage_split, span.name))
        if started > stage_split:
            raw.append(("queue-wait", stage_split, started, span.name))
        raw.extend(_compute_segments(span, started))
        previous_end = span.end
    return raw


def _compute_segments(
    span: Span, started: float
) -> list[tuple[str, float, float, str]]:
    """[started, end] split into compute / suspended intervals."""
    out: list[tuple[str, float, float, str]] = []
    cursor = started
    for suspended_at, resumed_at in sorted(span.attrs.get("suspends", [])):
        a, b = max(suspended_at, cursor), min(resumed_at, span.end)
        if a > cursor:
            out.append(("compute", cursor, a, span.name))
        if b > a:
            out.append(("suspended", a, b, span.name))
        cursor = max(cursor, b)
    if span.end > cursor:
        out.append(("compute", cursor, span.end, span.name))
    return out


def _tile(
    raw: list[tuple[str, float, float, str]], start: float, end: float
) -> list[PathSegment]:
    """Clip *raw* into a contiguous tiling of [start, end]; holes become
    ``wait`` segments, so durations always sum to ``end - start``."""
    out: list[PathSegment] = []
    cursor = start
    for kind, s0, e0, name in raw:
        s0, e0 = max(s0, cursor), min(e0, end)
        if s0 > cursor:
            out.append(PathSegment("wait", cursor, s0, name))
            cursor = s0
        if e0 > s0:
            out.append(PathSegment(kind, s0, e0, name))
            cursor = e0
    if end > cursor:
        out.append(PathSegment("wait", cursor, end, "app"))
    return out


# -------------------------------------------------------------- allocation


def _allocation_segments(trace: Trace, app_span: Span) -> list[PathSegment]:
    """Attribute the pre-submit allocation phase: the longest alloc span
    (request → reply) with its bidding rounds marked ``bid`` and the
    remainder ``alloc``."""
    exec_spans = trace.by_category("exec")
    allocs = trace.by_category("alloc")
    allocs = [a for a in allocs if a.end is not None and a.start <= app_span.start]
    if not exec_spans or not allocs:
        return []
    phase_start = min(exec_spans, key=lambda s: s.start).start
    path = max(allocs, key=lambda a: (a.end, a.start, a.span_id))
    raw: list[tuple[str, float, float, str]] = []
    for bid in sorted(path.children, key=lambda s: s.start):
        if bid.category == "sched":
            raw.append(("bid", bid.start, bid.end, bid.name))
    # everything else inside the alloc span (request transit, queueing,
    # reply transit) is charged to the allocation machinery
    tiled = _tile(raw, phase_start, min(path.end, app_span.start))
    return [
        seg if seg.kind != "wait" else PathSegment("alloc", seg.start, seg.end, path.name)
        for seg in tiled
    ]
