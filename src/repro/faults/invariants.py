"""Recovery invariants checked against the event log."""

from __future__ import annotations

from typing import Iterable

from repro.util.eventlog import EventLog


def leadership_transfer_times(log: EventLog, group: str) -> list[float]:
    """Time from each leader-hosting crash to the next takeover event in
    *group* — the paper's error-notification-driven recovery latency."""
    crashes = [
        r.time
        for r in log.records(category="fault.crash_leader")
    ] + [r.time for r in log.records(category="fault.crash")]
    takeovers = [
        r for r in log.records(category="isis.takeover") if r.get("group") == group
    ]
    out = []
    for takeover in takeovers:
        prior = [t for t in crashes if t <= takeover.time]
        if prior:
            out.append(takeover.time - max(prior))
    return out


def surviving_leader_is_oldest(view_members_before: Iterable[str], leader_after: str,
                               crashed: set[str]) -> bool:
    """The §5 promise: the oldest *surviving* member leads next."""
    survivors = [m for m in view_members_before if m.split("/")[0] not in crashed]
    return bool(survivors) and survivors[0] == leader_after


def views_converged(members) -> bool:
    """All live members agree on (view id, membership)."""
    live = [m for m in members if m.joined]
    if not live:
        return True
    first = (live[0].view.view_id, live[0].view.members)
    return all((m.view.view_id, m.view.members) == first for m in live)
