"""Deterministic fault injection."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.machines.archclass import MachineClass
    from repro.netsim.kernel import Simulator
    from repro.netsim.network import Network
    from repro.scheduler.directory import GroupDirectory


class FaultInjector:
    """Schedules crashes, recoveries, and churn on a simulated cluster."""

    def __init__(self, sim: "Simulator", network: "Network") -> None:
        self.sim = sim
        self.network = network
        self._rng = sim.rng.stream("faults")
        self.crashes = 0

    # ------------------------------------------------------------- one-shots

    def crash_at(self, host_name: str, time: float) -> None:
        """Crash *host_name* at absolute simulation time *time*."""

        def boom() -> None:
            host = self.network.host(host_name)
            if host.up:
                self.crashes += 1
                self.sim.emit("fault.crash", host_name)
                host.crash()

        self.sim.schedule_at(time, boom)

    def recover_at(self, host_name: str, time: float) -> None:
        def fix() -> None:
            host = self.network.host(host_name)
            if not host.up:
                self.sim.emit("fault.recover", host_name)
                host.recover()

        self.sim.schedule_at(time, fix)

    def crash_leader_at(
        self, directory: "GroupDirectory", arch_class: "MachineClass", time: float
    ) -> None:
        """Crash whatever machine leads *arch_class*'s group at *time* —
        resolved at fire time, so late leadership changes are honoured."""

        def boom() -> None:
            leader = directory.leader(arch_class)
            host = self.network.host(leader.host)
            if host.up:
                self.crashes += 1
                self.sim.emit("fault.crash_leader", leader.host, arch_class=arch_class.value)
                host.crash()

        self.sim.schedule_at(time, boom)

    # ----------------------------------------------------------------- churn

    def churn(
        self,
        host_names: list[str],
        mean_up: float = 120.0,
        mean_down: float = 30.0,
        until: float = 1_000.0,
        spare: set[str] | None = None,
    ) -> None:
        """Give each listed host independent exponential up/down cycling
        until *until*. Hosts in *spare* are never crashed."""
        spare = spare or set()
        for name in host_names:
            if name in spare:
                continue
            self._schedule_cycle(name, self.sim.now, mean_up, mean_down, until)

    def _schedule_cycle(
        self, name: str, now: float, mean_up: float, mean_down: float, until: float
    ) -> None:
        down_at = now + self._rng.expovariate(1.0 / mean_up)
        if down_at >= until:
            return
        up_at = down_at + self._rng.expovariate(1.0 / mean_down)
        self.crash_at(name, down_at)
        if up_at < until:
            self.recover_at(name, up_at)
        self._schedule_cycle(name, up_at, mean_up, mean_down, until)
