"""Fault injection and recovery invariants.

"Fault-tolerance of the group leader will be achieved through redundancy
and error recovery mechanisms." (§5) — the injector kills hosts (including
group leaders specifically), produces churn, and the invariant helpers
verify from the event log that recovery behaved as the paper promises:
oldest-survivor leadership, bounded detection latency, and application
completion despite daemon churn.
"""

from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    leadership_transfer_times,
    surviving_leader_is_oldest,
    views_converged,
)
from repro.faults.schedule import (
    SCHEDULES,
    ChaosController,
    FaultAction,
    FaultSchedule,
    build_schedule,
)

__all__ = [
    "SCHEDULES",
    "ChaosController",
    "FaultAction",
    "FaultInjector",
    "FaultSchedule",
    "build_schedule",
    "leadership_transfer_times",
    "surviving_leader_is_oldest",
    "views_converged",
]
