"""Declarative, seeded fault schedules and the chaos controller.

A :class:`FaultSchedule` is a pure description — a named, ordered list of
:class:`FaultAction` records built either programmatically (the fluent
builder methods) or from one of the named recipes in :data:`SCHEDULES`.
Because a schedule carries no simulator state, the same schedule object can
be applied to any number of fresh VCEs; combined with a fixed ``seed`` the
whole chaotic run is deterministic and byte-identical on replay.

The :class:`ChaosController` turns a schedule into scheduled simulator
callbacks: host crashes and daemon reboots, message drop/duplicate/reorder
windows, link latency spikes, and timed network partitions. Every injected
fault emits a ``fault.*`` event and bumps the ``faults_injected_total``
telemetry counter so ``repro top`` (and the chaos CLI report) can show
injected faults next to the ``recovery.*`` actions the execution layer
takes in response.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.kernel import Simulator
    from repro.netsim.network import Network

#: Action kinds a schedule may contain.
KINDS = (
    "crash",  # host goes down (all processes crash)
    "restart",  # host comes back up and its scheduler daemon is rebooted
    "drop",  # message-drop window: value = drop probability
    "duplicate",  # duplicate-delivery window: value = duplication probability
    "reorder",  # reordering window: value = reorder probability
    "latency",  # latency spike window: value = multiplicative factor
    "partition",  # timed network partition: groups = the connectivity islands
)


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault.

    ``time`` is relative to when the schedule is armed
    (:meth:`ChaosController.apply`). Window kinds (drop, duplicate,
    reorder, latency, partition) restore the previous setting after
    ``duration`` simulated seconds; point kinds (crash, restart) ignore it.
    """

    time: float
    kind: str
    target: str = ""
    value: float = 0.0
    duration: float = 0.0
    groups: tuple[tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise SimulationError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise SimulationError("fault time must be >= 0")


class FaultSchedule:
    """A named, ordered fault plan (see module docstring)."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.actions: list[FaultAction] = []

    # ------------------------------------------------------------- builders

    def add(self, action: FaultAction) -> "FaultSchedule":
        self.actions.append(action)
        self.actions.sort(key=lambda a: (a.time, KINDS.index(a.kind), a.target))
        return self

    def crash(self, time: float, host: str) -> "FaultSchedule":
        return self.add(FaultAction(time, "crash", target=host))

    def restart(self, time: float, host: str) -> "FaultSchedule":
        return self.add(FaultAction(time, "restart", target=host))

    def bounce(self, time: float, host: str, down_for: float = 4.0) -> "FaultSchedule":
        """Daemon crash-restart: the host dies at *time* and reboots (with a
        fresh scheduler daemon) ``down_for`` seconds later."""
        return self.crash(time, host).restart(time + down_for, host)

    def drop_window(self, time: float, duration: float, rate: float) -> "FaultSchedule":
        return self.add(FaultAction(time, "drop", value=rate, duration=duration))

    def duplicate_window(
        self, time: float, duration: float, rate: float
    ) -> "FaultSchedule":
        return self.add(FaultAction(time, "duplicate", value=rate, duration=duration))

    def reorder_window(
        self, time: float, duration: float, rate: float
    ) -> "FaultSchedule":
        return self.add(FaultAction(time, "reorder", value=rate, duration=duration))

    def latency_spike(
        self, time: float, duration: float, factor: float
    ) -> "FaultSchedule":
        return self.add(FaultAction(time, "latency", value=factor, duration=duration))

    def partition_window(
        self, time: float, duration: float, *groups: list[str] | tuple[str, ...]
    ) -> "FaultSchedule":
        frozen = tuple(tuple(g) for g in groups)
        return self.add(
            FaultAction(time, "partition", duration=duration, groups=frozen)
        )

    # ------------------------------------------------------------------ misc

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"FaultSchedule({self.name!r}, {len(self.actions)} actions)"


class ChaosController:
    """Applies a :class:`FaultSchedule` to a live simulation.

    Args:
        sim: the simulator.
        network: the cluster network (fault knobs live here).
        restart_daemon: callable invoked with a host name after the host
            recovers, responsible for rebooting its scheduler daemon (the
            VCE supplies :meth:`~repro.core.environment
            .VirtualComputingEnvironment.restart_daemon`). When None,
            ``restart`` actions only bring the host back up.
    """

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        restart_daemon: Callable[[str], None] | None = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.restart_daemon = restart_daemon
        self.injected: dict[str, int] = {}
        self.schedule: FaultSchedule | None = None

    # ------------------------------------------------------------------ apply

    def apply(self, schedule: FaultSchedule) -> "ChaosController":
        """Arm every action in *schedule*; action times count from now."""
        self.schedule = schedule
        base = self.sim.now
        for action in schedule:
            self.sim.schedule_at(base + action.time, lambda a=action: self._fire(a))
        self.sim.emit(
            "fault.schedule", "chaos", name=schedule.name, actions=len(schedule)
        )
        return self

    def report(self) -> dict[str, int]:
        """Injected-fault counts by kind (windows count once at open)."""
        return dict(sorted(self.injected.items()))

    # ------------------------------------------------------------------ fire

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        tel = self.sim.telemetry
        if tel is not None:
            tel.counter(
                "faults_injected_total", "faults injected by the chaos controller",
                labels=("kind",),
            ).labels(kind).inc()

    def _fire(self, action: FaultAction) -> None:
        handler = getattr(self, f"_do_{action.kind}")
        handler(action)

    def _do_crash(self, action: FaultAction) -> None:
        host = self.network.host(action.target)
        if not host.up:
            return
        self._count("crash")
        self.sim.emit("fault.crash", action.target)
        host.crash()

    def _do_restart(self, action: FaultAction) -> None:
        host = self.network.host(action.target)
        self._count("restart")
        if not host.up:
            self.sim.emit("fault.recover", action.target)
            host.recover()
        self.sim.emit("fault.daemon_restart", action.target)
        if self.restart_daemon is not None:
            self.restart_daemon(action.target)

    def _window(
        self,
        action: FaultAction,
        read: Callable[[], float],
        write: Callable[[float], None],
    ) -> None:
        previous = read()
        self._count(action.kind)
        self.sim.emit(
            f"fault.{action.kind}", "chaos",
            value=action.value, duration=action.duration,
        )
        write(action.value)

        def close() -> None:
            write(previous)
            self.sim.emit(f"fault.{action.kind}_end", "chaos", restored=previous)

        self.sim.schedule(action.duration, close)

    def _do_drop(self, action: FaultAction) -> None:
        net = self.network
        self._window(action, lambda: net._drop_rate, net.set_drop_rate)

    def _do_duplicate(self, action: FaultAction) -> None:
        net = self.network
        self._window(action, lambda: net._duplicate_rate, net.set_duplicate_rate)

    def _do_reorder(self, action: FaultAction) -> None:
        net = self.network
        self._window(action, lambda: net._reorder_rate, net.set_reorder_rate)

    def _do_latency(self, action: FaultAction) -> None:
        net = self.network
        self._window(action, lambda: net.latency_factor, net.set_latency_factor)

    def _do_partition(self, action: FaultAction) -> None:
        self._count("partition")
        self.sim.emit(
            "fault.partition", "chaos",
            groups=[list(g) for g in action.groups], duration=action.duration,
        )
        self.network.partition(*[set(g) for g in action.groups])

        def close() -> None:
            self.network.heal()
            self.sim.emit("fault.partition_end", "chaos")

        self.sim.schedule(action.duration, close)


# --------------------------------------------------------------------- recipes


def _daemon_bounce(hosts: list[str], rng: random.Random, start: float) -> FaultSchedule:
    schedule = FaultSchedule(
        "daemon-bounce", "one scheduler daemon crashes and reboots mid-run"
    )
    victim = rng.choice(hosts)
    schedule.bounce(start + 2.0 + rng.random() * 2.0, victim, down_for=4.0)
    return schedule


def _lossy(hosts: list[str], rng: random.Random, start: float) -> FaultSchedule:
    schedule = FaultSchedule(
        "lossy", "5% message drop plus light duplication and reordering"
    )
    schedule.drop_window(start, 10_000.0, 0.05)
    schedule.duplicate_window(start, 10_000.0, 0.02)
    schedule.reorder_window(start, 10_000.0, 0.02)
    return schedule


def _partition(hosts: list[str], rng: random.Random, start: float) -> FaultSchedule:
    schedule = FaultSchedule("partition", "one timed partition splitting the cluster")
    split = max(1, len(hosts) // 2)
    shuffled = hosts[:]
    rng.shuffle(shuffled)
    # name only the minority island: everything else (including the user's
    # workstation) stays connected in the implicit remainder group
    schedule.partition_window(start + 3.0 + rng.random(), 6.0, shuffled[:split])
    return schedule


def _latency(hosts: list[str], rng: random.Random, start: float) -> FaultSchedule:
    schedule = FaultSchedule("latency", "a 5x link-latency spike")
    schedule.latency_spike(start + 2.0 + rng.random(), 8.0, 5.0)
    return schedule


def _chaos_mix(hosts: list[str], rng: random.Random, start: float) -> FaultSchedule:
    """The acceptance-criteria mix: daemon crash-restart + 5% drop + one
    timed partition."""
    schedule = FaultSchedule(
        "chaos-mix", "daemon bounce + 5% message drop + one timed partition"
    )
    schedule.drop_window(start, 10_000.0, 0.05)
    victim = rng.choice(hosts)
    schedule.bounce(start + 2.0 + rng.random() * 2.0, victim, down_for=4.0)
    split = max(1, len(hosts) // 2)
    shuffled = hosts[:]
    rng.shuffle(shuffled)
    schedule.partition_window(start + 10.0 + rng.random() * 2.0, 5.0, shuffled[:split])
    return schedule


#: Named recipes: name -> builder(hosts, rng, start) -> FaultSchedule.
SCHEDULES: dict[str, Callable[[list[str], random.Random, float], FaultSchedule]] = {
    "daemon-bounce": _daemon_bounce,
    "lossy": _lossy,
    "partition": _partition,
    "latency": _latency,
    "chaos-mix": _chaos_mix,
}


def build_schedule(
    name: str, hosts: list[str], seed: int = 0, start: float = 0.0
) -> FaultSchedule:
    """Instantiate the named recipe against *hosts*, deterministically.

    The same (name, hosts, seed, start) always yields the identical
    schedule — the recipe's randomness comes from a private
    ``random.Random(seed)``, never the simulator streams.
    """
    try:
        recipe = SCHEDULES[name]
    except KeyError:
        known = ", ".join(sorted(SCHEDULES))
        raise SimulationError(f"unknown fault schedule {name!r} (known: {known})")
    if not hosts:
        raise SimulationError("a fault schedule needs at least one target host")
    return recipe(sorted(hosts), random.Random(seed), start)
