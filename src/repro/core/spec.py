"""Declarative cluster specifications (JSON).

A production deployment describes its machine park in a config file rather
than code. Format::

    {
      "machines": [
        {"name": "ws0", "class": "WORKSTATION", "speed": 1.0,
         "memory_mb": 256, "site": "syr",
         "load": {"type": "stochastic", "mean_idle": 60.0,
                  "mean_busy": 30.0, "busy_level": 0.9}},
        {"name": "cm5", "class": "SIMD", "speed": 40.0, "memory_mb": 4096},
        {"name": "trace", "class": "WORKSTATION",
         "load": {"type": "trace", "points": [[10.0, 0.8], [20.0, 0.0]]}},
        {"name": "busy", "class": "WORKSTATION",
         "load": {"type": "constant", "level": 0.3}}
      ],
      "wan": {"base_latency": 0.05, "bandwidth": 125000.0, "jitter": 0.0}
    }

``load`` defaults to idle; ``wan`` (optional) becomes
:attr:`repro.core.VCEConfig.wan_latency` and applies between machines whose
``site`` attributes differ.
"""

from __future__ import annotations

import json
from typing import Any

from repro.machines import (
    ConstantLoad,
    Machine,
    MachineClass,
    StochasticLoad,
    TraceLoad,
)
from repro.netsim.network import LatencyModel
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStreams


def _load_model(spec: dict[str, Any] | None, name: str, streams: RngStreams):
    if not spec:
        return ConstantLoad(0.0)
    kind = spec.get("type", "constant")
    if kind == "constant":
        return ConstantLoad(float(spec.get("level", 0.0)))
    if kind == "trace":
        points = [(float(t), float(l)) for t, l in spec.get("points", [])]
        return TraceLoad(points, initial=float(spec.get("initial", 0.0)))
    if kind == "stochastic":
        return StochasticLoad(
            streams,
            name,
            mean_idle=float(spec.get("mean_idle", 60.0)),
            mean_busy=float(spec.get("mean_busy", 30.0)),
            busy_level=float(spec.get("busy_level", 0.9)),
        )
    raise ConfigurationError(f"unknown load model type {kind!r}")


def machines_from_spec(
    spec: dict[str, Any], seed: int = 0
) -> tuple[list[Machine], LatencyModel | None]:
    """Build (machines, wan_latency_or_None) from a parsed spec dict."""
    entries = spec.get("machines")
    if not entries:
        raise ConfigurationError("cluster spec declares no machines")
    streams = RngStreams(seed)
    machines = []
    for entry in entries:
        if "name" not in entry:
            raise ConfigurationError(f"machine entry missing 'name': {entry}")
        name = str(entry["name"])
        attributes = dict(entry.get("attributes", {}))
        if "site" in entry:
            attributes["site"] = str(entry["site"])
        machines.append(
            Machine(
                name=name,
                arch_class=MachineClass.parse(str(entry.get("class", "WORKSTATION"))),
                speed=float(entry.get("speed", 1.0)),
                memory_mb=int(entry.get("memory_mb", 256)),
                os=str(entry.get("os", "unix")),
                object_code_format=str(entry.get("object_code_format", "")),
                background_load=_load_model(entry.get("load"), name, streams),
                files=set(entry.get("files", [])),
                attributes=attributes,
            )
        )
    wan = None
    if "wan" in spec:
        w = spec["wan"]
        wan = LatencyModel(
            base_latency=float(w.get("base_latency", 0.05)),
            bandwidth=float(w.get("bandwidth", 125_000.0)),
            jitter=float(w.get("jitter", 0.0)),
        )
    return machines, wan


def load_cluster_file(path: str, seed: int = 0) -> tuple[list[Machine], LatencyModel | None]:
    """Read a JSON cluster file; see module docstring for the format."""
    try:
        with open(path) as fh:
            spec = json.load(fh)
    except json.JSONDecodeError as err:
        raise ConfigurationError(f"cluster file {path!r}: invalid JSON ({err})") from err
    return machines_from_spec(spec, seed)
