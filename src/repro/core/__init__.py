"""The VCE facade — the paper's primary contribution assembled.

:class:`VirtualComputingEnvironment` wires every subsystem together the way
Figure 1 stacks them: the SDM produces an annotated task graph; the EXM's
compilation manager prepares binaries (anticipatorily if asked); scheduler
daemons form Isis groups per machine class; an execution program bids for
resources, places instances, and the runtime manager executes them with
migration, load balancing, and fault tolerance available as policies.

Typical use::

    from repro.core import VCEConfig, VirtualComputingEnvironment, workstation_cluster

    vce = VirtualComputingEnvironment(workstation_cluster(8)).boot()
    run = vce.submit(my_graph)
    vce.run_to_completion(run)
    print(run.app.results("mytask"))
"""

from repro.core.config import VCEConfig
from repro.core.cluster import heterogeneous_cluster, multi_site_cluster, workstation_cluster
from repro.core.environment import VirtualComputingEnvironment, materialize_description
from repro.core.spec import load_cluster_file, machines_from_spec
from repro.core.tenancy import (
    QuotaExceededError,
    TenantRegistry,
    TenantSpec,
    TenantState,
)

__all__ = [
    "VirtualComputingEnvironment",
    "VCEConfig",
    "materialize_description",
    "workstation_cluster",
    "heterogeneous_cluster",
    "multi_site_cluster",
    "machines_from_spec",
    "load_cluster_file",
    "TenantSpec",
    "TenantState",
    "TenantRegistry",
    "QuotaExceededError",
]
