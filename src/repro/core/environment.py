"""The :class:`VirtualComputingEnvironment` facade."""

from __future__ import annotations

from typing import Any, Callable

from dataclasses import replace

from repro.compilation.anticipatory import AnticipatoryEngine
from repro.compilation.manager import CompilationManager
from repro.core.config import VCEConfig
from repro.core.tenancy import TenantRegistry
from repro.faults.injector import FaultInjector
from repro.faults.schedule import ChaosController, FaultSchedule, build_schedule
from repro.loadbalance.balancer import LoadBalancer
from repro.loadbalance.policies import BalancingPolicy
from repro.machines.archclass import MachineClass
from repro.machines.database import MachineDatabase
from repro.machines.machine import Machine
from repro.metrics.collector import MetricsCollector
from repro.migration.base import MigrationContext
from repro.migration.failover import FailoverConfig, FailoverManager
from repro.migration.selector import MigrationSelector
from repro.netsim.backend import BACKEND_NAMES, create_simulator
from repro.netsim.host import Host
from repro.netsim.network import Network
from repro.runtime.manager import RuntimeManager
from repro.scheduler.daemon import SchedulerDaemon
from repro.scheduler.directory import GroupDirectory
from repro.scheduler.execution_program import AppRun, ExecutionProgram, RunState
from repro.scheduler.policies import PlacementPolicy, load_sorted_assignment
from repro.script.ast import ApplicationDescription
from repro.script.interp import Environment, interpret
from repro.script.parser import parse_script
from repro.sdm.problemspec import ProblemSpecification
from repro.taskgraph import ArcKind, TaskGraph
from repro.telemetry.service import Telemetry
from repro.util.errors import ConfigurationError, ScriptError, VerificationError



class VirtualComputingEnvironment:
    """One simulated VCE deployment (see package docstring).

    Args:
        machines: machine descriptions to boot; one scheduler daemon runs
            on each. A separate user workstation (the execution program's
            home) is always added and never bids.
        config: see :class:`VCEConfig`.
    """

    def __init__(self, machines: list[Machine], config: VCEConfig | None = None):
        if not machines:
            raise ConfigurationError("a VCE needs at least one machine")
        self.config = config or VCEConfig()
        if self.config.verify not in VCEConfig.VERIFY_MODES:
            raise ConfigurationError(
                f"unknown verify mode {self.config.verify!r} "
                f"(expected one of {', '.join(VCEConfig.VERIFY_MODES)})"
            )
        if self.config.backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"unknown simulation backend {self.config.backend!r} "
                f"(expected one of {', '.join(BACKEND_NAMES)})"
            )
        if self.config.backend == "network":
            raise ConfigurationError(
                "backend='network' runs daemons as real processes and is "
                "driven by repro.netexec.NetworkVCE, not the in-process "
                "VirtualComputingEnvironment (see docs/NETWORK.md)"
            )
        if self.config.leader_fanout < 1:
            raise ConfigurationError(
                f"leader_fanout must be >= 1, got {self.config.leader_fanout}"
            )
        # VCEConfig.leader_fanout overrides the per-daemon knob so callers
        # can flip hierarchy on without rebuilding a DaemonConfig
        self._daemon_config = self.config.daemon
        if (
            self.config.leader_fanout != 1
            and self._daemon_config.leader_fanout != self.config.leader_fanout
        ):
            self._daemon_config = replace(
                self._daemon_config, leader_fanout=self.config.leader_fanout
            )
        self.sim = create_simulator(
            self.config.seed, backend=self.config.backend, shards=self.config.shards
        )
        if self.config.telemetry:
            # published before any component is built, so hot paths
            # (runtime manager, channels) can cache metric handles
            from repro.telemetry.registry import MetricsRegistry

            self.sim.telemetry = MetricsRegistry()
        self.hb_tracker = None
        self.protocol_monitor = None
        if self.config.hb_sanitizer:
            # attached before anything is scheduled, so node 0 (setup
            # code) is the ancestor of every event
            from repro.analysis.hb import HBTracker
            from repro.analysis.protocol import ProtocolMonitor

            self.hb_tracker = HBTracker(telemetry=self.sim.telemetry)
            self.sim.hb = self.hb_tracker
            self.protocol_monitor = ProtocolMonitor(
                self.sim, telemetry=self.sim.telemetry
            )
        if self.config.tie_shuffle:
            self.sim.set_tie_shuffle(self.config.tie_shuffle)
        self.network = Network(
            self.sim,
            self.config.latency,
            egress_serialization=self.config.egress_serialization,
        )
        self.database = MachineDatabase()
        self.directory = GroupDirectory()
        self.compilation = CompilationManager(self.database)
        self.runtime = RuntimeManager(
            self.sim, self.network, binary_service=self.compilation
        )
        self.anticipatory = AnticipatoryEngine(
            self.sim, self.network, self.database, self.compilation
        )
        self.migration = MigrationSelector(
            MigrationContext(self.runtime, self.network, self.compilation)
        )
        self.faults = FaultInjector(self.sim, self.network)
        self.chaos_controller = ChaosController(
            self.sim, self.network, restart_daemon=self.restart_daemon
        )
        self.failover: FailoverManager | None = None
        self.tenants = TenantRegistry(self.config.tenants, self.sim.telemetry)
        self.daemons: dict[str, SchedulerDaemon] = {}
        self.balancer: LoadBalancer | None = None
        self._booted = False
        self._exec_count = 0
        # graphs submitted while verify="off", still checkable by
        # run(verify=...) before their execution programs dispatch
        self._unverified: list[TaskGraph] = []
        if self.config.reliable_transport:
            self.network.set_reliable(self.config.transport)

        first_of_class: dict[MachineClass, Any] = {}
        for machine in machines:
            host = self.network.add_host(machine.name, speed=machine.speed)
            host.machine = machine
            self.database.register(machine)
            contacts = (
                [first_of_class[machine.arch_class]]
                if machine.arch_class in first_of_class
                else None
            )
            daemon = SchedulerDaemon(
                "vced", machine, self.directory, contacts,
                self._daemon_config, self.config.isis,
            )
            host.spawn(daemon)
            first_of_class.setdefault(machine.arch_class, daemon.address)
            self.daemons[machine.name] = daemon

        user_site = self.config.user_site or (
            str(machines[0].attributes.get("site", "")) if machines else ""
        )
        self.user_host: Host = self.network.add_host(self.config.user_machine_name)
        self.user_host.machine = Machine(
            self.config.user_machine_name,
            MachineClass.WORKSTATION,
            attributes={"site": user_site} if user_site else {},
        )
        self._wire_wan_routes()

        self.telemetry: Telemetry | None = None
        if self.config.telemetry:
            self.telemetry = Telemetry(
                self.sim,
                self.runtime,
                self.daemons,
                interval=self.config.telemetry_interval,
                series_capacity=self.config.telemetry_series_capacity,
            )
            self.telemetry.install(self.user_host)
        if self.config.failover is not None:
            self.enable_failover(self.config.failover)

    def _wire_wan_routes(self) -> None:
        """Install the WAN latency model between hosts at different sites."""
        wan = self.config.wan_latency
        if wan is None:
            return
        site_of = {
            host.name: str(host.machine.attributes.get("site", ""))
            for host in self.network.hosts.values()
            if host.machine is not None
        }
        names = list(site_of)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if site_of[a] != site_of[b]:
                    self.network.set_route(a, b, wan)

    # ------------------------------------------------------------------ boot

    def boot(self) -> "VirtualComputingEnvironment":
        """Let the daemon groups form; returns self for chaining."""
        self.sim.run(until=self.sim.now + self.config.settle_time)
        self._booted = True
        return self

    # --------------------------------------------------------------- running

    def run(self, until: float | None = None, verify: str | None = None, **kw) -> float:
        """Advance the simulation.

        *verify* (``off|warn|strict``) re-checks every graph submitted
        since the last verification before any of them dispatches:
        ``strict`` raises :class:`VerificationError` — refusing to run —
        when a pending graph has error-severity findings; ``warn`` logs
        findings and proceeds. Defaults to :attr:`VCEConfig.verify`.
        """
        if verify is not None and verify not in VCEConfig.VERIFY_MODES:
            raise ConfigurationError(
                f"unknown verify mode {verify!r} "
                f"(expected one of {', '.join(VCEConfig.VERIFY_MODES)})"
            )
        mode = verify if verify is not None else self.config.verify
        if mode != "off" and self._unverified:
            for graph in self._unverified:
                self._enforce_verification(graph, mode)
        result = self.sim.run(until=until, **kw)
        # anything submitted before this call has now had its chance to
        # dispatch; late verification would be pointless
        self._unverified.clear()
        return result

    def verify_graph(self, graph: TaskGraph):
        """Run the static task-graph verifier (structure, annotations, and
        class→machine feasibility against this VCE's machine database).
        Returns an :class:`~repro.analysis.report.AnalysisReport`."""
        from repro.analysis import verify_graph

        return verify_graph(graph, compilation=self.compilation)

    def _enforce_verification(self, graph: TaskGraph, mode: str):
        """Verify *graph*, log findings, and (strict) refuse on errors."""
        report = self.verify_graph(graph)
        for f in report.sorted_findings():
            self.sim.emit(
                "verify.finding",
                graph.name,
                rule=f.rule,
                severity=f.severity.value,
                locus=f.locus,
                message=f.message,
            )
        if mode == "strict" and not report.ok:
            raise VerificationError(
                f"graph {graph.name!r} failed static verification: "
                + "; ".join(f.format() for f in report.errors),
                report=report,
            )
        return report

    def run_to_completion(self, run: AppRun, timeout: float = 10_000.0) -> AppRun:
        """Advance the simulation until *run* finishes (or timeout)."""
        deadline = self.sim.now + timeout
        self.sim.run(
            until=deadline,
            stop_when=lambda: run.state in (RunState.DONE, RunState.FAILED),
        )
        return run

    # ---------------------------------------------------------------- submit

    def default_class_map(self, graph: TaskGraph) -> dict[str, MachineClass | None]:
        """task → machine class: LOCAL for ``local`` tasks, otherwise the
        most-preferred feasible class from the compilation manager."""
        out: dict[str, MachineClass | None] = {}
        for node in graph:
            if node.local:
                out[node.name] = None
                continue
            feasible = self.compilation.feasible_classes(node)
            if not feasible:
                raise ConfigurationError(
                    f"task {node.name!r} has no feasible machine class in this VCE"
                )
            out[node.name] = feasible[0]
        return out

    def submit(
        self,
        graph: TaskGraph,
        class_map: dict[str, MachineClass | None] | None = None,
        policy: PlacementPolicy = load_sorted_assignment,
        ranges: dict[str, tuple[int, int]] | None = None,
        params: dict[str, Any] | None = None,
        priority: float = 0.0,
        queue_if_insufficient: bool = False,
        on_finished: Callable[[AppRun], None] | None = None,
        tenant: str | None = None,
    ) -> AppRun:
        """Launch an execution program for *graph*; returns its AppRun.

        With *tenant* set, the application is charged against that
        tenant's concurrent-instance quota (the planned maximum: range
        highs where *ranges* gives one, the graph's fixed count
        otherwise) and released when the run finishes either way; an
        over-quota submit raises
        :class:`~repro.core.tenancy.QuotaExceededError` before anything
        dispatches.

        With :attr:`VCEConfig.verify` set to ``warn`` or ``strict`` the
        static verifier runs here, before the execution program exists;
        with ``off`` the graph is remembered so ``run(verify=...)`` can
        still check it pre-dispatch.
        """
        if not self._booted:
            raise ConfigurationError("call boot() before submitting applications")
        if tenant is not None:
            charge = 0
            for node in graph:
                planned = (ranges or {}).get(node.name)
                charge += planned[1] if planned is not None else node.instances
            state = self.tenants.state(tenant)
            state.apps_submitted += 1
            self.tenants.admit(tenant, charge)  # raises when over quota
            finish_cb = on_finished

            def _settle_tenant(run: AppRun) -> None:
                if run.state is RunState.DONE:
                    state.apps_completed += 1
                else:
                    state.apps_failed += 1
                self.tenants.release(tenant, charge)
                if finish_cb is not None:
                    finish_cb(run)

            on_finished = _settle_tenant
        if self.config.verify != "off":
            self._enforce_verification(graph, self.config.verify)
        else:
            self._unverified.append(graph)
        if class_map is None:
            class_map = self.default_class_map(graph)
        if self.config.anticipatory:
            self.prepare(graph)
        self._exec_count += 1
        program = ExecutionProgram(
            f"exec{self._exec_count}",
            graph,
            class_map,
            self.runtime,
            self.directory,
            self.database,
            policy=policy,
            ranges=ranges,
            params=params,
            priority=priority,
            queue_if_insufficient=queue_if_insufficient,
            on_finished=on_finished,
        )
        self.user_host.spawn(program)
        return program.run_handle

    def prepare(self, graph: TaskGraph, replicate_to: list[str] | None = None) -> None:
        """Anticipatory pass: compile every task for every feasible class
        and replicate input files (§4.5)."""
        if replicate_to is None:
            replicate_to = [m.name for m in self.database]
        self.anticipatory.prepare_application(graph, replicate_to=replicate_to)

    # ---------------------------------------------------------------- scripts

    def run_script(
        self,
        text: str,
        programs: dict[str, Callable],
        works: dict[str, float] | None = None,
        variables: dict[str, int] | None = None,
        name: str = "app",
        **submit_kw: Any,
    ) -> AppRun:
        """Parse, interpret, and submit a VCE application script.

        Args:
            text: the script (see :mod:`repro.script`).
            programs: task name → program generator factory.
            works: optional task name → work units (for placement hints).
            variables: pre-set script variables.
        """
        description = self.describe_script(text, variables, name)
        graph, class_map, ranges = self.graph_from_description(description, programs, works)
        return self.submit(
            graph,
            class_map=class_map,
            ranges=ranges,
            priority=description.priority,
            **submit_kw,
        )

    def describe_script(
        self,
        text: str,
        variables: dict[str, int] | None = None,
        name: str = "app",
    ) -> ApplicationDescription:
        """Script text → ApplicationDescription, with AVAILABLE() answered
        from the live group directory."""
        available = {
            cls: self.directory.group_size(cls) for cls in self.directory.classes()
        }
        env = Environment(available, variables)
        return interpret(parse_script(text), env, name=name)

    def graph_from_description(
        self,
        description: ApplicationDescription,
        programs: dict[str, Callable],
        works: dict[str, float] | None = None,
    ) -> tuple[TaskGraph, dict[str, MachineClass | None], dict[str, tuple[int, int]]]:
        """Materialize the task graph an application description implies."""
        return materialize_description(description, programs, works)

    # --------------------------------------------------------------- services

    def enable_failover(self, config: FailoverConfig | None = None) -> FailoverManager:
        """Install the lease-based crash-recovery layer (idempotent):
        instance failures strand-and-redispatch instead of failing the
        application, and every scheduler daemon reports departed peers to
        it for takeover of orphaned instances."""
        if self.failover is None:
            self.failover = FailoverManager(
                self.migration.context, config or FailoverConfig()
            ).install()
            for daemon in self.daemons.values():
                daemon.host_lost_observers.append(self.failover.host_lost)
        return self.failover

    def restart_daemon(self, host_name: str) -> SchedulerDaemon:
        """Reboot the scheduler daemon on *host_name* (after a crash or a
        chaos-controller restart action). The new daemon rejoins its class
        group through any live peer, or re-forms the group alone."""
        host = self.network.host(host_name)
        machine = host.machine
        if machine is None:
            raise ConfigurationError(f"host {host_name!r} has no machine description")
        if host.process("vced") is not None and host.process("vced").alive:
            host.kill("vced")
        host.reap("vced")
        contacts = None
        for name, daemon in self.daemons.items():
            if name == host_name or daemon.machine.arch_class is not machine.arch_class:
                continue
            if self.network.host(name).up and daemon.alive:
                contacts = [daemon.address]
                break
        daemon = SchedulerDaemon(
            "vced", machine, self.directory, contacts,
            self._daemon_config, self.config.isis,
        )
        host.spawn(daemon)
        # in place: the telemetry sampler/watchdog hold this same dict
        self.daemons[host_name] = daemon
        if self.failover is not None:
            daemon.host_lost_observers.append(self.failover.host_lost)
        self.sim.emit("sched.daemon_restart", host_name)
        return daemon

    def drain_host(self, host_name: str) -> SchedulerDaemon:
        """Operator drain: the daemon on *host_name* stops bidding for new
        work (running instances finish normally) until :meth:`undrain_host`.
        Emits a ``control.drain`` event; idempotent."""
        daemon = self.daemons[host_name]
        if not daemon.draining:
            daemon.draining = True
            self.sim.emit("control.drain", host_name)
        return daemon

    def undrain_host(self, host_name: str) -> SchedulerDaemon:
        """Lift an operator drain set by :meth:`drain_host` (idempotent)."""
        daemon = self.daemons[host_name]
        if daemon.draining:
            daemon.draining = False
            self.sim.emit("control.undrain", host_name)
        return daemon

    def chaos(
        self,
        schedule: FaultSchedule | str,
        seed: int | None = None,
        start: float = 0.0,
    ) -> ChaosController:
        """Arm a fault schedule against this VCE. A string names a recipe
        from :data:`repro.faults.SCHEDULES`, instantiated over the daemon
        machines with *seed* (default: the VCE seed); action times count
        from now, shifted by *start*. Returns the chaos controller (see
        its ``report()``)."""
        if isinstance(schedule, str):
            schedule = build_schedule(
                schedule,
                list(self.daemons),
                seed=self.config.seed if seed is None else seed,
                start=start,
            )
        return self.chaos_controller.apply(schedule)

    def enable_redundancy(self):
        """Honour per-task ``ExecutionHints.redundancy`` (§4.4 redundant
        execution): extra copies launch automatically at dispatch and
        absorb primary failures. Returns the redundancy manager."""
        return self.migration.redundant.install_auto()

    def enable_load_balancing(
        self, policy: BalancingPolicy, busy_threshold: float = 0.5, interval: float = 1.0
    ) -> LoadBalancer:
        """Attach and start a load balancer with *policy*."""
        self.balancer = LoadBalancer(
            self.runtime, self.database, policy, busy_threshold, interval
        )
        self.balancer.start()
        return self.balancer

    def metrics(self) -> MetricsCollector:
        return MetricsCollector(self.sim.log, self.network)

    def leader_of(self, arch_class: MachineClass) -> SchedulerDaemon:
        return self.daemons[self.directory.leader(arch_class).host]


def materialize_description(
    description: ApplicationDescription,
    programs: dict[str, Callable],
    works: dict[str, float] | None = None,
) -> tuple[TaskGraph, dict[str, MachineClass | None], dict[str, tuple[int, int]]]:
    """Application description → (task graph, class map, instance ranges).

    Needs no live VCE — also used by ``repro lint`` to verify script-built
    graphs against a cluster description without booting a simulation.
    """
    works = works or {}
    missing = [m.task for m in description.modules if m.task not in programs]
    if missing:
        raise ScriptError(f"no programs supplied for modules: {missing}")
    spec = ProblemSpecification(description.name)
    for module in description.modules:
        spec.task(
            module.task,
            f"module {module.path}",
            work=works.get(module.task, 1.0),
            instances=module.min_instances,
            local=module.machine_class is None,
        )
    graph = spec.graph
    for channel in description.channels:
        graph.connect(
            channel.src_task,
            channel.dst_task,
            ArcKind.STREAM,
            channel.volume,
            channel.name,
        )
    class_map: dict[str, MachineClass | None] = {}
    ranges: dict[str, tuple[int, int]] = {}
    for module in description.modules:
        node = graph.task(module.task)
        node.problem_class = module.problem_class or _infer_problem_class(module)
        node.language = "py"
        node.program = programs[module.task]
        class_map[module.task] = module.machine_class
        ranges[module.task] = (module.min_instances, module.max_instances)
    graph.validate()
    return graph, class_map, ranges


def _infer_problem_class(module):
    """Machine-class-worded directives imply a problem class for the
    compilation map's benefit."""
    from repro.taskgraph.node import ProblemClass

    if module.machine_class is MachineClass.SIMD:
        return ProblemClass.SYNCHRONOUS
    if module.machine_class is MachineClass.MIMD:
        return ProblemClass.LOOSELY_SYNCHRONOUS
    return ProblemClass.ASYNCHRONOUS
