"""Top-level configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tenancy import TenantSpec
from repro.isis.member import IsisConfig
from repro.migration.failover import FailoverConfig
from repro.netsim.network import LatencyModel, TransportConfig
from repro.scheduler.daemon import DaemonConfig


@dataclass
class VCEConfig:
    """Everything tunable about one VCE instance.

    Attributes:
        seed: root seed for all randomness.
        backend: which simulation backend drives the run — ``"serial"``
            (the single tombstone-heap kernel, the default),
            ``"sharded"`` (hosts partitioned across per-shard event heaps
            with conservative lookahead synchronization; see
            docs/PARALLELISM.md), or ``"network"`` (daemons as real
            asyncio processes over TCP, paced by the wall clock; driven
            by :class:`repro.netexec.NetworkVCE`, not the in-process
            environment — see docs/NETWORK.md). Replay digests are
            invariant across the virtual-time backends; the network
            backend guarantees outcome parity only.
        shards: worker-shard count for the ``sharded`` backend (ignored
            by ``serial``).
        latency: LAN latency/bandwidth model.
        daemon: scheduler-daemon policy knobs.
        leader_fanout: sub-leader cells per group leader (hierarchical
            bidding; see :mod:`repro.scheduler.hierarchy` and
            docs/SCALE.md).  1 — the default — keeps the paper's flat
            full-group broadcast byte-identical to earlier builds; >1
            overrides :attr:`DaemonConfig.leader_fanout` on every daemon.
        tenants: tenant populations for multi-tenant runs (see
            :class:`~repro.core.tenancy.TenantSpec`).  The environment
            builds a :class:`~repro.core.tenancy.TenantRegistry` from them
            and ``submit(..., tenant=...)`` charges quotas against it.
        isis: group-protocol timing.
        settle_time: simulated seconds given to group formation at boot.
        anticipatory: run the anticipatory engine (compile-ahead + file
            replication) on every submitted application.
        user_machine_name: name of the user's workstation host.
        wan_latency: when set and machines declare ``site`` attributes,
            messages between machines at *different* sites use this model
            instead of the LAN one (multi-campus metacomputing). Defaults
            to None (everything on one LAN, like the paper's prototype).
        user_site: which site the user's workstation belongs to ("" = the
            first machine's site).
        egress_serialization: model one NIC per host (concurrent sends
            queue for the wire); see repro.netsim.Network.
        telemetry: maintain the live metrics registry and run the cluster
            sampler + health watchdog (see repro.telemetry). On by
            default; turn off for throughput-focused benchmarks.
        telemetry_interval: simulated seconds between cluster samples.
        telemetry_series_capacity: ring-buffer length of each sampled
            time series.
        reliable_transport: run every remote message over the sequenced
            retransmitting transport (see repro.netsim.Network
            ``set_reliable``); required for workloads that must survive
            message drops. Off by default — the historical datagram
            semantics stay byte-identical.
        transport: retransmission timing when ``reliable_transport`` is on.
        failover: when set, install the lease-based
            :class:`~repro.migration.failover.FailoverManager` at boot and
            wire daemon peer-takeover notifications into it (see
            ``enable_failover``). None = crashes fail applications, as
            before.
        verify: pre-dispatch static verification of every submitted task
            graph (see :mod:`repro.analysis`). ``"off"`` skips it;
            ``"warn"`` runs the verifier and logs findings as
            ``verify.finding`` events but always dispatches; ``"strict"``
            additionally refuses to dispatch graphs with error-severity
            findings by raising
            :class:`~repro.util.errors.VerificationError`.
        hb_sanitizer: attach the happens-before race sanitizer and the
            protocol conformance monitor (see :mod:`repro.analysis.hb`
            and :mod:`repro.analysis.protocol`). The tracker threads
            through the backend scheduling seam and instrumented
            component accesses; findings are read back from
            ``vce.hb_tracker`` / ``vce.protocol_monitor`` after the run.
            Off by default — the hooks cost nothing when detached.
        tie_shuffle: nonzero salt permutes the firing order of
            same-timestamp events scheduled by *different* parent events
            (FIFO among events scheduled by the same parent is
            preserved). Used by ``repro sanitize`` to confirm whether a
            reported race actually changes run outcomes. 0 (default)
            keeps the historical byte-identical order.
    """

    seed: int = 0
    backend: str = "serial"
    shards: int = 4
    latency: LatencyModel = field(default_factory=LatencyModel)
    daemon: DaemonConfig = field(default_factory=DaemonConfig)
    leader_fanout: int = 1
    tenants: tuple[TenantSpec, ...] = ()
    isis: IsisConfig = field(default_factory=IsisConfig)
    settle_time: float = 15.0
    anticipatory: bool = False
    user_machine_name: str = "user"
    wan_latency: LatencyModel | None = None
    user_site: str = ""
    egress_serialization: bool = False
    telemetry: bool = True
    telemetry_interval: float = 4.0
    telemetry_series_capacity: int = 600
    reliable_transport: bool = False
    transport: TransportConfig = field(default_factory=TransportConfig)
    failover: FailoverConfig | None = None
    verify: str = "off"
    hb_sanitizer: bool = False
    tie_shuffle: int = 0

    #: Legal values of :attr:`verify`.
    VERIFY_MODES = ("off", "warn", "strict")
