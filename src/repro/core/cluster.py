"""Cluster composition helpers."""

from __future__ import annotations

from repro.machines import ConstantLoad, Machine, MachineClass, StochasticLoad
from repro.util.rng import RngStreams


def workstation_cluster(
    n: int = 8,
    speed: float = 1.0,
    memory_mb: int = 256,
    stochastic_load: tuple[float, float, float] | None = None,
    seed: int = 0,
) -> list[Machine]:
    """*n* workstations, optionally with owner-activity load.

    Args:
        stochastic_load: (mean_idle, mean_busy, busy_level) to give each
            workstation an independent busy/idle owner process; None for
            always-idle machines.
    """
    streams = RngStreams(seed)
    out = []
    for i in range(n):
        if stochastic_load is not None:
            mean_idle, mean_busy, busy_level = stochastic_load
            load = StochasticLoad(streams, f"ws{i}", mean_idle, mean_busy, busy_level)
        else:
            load = ConstantLoad(0.0)
        out.append(
            Machine(f"ws{i}", MachineClass.WORKSTATION, speed=speed,
                    memory_mb=memory_mb, background_load=load)
        )
    return out


def multi_site_cluster(
    sites: dict[str, int],
    speed: float = 1.0,
    memory_mb: int = 256,
) -> list[Machine]:
    """Workstations spread across named sites (campuses).

    The VCE's motivating setting is "a network of supercomputers and
    high-performance workstations" spanning institutions; machines carry a
    ``site`` attribute and the environment installs WAN latency between
    sites when :attr:`repro.core.VCEConfig.wan_latency` is set.

    Args:
        sites: site name → number of workstations at that site.
    """
    out = []
    for site, count in sites.items():
        for i in range(count):
            out.append(
                Machine(
                    f"{site}-ws{i}",
                    MachineClass.WORKSTATION,
                    speed=speed,
                    memory_mb=memory_mb,
                    attributes={"site": site},
                )
            )
    return out


def heterogeneous_cluster(
    n_workstations: int = 6,
    n_mimd: int = 2,
    n_simd: int = 1,
    n_vector: int = 0,
    seed: int = 0,
    stochastic_ws_load: tuple[float, float, float] | None = None,
) -> list[Machine]:
    """The paper's "typical heterogeneous environment": a workstation
    group, a MIMD group, and a SIMD group (plus optional vector machines).

    Speeds reflect 1994 relativities: a workstation is 1.0, an iPSC-class
    MIMD machine ~10, a CM-5/MasPar-class SIMD machine ~40, a vector
    supercomputer ~25.
    """
    machines = workstation_cluster(
        n_workstations, stochastic_load=stochastic_ws_load, seed=seed
    )
    for i in range(n_mimd):
        machines.append(
            Machine(f"mimd{i}", MachineClass.MIMD, speed=10.0, memory_mb=2048)
        )
    for i in range(n_simd):
        machines.append(
            Machine(f"simd{i}", MachineClass.SIMD, speed=40.0, memory_mb=4096)
        )
    for i in range(n_vector):
        machines.append(
            Machine(f"vec{i}", MachineClass.VECTOR, speed=25.0, memory_mb=1024)
        )
    return machines
