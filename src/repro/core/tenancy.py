"""Multi-tenant accounting: tenant specs, quotas, and admission state.

The soak generator (:mod:`repro.soak`) simulates user *populations*: each
tenant is a body of users submitting applications with a seeded arrival
process, a concurrent-instance quota, and a base scheduling priority.  The
:class:`TenantRegistry` lives on the
:class:`~repro.core.environment.VirtualComputingEnvironment` (built from
``VCEConfig(tenants=...)``) and enforces the hard quota invariant — a
tenant's admitted concurrent instances never exceed its quota — while
publishing per-tenant gauges/counters into the live metrics registry.

Admission *ordering* (who waits, and how waiting tenants age so none
starves) is policy, not accounting, and lives with the soak driver; the
registry only answers "may this tenant add N instances right now" and
keeps the books when the answer was yes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.util.errors import ConfigurationError, VCEError

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.registry import MetricsRegistry

#: Legal arrival-process kinds for a tenant population.
ARRIVAL_KINDS = ("poisson", "bursty")


class QuotaExceededError(VCEError):
    """An admission would push a tenant past its concurrent-instance quota."""

    def __init__(self, tenant: str, requested: int, admitted: int, quota: int):
        super().__init__(
            f"tenant {tenant!r} quota exceeded: "
            f"{admitted} admitted + {requested} requested > quota {quota}"
        )
        self.tenant = tenant
        self.requested = requested
        self.admitted = admitted
        self.quota = quota


@dataclass(frozen=True)
class TenantSpec:
    """One simulated user population.

    Attributes:
        name: tenant id (unique within a VCE).
        quota: maximum concurrently admitted task instances.
        rate: mean application arrivals per simulated second.
        arrival: ``"poisson"`` (exponential inter-arrival gaps) or
            ``"bursty"`` (exponential gaps between bursts of ``burst``
            near-simultaneous arrivals — a class submitting at a deadline).
        burst: applications per burst when ``arrival="bursty"``.
        priority: base scheduling priority of this tenant's requests; the
            soak driver's admission queue ages it (§4.3) so low-priority
            tenants wait longer but never starve.
        instances: (min, max) task instances drawn per application.
        work: (min, max) simulated compute seconds drawn per instance.
    """

    name: str
    quota: int
    rate: float = 0.1
    arrival: str = "poisson"
    burst: int = 4
    priority: float = 0.0
    instances: tuple[int, int] = (8, 24)
    work: tuple[float, float] = (60.0, 180.0)

    def validate(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.quota < 1:
            raise ConfigurationError(f"tenant {self.name!r}: quota must be >= 1")
        if self.rate <= 0:
            raise ConfigurationError(f"tenant {self.name!r}: rate must be > 0")
        if self.arrival not in ARRIVAL_KINDS:
            raise ConfigurationError(
                f"tenant {self.name!r}: arrival must be one of {ARRIVAL_KINDS}"
            )
        if self.burst < 1:
            raise ConfigurationError(f"tenant {self.name!r}: burst must be >= 1")
        lo, hi = self.instances
        if not (1 <= lo <= hi):
            raise ConfigurationError(
                f"tenant {self.name!r}: instances range {self.instances} invalid"
            )


@dataclass
class TenantState:
    """Live accounting for one tenant."""

    spec: TenantSpec
    admitted: int = 0  # concurrently admitted instances
    peak_admitted: int = 0
    apps_submitted: int = 0
    apps_admitted: int = 0
    apps_completed: int = 0
    apps_failed: int = 0
    denials: int = 0  # admissions refused (quota full)


class TenantRegistry:
    """Quota accounting and per-tenant metrics for one VCE."""

    def __init__(
        self,
        specs: Sequence[TenantSpec] = (),
        telemetry: "MetricsRegistry | None" = None,
    ) -> None:
        self._states: dict[str, TenantState] = {}
        self.admitted_total = 0
        self.peak_admitted_total = 0
        self._g_admitted = None
        self._c_apps = None
        self._c_denials = None
        if telemetry is not None:
            self._g_admitted = telemetry.gauge(
                "tenant_admitted_instances",
                "concurrently admitted task instances",
                labels=("tenant",),
            )
            self._c_apps = telemetry.counter(
                "tenant_apps_admitted_total",
                "applications admitted",
                labels=("tenant",),
            )
            self._c_denials = telemetry.counter(
                "tenant_quota_denials_total",
                "admissions refused at the quota",
                labels=("tenant",),
            )
        for spec in specs:
            self.add(spec)

    # ------------------------------------------------------------- population

    def add(self, spec: TenantSpec) -> TenantState:
        spec.validate()
        if spec.name in self._states:
            raise ConfigurationError(f"duplicate tenant {spec.name!r}")
        state = TenantState(spec)
        self._states[spec.name] = state
        return state

    def __contains__(self, name: str) -> bool:
        return name in self._states

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterable[TenantState]:
        return iter(self._states.values())

    def state(self, name: str) -> TenantState:
        try:
            return self._states[name]
        except KeyError:
            raise ConfigurationError(f"unknown tenant {name!r}") from None

    def spec(self, name: str) -> TenantSpec:
        return self.state(name).spec

    # -------------------------------------------------------------- admission

    def can_admit(self, name: str, instances: int) -> bool:
        state = self.state(name)
        return state.admitted + instances <= state.spec.quota

    def admit(self, name: str, instances: int) -> None:
        """Charge *instances* against the tenant's quota, or raise
        :class:`QuotaExceededError` — the registry never over-admits."""
        state = self.state(name)
        if state.admitted + instances > state.spec.quota:
            state.denials += 1
            if self._c_denials is not None:
                self._c_denials.labels(name).inc()
            raise QuotaExceededError(
                name, instances, state.admitted, state.spec.quota
            )
        state.admitted += instances
        state.apps_admitted += 1
        if state.admitted > state.peak_admitted:
            state.peak_admitted = state.admitted
        self.admitted_total += instances
        if self.admitted_total > self.peak_admitted_total:
            self.peak_admitted_total = self.admitted_total
        if self._g_admitted is not None:
            self._g_admitted.labels(name).set(state.admitted)
            self._c_apps.labels(name).inc()

    def release(self, name: str, instances: int) -> None:
        state = self.state(name)
        state.admitted = max(0, state.admitted - instances)
        self.admitted_total = max(0, self.admitted_total - instances)
        if self._g_admitted is not None:
            self._g_admitted.labels(name).set(state.admitted)

    # --------------------------------------------------------------- reporting

    def snapshot(self) -> dict[str, dict[str, int | float]]:
        """Per-tenant accounting as plain data (report/JSON friendly)."""
        out: dict[str, dict[str, int | float]] = {}
        for name, st in sorted(self._states.items()):
            out[name] = {
                "quota": st.spec.quota,
                "priority": st.spec.priority,
                "admitted": st.admitted,
                "peak_admitted": st.peak_admitted,
                "apps_submitted": st.apps_submitted,
                "apps_admitted": st.apps_admitted,
                "apps_completed": st.apps_completed,
                "apps_failed": st.apps_failed,
                "denials": st.denials,
            }
        return out
