"""The subscription hub: bounded fan-out of control-plane events.

One :class:`SubscriptionHub` sits between the producers (the entity
model, which translates simulator log records into typed change events)
and any number of consumers (SSE streams, WebSocket connections, tests).
Every consumer holds a :class:`Subscription` with

- **topic filters** — dotted prefixes (``entity.host`` matches
  ``entity.host.ws1``); an empty filter set matches everything,
- a **bounded queue** — at most ``limit`` pending events,
- **explicit backpressure** — when the queue is full the *oldest*
  pending event is dropped and the subscription's ``dropped`` counter
  increments; the hub never blocks the simulation and never buffers
  unboundedly on behalf of a slow consumer,
- **coalescing** — events published with ``coalescable=True`` (periodic
  state refreshes: metric samples, entity gauge updates) replace a
  pending event with the same ``(topic, key)`` in place instead of
  queueing behind it, so a slow consumer skips intermediate states of
  the same object rather than replaying them.

Determinism: the hub is wall-clock-free. Event ``seq`` numbers follow
publish order, which producers derive from the kernel's ``(time, seq)``
event order, so two replays of the same simulation publish the identical
event sequence. The hub only ever *reads* simulation state; attaching it
(with any number of subscribers, however slow) cannot change a replay
digest.

Per-subscriber drop/coalesce totals are surfaced as ``controlplane_*``
metrics when the hub is given a registry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.registry import MetricsRegistry


@dataclass(frozen=True, slots=True)
class Event:
    """One control-plane event.

    ``seq`` is the hub-wide publish sequence number (deterministic across
    replays); ``time`` is simulated seconds; ``key`` identifies the
    object within the topic (host name, app id, ...) and is the
    coalescing identity.
    """

    seq: int
    topic: str
    key: str
    time: float
    data: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "topic": self.topic,
            "key": self.key,
            "time": self.time,
            "data": self.data,
        }


def topic_matches(topic: str, prefixes: tuple[str, ...]) -> bool:
    """True when *topic* equals a prefix or extends it at a dot boundary
    (``entity.host`` matches ``entity.host`` and ``entity.host.ws1`` but
    not ``entity.hostile``). Empty *prefixes* matches every topic."""
    if not prefixes:
        return True
    for prefix in prefixes:
        if topic == prefix or topic.startswith(prefix + "."):
            return True
    return False


class Subscription:
    """One consumer's bounded view of the hub (see module docstring).

    Counters (``matched``/``delivered``/``dropped``/``coalesced``) obey
    the conservation law ``matched == delivered + pending + dropped +
    coalesced`` at every instant — the backpressure property test holds
    the hub to exactly that.
    """

    def __init__(
        self,
        hub: "SubscriptionHub",
        name: str,
        topics: tuple[str, ...] = (),
        limit: int = 256,
        coalesce: bool = True,
        on_enqueue: Callable[[], None] | None = None,
    ) -> None:
        if limit < 1:
            raise ValueError("subscription limit must be >= 1")
        self.hub = hub
        self.name = name
        self.topics = tuple(topics)
        self.limit = limit
        self.coalesce = coalesce
        #: zero-arg wakeup called on the publisher's side whenever the
        #: queue gains an event — the server points this at an
        #: ``asyncio.Event.set`` so streams sleep without polling
        self.on_enqueue = on_enqueue
        self.matched = 0
        self.delivered = 0
        self.dropped = 0
        self.coalesced = 0
        self.closed = False
        # queue of single-element cells so a coalescing replace is O(1)
        # without disturbing queue order; the index maps the coalescing
        # identity of each *pending coalescable* event to its cell
        self._queue: deque[list[Event]] = deque()
        self._pending_index: dict[tuple[str, str], list[Event]] = {}

    # ------------------------------------------------------------- publisher

    def matches(self, topic: str) -> bool:
        return topic_matches(topic, self.topics)

    def offer(self, event: Event, coalescable: bool) -> None:
        """Enqueue *event* (publisher side; the hub calls this)."""
        if self.closed:
            return
        self.matched += 1
        identity = (event.topic, event.key)
        if coalescable and self.coalesce:
            cell = self._pending_index.get(identity)
            if cell is not None:
                cell[0] = event
                self.coalesced += 1
                self.hub._count_coalesce()
                return
        if len(self._queue) >= self.limit:
            stale = self._queue.popleft()
            self._pending_index.pop((stale[0].topic, stale[0].key), None)
            self.dropped += 1
            self.hub._count_drop(self.name)
        cell = [event]
        self._queue.append(cell)
        if coalescable and self.coalesce:
            self._pending_index[identity] = cell
        if self.on_enqueue is not None:
            self.on_enqueue()

    # -------------------------------------------------------------- consumer

    @property
    def pending(self) -> int:
        return len(self._queue)

    def drain(self, max_items: int | None = None) -> list[Event]:
        """Pop up to *max_items* pending events (all of them by default),
        oldest first."""
        out: list[Event] = []
        while self._queue and (max_items is None or len(out) < max_items):
            cell = self._queue.popleft()
            self._pending_index.pop((cell[0].topic, cell[0].key), None)
            out.append(cell[0])
        self.delivered += len(out)
        return out

    def close(self) -> None:
        """Detach from the hub; pending events are discarded (they count
        as neither delivered nor dropped — the subscriber left)."""
        if not self.closed:
            self.closed = True
            self.hub._detach(self)

    def stats(self) -> dict:
        return {
            "name": self.name,
            "topics": list(self.topics),
            "limit": self.limit,
            "pending": self.pending,
            "matched": self.matched,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "coalesced": self.coalesced,
        }


class SubscriptionHub:
    """Publish/subscribe fan-out with per-subscriber bounded queues.

    Args:
        registry: optional :class:`MetricsRegistry`; when given, the hub
            publishes ``controlplane_events_published_total``,
            ``controlplane_events_dropped_total`` (per subscriber),
            ``controlplane_events_coalesced_total``, and a
            ``controlplane_subscriptions`` gauge.
    """

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self._subs: list[Subscription] = []
        self._seq = 0
        self.published = 0
        self._m_published = None
        self._m_dropped = None
        self._m_coalesced = None
        self._g_subs = None
        if registry is not None:
            self._m_published = registry.counter(
                "controlplane_events_published_total", "hub events published"
            ).labels()
            self._m_dropped = registry.counter(
                "controlplane_events_dropped_total",
                "events dropped by backpressure",
                labels=("subscriber",),
            )
            self._m_coalesced = registry.counter(
                "controlplane_events_coalesced_total", "events coalesced away"
            ).labels()
            self._g_subs = registry.gauge(
                "controlplane_subscriptions", "live hub subscriptions"
            ).labels()

    # ---------------------------------------------------------- subscriptions

    def subscribe(
        self,
        name: str = "",
        topics: tuple[str, ...] | list[str] = (),
        limit: int = 256,
        coalesce: bool = True,
        on_enqueue: Callable[[], None] | None = None,
    ) -> Subscription:
        sub = Subscription(
            self,
            name or f"sub{len(self._subs)}",
            tuple(topics),
            limit=limit,
            coalesce=coalesce,
            on_enqueue=on_enqueue,
        )
        self._subs.append(sub)
        if self._g_subs is not None:
            self._g_subs.value = len(self._subs)
        return sub

    def _detach(self, sub: Subscription) -> None:
        if sub in self._subs:
            self._subs.remove(sub)
        if self._g_subs is not None:
            self._g_subs.value = len(self._subs)

    @property
    def subscriptions(self) -> tuple[Subscription, ...]:
        return tuple(self._subs)

    # -------------------------------------------------------------- publishing

    def publish(
        self,
        topic: str,
        key: str,
        time: float,
        data: dict | None = None,
        coalescable: bool = False,
    ) -> Event:
        """Fan one event out to every matching subscription. ``seq`` is
        assigned in publish order — deterministic because producers call
        this from inside the kernel's event order."""
        self._seq += 1
        event = Event(self._seq, topic, key, time, data or {})
        self.published += 1
        if self._m_published is not None:
            self._m_published.inc()
        for sub in list(self._subs):
            if sub.matches(topic):
                sub.offer(event, coalescable)
        return event

    def _count_drop(self, subscriber: str) -> None:
        if self._m_dropped is not None:
            self._m_dropped.labels(subscriber).inc()

    def _count_coalesce(self) -> None:
        if self._m_coalesced is not None:
            self._m_coalesced.inc()

    def stats(self) -> dict:
        return {
            "published": self.published,
            "subscriptions": [s.stats() for s in self._subs],
        }
