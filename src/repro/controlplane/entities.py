"""The control-plane entity model: live cluster state as typed events.

A :class:`ControlPlaneModel` attaches to a running VCE through two
read-only seams — an :class:`~repro.util.eventlog.EventLog` observer and
a :class:`~repro.telemetry.sampler.ClusterSampler` listener — and
maintains small entity tables for **hosts**, **daemons**, **instances**,
and **applications**. Every state change is published to a
:class:`~repro.controlplane.hub.SubscriptionHub` as a typed event:

========================  ====================================================
topic                     meaning
========================  ====================================================
``entity.host.<name>``    host up/down, incarnation, sampled load/in-flight
``entity.daemon.<host>``  daemon liveness, drain flag, queue depth, load
``entity.app.<id>``       application lifecycle + instance progress counters
``entity.instance.<key>`` one instance's state transitions (evicted once
                          terminal — counts persist on the app entity)
``chaos``                 the fault-injection feed (``fault.*`` records)
``recovery``              the failover feed (``recovery.*`` records)
``health``                watchdog raise/clear events
``control``               operator actions (drain, undrain, restarts)
``metrics``               per-sample cluster aggregates (coalescable)
========================  ====================================================

Gauge-style updates (sampler ticks, metrics) publish with
``coalescable=True`` so slow subscribers skip intermediate states;
lifecycle transitions never coalesce. The model mints no ids, draws no
randomness, and reads no wall clock: publish order is exactly the
kernel's ``(time, seq)`` order, so replay digests are unchanged by an
attached model.

Instance entities are evicted when terminal, which bounds the table at
the number of *live* instances rather than the size of the run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.controlplane.hub import SubscriptionHub

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.environment import VirtualComputingEnvironment
    from repro.util.eventlog import LogRecord

#: task.* categories that mark an instance terminal (entity evicted)
_TERMINAL_TASK = {"task.done", "task.failed", "task.killed", "task.host_crashed"}


class ControlPlaneModel:
    """See module docstring.

    Args:
        vce: the environment to observe (must have telemetry enabled for
            sampler-driven gauge updates; event-driven state works
            regardless).
        hub: the subscription hub to publish into; one is created (wired
            to the VCE's metric registry) when not given.
    """

    def __init__(
        self,
        vce: "VirtualComputingEnvironment",
        hub: SubscriptionHub | None = None,
    ) -> None:
        self.vce = vce
        if hub is None:
            hub = SubscriptionHub(
                vce.telemetry.registry if vce.telemetry is not None else None
            )
        self.hub = hub
        self.hosts: dict[str, dict] = {}
        self.daemons: dict[str, dict] = {}
        self.apps: dict[str, dict] = {}
        self.instances: dict[str, dict] = {}
        self._attached = False
        for name, host in vce.network.hosts.items():
            self.hosts[name] = {
                "name": name,
                "up": host.up,
                "incarnation": 0,
                "load": 0.0,
                "inflight": 0,
            }
        for name, daemon in vce.daemons.items():
            self.daemons[name] = {
                "host": name,
                "alive": daemon.alive,
                "draining": daemon.draining,
                "queue_depth": 0,
                "load": 0.0,
            }

    # ------------------------------------------------------------- attachment

    def attach(self) -> "ControlPlaneModel":
        """Start observing (idempotent); returns self for chaining."""
        if not self._attached:
            self.vce.sim.log.add_observer(self._on_record)
            if self.vce.telemetry is not None:
                self.vce.telemetry.sampler.listeners.append(self._on_sample)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.vce.sim.log.remove_observer(self._on_record)
            if self.vce.telemetry is not None:
                listeners = self.vce.telemetry.sampler.listeners
                if self._on_sample in listeners:
                    listeners.remove(self._on_sample)
            self._attached = False

    # ------------------------------------------------------- record translation

    def _on_record(self, record: "LogRecord") -> None:
        category = record.category
        if category.startswith("entity.") or category.startswith("metrics"):
            return  # never re-translate our own vocabulary
        if category.startswith("app."):
            self._on_app(record)
        elif category == "runtime.dispatch":
            self._on_dispatch(record)
        elif category.startswith("task."):
            self._on_task(record)
        elif category.startswith("host."):
            self._on_host(record)
        elif category == "sched.daemon_restart":
            self._on_daemon_restart(record)
        elif category.startswith("control."):
            self._on_control(record)
        elif category.startswith("fault."):
            self._publish_feed("chaos", record)
        elif category.startswith("recovery."):
            self._publish_feed("recovery", record)
        elif category.startswith("health."):
            self._publish_feed("health", record)

    def _publish_app(self, app: dict, time: float, action: str) -> None:
        self.hub.publish(
            f"entity.app.{app['id']}",
            app["id"],
            time,
            {"action": action, **app},
        )

    def _on_app(self, record: "LogRecord") -> None:
        app_id = record.source
        action = record.category.split(".", 1)[1]  # submit|done|failed|terminate
        app = self.apps.get(app_id)
        if app is None:
            app = self.apps[app_id] = {
                "id": app_id,
                "status": "running",
                "tasks": record.get("tasks", 0),
                "submitted_at": record.time,
                "finished_at": None,
                "dispatched": 0,
                "done": 0,
                "failed": 0,
                "inflight": 0,
            }
        if action in ("done", "failed", "terminate"):
            app["status"] = "terminated" if action == "terminate" else action
            app["finished_at"] = record.time
            if action == "done":
                app["makespan"] = record.get("makespan")
            # drop this app's surviving instance entities in one sweep
            for key in [k for k, v in self.instances.items() if v["app"] == app_id]:
                del self.instances[key]
            app["inflight"] = 0
        self._publish_app(app, record.time, action)

    def _instance_key(self, record: "LogRecord") -> str:
        app = record.get("app", record.source)
        return f"{app}.{record.get('task')}[{record.get('rank')}]"

    def _on_dispatch(self, record: "LogRecord") -> None:
        app_id = record.source
        key = f"{app_id}.{record.get('task')}[{record.get('rank')}]"
        inst = self.instances.get(key)
        if inst is None:
            inst = self.instances[key] = {"key": key, "app": app_id}
        inst.update(
            task=record.get("task"),
            rank=record.get("rank"),
            state="pending",
            host=record.get("host"),
            incarnation=record.get("incarnation", 0),
        )
        app = self.apps.get(app_id)
        if app is not None:
            app["dispatched"] += 1
            app["inflight"] = sum(
                1 for v in self.instances.values() if v["app"] == app_id
            )
            self._publish_app(app, record.time, "dispatch")
        self.hub.publish(f"entity.instance.{key}", key, record.time, dict(inst))

    def _on_task(self, record: "LogRecord") -> None:
        category = record.category
        key = self._instance_key(record)
        state = category.split(".", 1)[1]  # start|done|failed|...
        app = self.apps.get(record.get("app", record.source))
        if category in _TERMINAL_TASK:
            inst = self.instances.pop(key, None)
            if app is not None:
                if state == "done":
                    app["done"] += 1
                elif state in ("failed", "host_crashed"):
                    app["failed"] += 1
                app["inflight"] = sum(
                    1 for v in self.instances.values() if v["app"] == app["id"]
                )
                self._publish_app(app, record.time, state)
            data = dict(inst) if inst is not None else {"key": key, "app": record.get("app")}
            data["state"] = "failed" if state == "host_crashed" else state
            data["terminal"] = True
            self.hub.publish(f"entity.instance.{key}", key, record.time, data)
            return
        if state in ("start", "suspend", "resume"):
            inst = self.instances.get(key)
            if inst is None:
                inst = self.instances[key] = {
                    "key": key,
                    "app": record.get("app"),
                    "task": record.get("task"),
                    "rank": record.get("rank"),
                }
            inst["state"] = "running" if state in ("start", "resume") else "suspended"
            if record.get("host") is not None:
                inst["host"] = record.get("host")
            self.hub.publish(f"entity.instance.{key}", key, record.time, dict(inst))
        # checkpoint / file_fetch ticks stay off the entity feed by design

    def _on_host(self, record: "LogRecord") -> None:
        name = record.source
        host = self.hosts.get(name)
        if host is None:
            host = self.hosts[name] = {"name": name, "incarnation": 0}
        if record.category == "host.crash":
            host["up"] = False
            daemon = self.daemons.get(name)
            if daemon is not None:
                daemon["alive"] = False
                self._publish_daemon(daemon, record.time)
        elif record.category == "host.recover":
            host["up"] = True
            host["incarnation"] = record.get("incarnation", host.get("incarnation", 0))
        self.hub.publish(f"entity.host.{name}", name, record.time, dict(host))

    def _publish_daemon(self, daemon: dict, time: float, coalescable: bool = False) -> None:
        self.hub.publish(
            f"entity.daemon.{daemon['host']}",
            daemon["host"],
            time,
            dict(daemon),
            coalescable=coalescable,
        )

    def _on_daemon_restart(self, record: "LogRecord") -> None:
        name = record.source
        daemon = self.daemons.get(name)
        if daemon is None:
            daemon = self.daemons[name] = {"host": name, "queue_depth": 0, "load": 0.0}
        daemon["alive"] = True
        daemon["draining"] = False
        self._publish_daemon(daemon, record.time)

    def _on_control(self, record: "LogRecord") -> None:
        name = record.source
        daemon = self.daemons.get(name)
        if daemon is not None and record.category in ("control.drain", "control.undrain"):
            daemon["draining"] = record.category == "control.drain"
            self._publish_daemon(daemon, record.time)
        self._publish_feed("control", record)

    def _publish_feed(self, topic: str, record: "LogRecord") -> None:
        self.hub.publish(
            topic,
            record.source,
            record.time,
            {"category": record.category, "source": record.source, **record.data},
        )

    # --------------------------------------------------------- sampler updates

    def _on_sample(self, now: float) -> None:
        """Refresh gauges from the live daemons each sampler tick; these
        publish coalescable so a slow stream sees only the latest state."""
        vce = self.vce
        inflight: dict[str, int] = {}
        for inst in self.instances.values():
            host = inst.get("host")
            if host is not None and inst.get("state") in ("pending", "running"):
                inflight[host] = inflight.get(host, 0) + 1
        for name, daemon in sorted(vce.daemons.items()):
            load = daemon.current_load() if daemon.alive else 0.0
            entry = self.daemons.get(name)
            if entry is None:
                entry = self.daemons[name] = {"host": name}
            entry.update(
                alive=daemon.alive,
                draining=daemon.draining,
                queue_depth=len(daemon.pending_queue),
                load=load,
            )
            self._publish_daemon(entry, now, coalescable=True)
            host = self.hosts.get(name)
            if host is not None:
                host["load"] = load
                host["inflight"] = inflight.get(name, 0)
                self.hub.publish(
                    f"entity.host.{name}", name, now, dict(host), coalescable=True
                )
        network = vce.network
        running = sum(1 for a in self.apps.values() if a["status"] == "running")
        self.hub.publish(
            "metrics",
            "cluster",
            now,
            {
                "apps_running": running,
                "instances_inflight": len(self.instances),
                "messages_sent": network.messages_sent,
                "messages_delivered": network.messages_delivered,
                "bytes_sent": network.bytes_sent,
            },
            coalescable=True,
        )

    # ---------------------------------------------------------------- queries

    def snapshot(self) -> dict:
        """Full JSON-able state for ``GET /api/state`` — the same shape a
        subscriber would reconstruct by replaying the entity stream."""
        out = {
            "time": self.vce.sim.now,
            "hosts": [dict(v) for _, v in sorted(self.hosts.items())],
            "daemons": [dict(v) for _, v in sorted(self.daemons.items())],
            "apps": [dict(v) for _, v in sorted(self.apps.items())],
            "instances": [dict(v) for _, v in sorted(self.instances.items())],
            "hub": self.hub.stats(),
        }
        if self.vce.telemetry is not None:
            out["health"] = self.vce.telemetry.watchdog.snapshot()
        return out
