"""Run directories: a simulation's event log + metrics saved to disk.

``save_run_dir`` writes three files:

- ``manifest.json`` — record count, the replay digest of the saved
  records (:func:`~repro.trace.replay.event_log_digest`), final sim
  time, and the seed/backend that produced the run,
- ``events.jsonl`` — one JSON object per stored log record,
- ``metrics.json`` — the shared telemetry snapshot (metrics + health),
  when the run had telemetry enabled.

``load_run_dir`` reconstructs an :class:`~repro.util.eventlog.EventLog`
and *verifies* it: a missing manifest, unparseable line, record-count
mismatch, or digest mismatch raises :class:`TruncatedRunError` — the
offline CLIs (``repro trace RUNDIR``, ``repro chaos RUNDIR``) catch it
and exit with a friendly message instead of a traceback.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING

from repro.trace.replay import event_log_digest
from repro.util.errors import VCEError
from repro.util.eventlog import EventLog, LogRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.environment import VirtualComputingEnvironment

MANIFEST = "manifest.json"
EVENTS = "events.jsonl"
METRICS = "metrics.json"


class TruncatedRunError(VCEError):
    """A run directory is incomplete or corrupt (truncated event log,
    record-count or digest mismatch, missing manifest)."""


def save_run_dir(vce: "VirtualComputingEnvironment", path: str) -> str:
    """Snapshot *vce*'s stored event log (and telemetry, when enabled)
    into directory *path* (created if needed). Returns *path*.

    Only the *stored* records are saved: a bounded-ring log saves its
    retained window, and the manifest digest covers exactly what was
    written, so a saved bounded run still verifies on load.
    """
    os.makedirs(path, exist_ok=True)
    # the manifest digest must cover what the *file* will deserialize to
    # (tuples become lists, exotic values become strings), so each record
    # is digested after a JSON round trip — a clean save always verifies
    saved: list[LogRecord] = []
    with open(os.path.join(path, EVENTS), "w") as fh:
        for record in vce.sim.log:
            line = json.dumps(
                {
                    "time": record.time,
                    "category": record.category,
                    "source": record.source,
                    "data": record.data,
                },
                default=str,
            )
            fh.write(line)
            fh.write("\n")
            obj = json.loads(line)
            saved.append(
                LogRecord(obj["time"], obj["category"], obj["source"], obj["data"])
            )
    manifest = {
        "version": 1,
        "records": len(saved),
        "digest": event_log_digest(saved),
        "time": vce.sim.now,
        "seed": vce.config.seed,
        "backend": vce.config.backend,
    }
    with open(os.path.join(path, MANIFEST), "w") as fh:
        json.dump(manifest, fh, indent=2)
        fh.write("\n")
    if vce.telemetry is not None:
        with open(os.path.join(path, METRICS), "w") as fh:
            json.dump(vce.telemetry.snapshot(refresh=False), fh, default=str)
            fh.write("\n")
    return path


def load_manifest(path: str) -> dict:
    manifest_path = os.path.join(path, MANIFEST)
    if not os.path.exists(manifest_path):
        raise TruncatedRunError(
            f"{path!r} is not a run directory: no {MANIFEST} found"
        )
    try:
        with open(manifest_path) as fh:
            return json.load(fh)
    except (json.JSONDecodeError, OSError) as exc:
        raise TruncatedRunError(f"unreadable {MANIFEST} in {path!r}: {exc}") from exc


def load_run_dir(path: str) -> EventLog:
    """Load and verify the event log saved in run directory *path*.

    Raises:
        TruncatedRunError: the directory is missing files, a JSONL line
            is cut off mid-record, or the record count/digest disagrees
            with the manifest (an interrupted ``save_run_dir`` or a
            partially-copied directory).
    """
    manifest = load_manifest(path)
    events_path = os.path.join(path, EVENTS)
    if not os.path.exists(events_path):
        raise TruncatedRunError(f"run directory {path!r} has no {EVENTS}")
    log = EventLog()
    count = 0
    with open(events_path) as fh:
        for lineno, line in enumerate(fh, 1):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TruncatedRunError(
                    f"truncated event log in {path!r}: line {lineno} is not "
                    f"valid JSON ({exc.msg}) — the run was likely interrupted "
                    "mid-write"
                ) from exc
            log.emit(
                obj.get("time", 0.0),
                obj.get("category", "?"),
                obj.get("source", "?"),
                **obj.get("data", {}),
            )
            count += 1
    expected = manifest.get("records")
    if expected is not None and count != expected:
        raise TruncatedRunError(
            f"truncated event log in {path!r}: manifest promises {expected} "
            f"records but {EVENTS} holds {count}"
        )
    expected_digest = manifest.get("digest")
    if expected_digest is not None:
        actual = event_log_digest(log)
        if actual != expected_digest:
            raise TruncatedRunError(
                f"corrupt event log in {path!r}: digest mismatch "
                f"(manifest {expected_digest[:12]}…, file {actual[:12]}…)"
            )
    return log


def load_metrics(path: str) -> dict | None:
    """The saved telemetry snapshot, or None when the run had none."""
    metrics_path = os.path.join(path, METRICS)
    if not os.path.exists(metrics_path):
        return None
    try:
        with open(metrics_path) as fh:
            return json.load(fh)
    except (json.JSONDecodeError, OSError) as exc:
        raise TruncatedRunError(f"unreadable {METRICS} in {path!r}: {exc}") from exc
