"""The serve driver: advance a simulation in slices while streaming.

:class:`ServeSession` owns one VCE plus its attached
:class:`~repro.controlplane.entities.ControlPlaneModel` and advances the
simulation in fixed sim-time **slices**. The HTTP server runs the slices
inside a single asyncio task, sleeping between them — first for whatever
the :class:`~repro.netsim.pacing.WallClockPacer` asks (live pacing), then
at least once around the event loop — so connection handlers and control
actions only ever run *between* slices, never concurrently with
``sim.run``. That single-threaded discipline is what lets control
handlers mutate the VCE directly (submit, chaos, drain) with no locks
and no effect on determinism: every mutation lands at a slice boundary,
exactly as if a script had made the same call.

The driver works identically on the serial and sharded backends — it
only ever calls ``sim.run(until=...)`` through the backend seam.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.controlplane.entities import ControlPlaneModel
from repro.netsim.pacing import WallClockPacer
from repro.scheduler.execution_program import RunState
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.hub import SubscriptionHub
    from repro.core.environment import VirtualComputingEnvironment
    from repro.scheduler.execution_program import AppRun

#: workloads ``repro serve --workload`` can synthesize without a script
WORKLOAD_NAMES = ("randomdag", "stencil", "weather")


def submit_workload(
    vce: "VirtualComputingEnvironment",
    kind: str,
    layers: int = 8,
    width: int = 8,
    seed: int | None = None,
    ranks: int = 4,
    iterations: int = 8,
) -> "AppRun":
    """Build and submit one of the named demo workloads to *vce*."""
    seed = vce.config.seed if seed is None else seed
    if kind == "randomdag":
        from repro.workloads import build_random_dag

        graph = build_random_dag(layers=layers, width=width, seed=seed)
        return vce.submit(graph, class_map={node.name: None for node in graph})
    if kind == "stencil":
        from repro.machines import MachineClass
        from repro.workloads import build_stencil_graph

        graph = build_stencil_graph(ranks=ranks, cells=64, iterations=iterations)
        return vce.submit(graph, class_map={"grid": MachineClass.WORKSTATION})
    if kind == "weather":
        from repro.workloads import WEATHER_SCRIPT, weather_programs

        return vce.run_script(WEATHER_SCRIPT, weather_programs(), name="weather")
    raise ConfigurationError(
        f"unknown workload {kind!r} (expected one of {', '.join(WORKLOAD_NAMES)})"
    )


class ServeSession:
    """One streaming run: a VCE, its entity model, and slice bookkeeping.

    Args:
        vce: the environment to drive (booted here if it is not yet).
        slice_seconds: simulated seconds advanced per :meth:`advance`.
        pacer: wall-clock pacer; default free-runs.
        hub: subscription hub to publish into (one is created otherwise).
    """

    def __init__(
        self,
        vce: "VirtualComputingEnvironment",
        slice_seconds: float = 2.0,
        pacer: WallClockPacer | None = None,
        hub: "SubscriptionHub | None" = None,
    ) -> None:
        if slice_seconds <= 0:
            raise ConfigurationError("slice_seconds must be positive")
        self.vce = vce
        self.slice = slice_seconds
        self.pacer = pacer or WallClockPacer(0.0)
        self.model = ControlPlaneModel(vce, hub).attach()
        self.hub = self.model.hub
        self.runs: list[AppRun] = []
        self.slices = 0
        if not vce._booted:
            vce.boot()
        self.pacer.start(vce.sim.now)

    # ---------------------------------------------------------------- control

    def track(self, run: "AppRun") -> "AppRun":
        """Register *run* so :attr:`workload_done` accounts for it."""
        self.runs.append(run)
        return run

    def submit(self, kind: str, **params) -> "AppRun":
        """Submit a named workload and track it."""
        return self.track(submit_workload(self.vce, kind, **params))

    @property
    def workload_done(self) -> bool:
        """True once every tracked run reached a terminal state (vacuously
        False with nothing tracked — an idle server is never 'done')."""
        return bool(self.runs) and all(
            r.state in (RunState.DONE, RunState.FAILED) for r in self.runs
        )

    # --------------------------------------------------------------- stepping

    def advance(self, slice_seconds: float | None = None) -> float:
        """Run one simulation slice; returns the new sim time. Publishes a
        coalescable ``sim`` clock event so streams see progress even when
        the slice itself was quiet."""
        sim = self.vce.sim
        target = sim.now + (slice_seconds if slice_seconds is not None else self.slice)
        sim.run(until=target)
        self.slices += 1
        self.hub.publish(
            "sim",
            "clock",
            sim.now,
            {
                "now": sim.now,
                "slices": self.slices,
                "runs_tracked": len(self.runs),
                "runs_done": sum(
                    1
                    for r in self.runs
                    if r.state in (RunState.DONE, RunState.FAILED)
                ),
                "workload_done": self.workload_done,
            },
            coalescable=True,
        )
        return sim.now

    def sleep_for(self) -> float:
        """Wall seconds the server should sleep before the next slice."""
        return self.pacer.sleep_for(self.vce.sim.now)
