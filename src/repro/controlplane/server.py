"""The control-plane HTTP server: SSE/WebSocket streams + control API.

A deliberately small, dependency-free asyncio server (hand-rolled
HTTP/1.1, Server-Sent Events, and RFC 6455 WebSocket framing — the
container bakes in no web framework, and none is needed at this size).

Endpoints:

======  =================  ==========================================
GET     ``/``              the single-file dashboard
GET     ``/events``        SSE event stream (``?topics=a,b`` prefixes)
GET     ``/ws``            the same stream over WebSocket
GET     ``/api/state``     full entity snapshot
GET     ``/api/metrics``   shared telemetry snapshot (metrics + health)
GET     ``/metrics``       Prometheus text exposition
GET     ``/api/trace``     critical paths of completed applications
POST    ``/api/submit``    ``{"workload": "randomdag", ...}``
POST    ``/api/chaos``     ``{"schedule": "chaos-mix", "seed": 3}``
POST    ``/api/drain``     ``{"host": "ws1"}`` (+ ``"undrain": true``)
POST    ``/api/restart``   ``{"host": "ws1"}`` — reboot the daemon
POST    ``/api/snapshot``  ``{"path": "rundir"}`` — save a run directory
POST    ``/api/shutdown``  stop the server cleanly
======  =================  ==========================================

Concurrency model: everything runs on one asyncio loop. The driver task
advances the simulation in slices (``ServeSession.advance``), and since
``sim.run`` is synchronous, *no handler executes during a slice* —
control handlers mutate the VCE at slice boundaries only, which keeps
the simulation exactly as deterministic as a script making the same
calls. Slow stream consumers never block the driver: each stream owns a
bounded hub subscription that drops oldest under backpressure while the
stream task alone waits on the socket.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import time
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

from repro.controlplane.driver import ServeSession
from repro.controlplane.rundir import save_run_dir
from repro.util.errors import VCEError

if TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.hub import Subscription

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"
_MAX_HEADER_BYTES = 32768
_MAX_BODY_BYTES = 1 << 20


def _ws_accept(key: str) -> str:
    digest = hashlib.sha1((key + _WS_GUID).encode()).digest()
    return base64.b64encode(digest).decode()


def _ws_frame(payload: bytes, opcode: int = 0x1) -> bytes:
    head = bytearray([0x80 | opcode])
    n = len(payload)
    if n < 126:
        head.append(n)
    elif n < 65536:
        head.append(126)
        head += n.to_bytes(2, "big")
    else:
        head.append(127)
        head += n.to_bytes(8, "big")
    return bytes(head) + payload


async def _ws_read_frame(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    head = await reader.readexactly(2)
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    length = head[1] & 0x7F
    if length == 126:
        length = int.from_bytes(await reader.readexactly(2), "big")
    elif length == 127:
        length = int.from_bytes(await reader.readexactly(8), "big")
    mask = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if masked:
        payload = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    return opcode, payload


class _Request:
    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, target: str, headers: dict, body: bytes):
        parts = urlsplit(target)
        self.method = method
        self.path = parts.path
        self.query = parse_qs(parts.query)
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        if not self.body:
            return {}
        try:
            obj = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise VCEError(f"request body is not valid JSON: {exc.msg}") from exc
        if not isinstance(obj, dict):
            raise VCEError("request body must be a JSON object")
        return obj

    def param(self, name: str, default: str | None = None) -> str | None:
        values = self.query.get(name)
        return values[0] if values else default


class ControlPlaneServer:
    """See module docstring.

    Args:
        session: the :class:`ServeSession` to drive and expose.
        host: bind address (loopback by default — the control API is
            unauthenticated by design, like the paper's era tooling).
        port: TCP port; 0 picks a free one (see :attr:`port` after start).
        keepalive: idle seconds between SSE keepalive comments.
        queue_limit: per-stream hub subscription bound.
    """

    def __init__(
        self,
        session: ServeSession,
        host: str = "127.0.0.1",
        port: int = 0,
        keepalive: float = 15.0,
        queue_limit: int = 512,
    ) -> None:
        self.session = session
        self.vce = session.vce
        self.host = host
        self.requested_port = port
        self.port: int | None = None
        self.keepalive = keepalive
        self.queue_limit = queue_limit
        self._server: asyncio.AbstractServer | None = None
        self._shutdown: asyncio.Event | None = None
        self._wakes: set[asyncio.Event] = set()
        self._stream_count = 0

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()
        for wake in list(self._wakes):
            wake.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def request_shutdown(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()
        for wake in list(self._wakes):
            wake.set()

    @property
    def shutting_down(self) -> bool:
        return self._shutdown is not None and self._shutdown.is_set()

    async def run(
        self,
        exit_when_done: bool = False,
        max_wall: float | None = None,
        idle_sleep: float = 0.05,
    ) -> None:
        """Start the server and drive simulation slices until shutdown.

        Args:
            exit_when_done: stop once every tracked run is terminal
                (headless / CI mode).
            max_wall: hard wall-clock cap in seconds (safety for CI).
            idle_sleep: minimum sleep between slices when free-running,
                so handlers get loop time and an idle sim does not spin.
        """
        if self._server is None:
            await self.start()
        start_wall = time.monotonic()  # detlint: ok(D001) - serving, not simulating
        try:
            while not self.shutting_down:
                self.session.advance()
                if exit_when_done and self.session.workload_done:
                    break
                if max_wall is not None:
                    elapsed = time.monotonic() - start_wall  # detlint: ok(D001)
                    if elapsed >= max_wall:
                        break
                await asyncio.sleep(max(self.session.sleep_for(), idle_sleep))
        finally:
            await self.stop()

    # ------------------------------------------------------------ connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            await self._route(request, reader, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> _Request | None:
        raw = await reader.readuntil(b"\r\n\r\n")
        if len(raw) > _MAX_HEADER_BYTES:
            return None
        lines = raw.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or 0)
        if length:
            if length > _MAX_BODY_BYTES:
                return None
            body = await reader.readexactly(length)
        return _Request(method.upper(), target, headers, body)

    # ---------------------------------------------------------------- routing

    async def _route(
        self,
        request: _Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        method, path = request.method, request.path
        if method == "GET" and path == "/events":
            await self._stream_sse(request, writer)
            return
        if method == "GET" and path == "/ws":
            await self._stream_websocket(request, reader, writer)
            return
        try:
            handled = await self._route_plain(request, writer)
        except (VCEError, ValueError) as exc:
            await self._send_json(writer, {"error": str(exc)}, status=400)
            return
        except KeyError as exc:
            await self._send_json(
                writer, {"error": f"unknown name: {exc.args[0]!r}"}, status=404
            )
            return
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # a handler bug must not kill the server
            await self._send_json(
                writer, {"error": f"internal error: {exc!r}"}, status=500
            )
            return
        if not handled:
            await self._send_json(writer, {"error": "not found"}, status=404)

    async def _route_plain(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> bool:
        method, path = request.method, request.path
        session, vce = self.session, self.vce
        if method == "GET":
            if path == "/":
                from repro.controlplane.dashboard import DASHBOARD_HTML

                await self._send(
                    writer, 200, "text/html; charset=utf-8", DASHBOARD_HTML.encode()
                )
                return True
            if path == "/api/state":
                await self._send_json(writer, session.model.snapshot())
                return True
            if path == "/api/metrics":
                if vce.telemetry is None:
                    raise VCEError("telemetry is disabled for this run")
                await self._send_json(writer, vce.telemetry.snapshot())
                return True
            if path == "/metrics":
                if vce.telemetry is None:
                    raise VCEError("telemetry is disabled for this run")
                await self._send(
                    writer,
                    200,
                    "text/plain; version=0.0.4",
                    vce.telemetry.prometheus().encode(),
                )
                return True
            if path == "/api/trace":
                await self._send_json(writer, self._trace_summary())
                return True
            return False
        if method == "POST":
            body = request.json()
            if path == "/api/submit":
                run = session.submit(
                    body.get("workload", "randomdag"),
                    **{
                        k: body[k]
                        for k in ("layers", "width", "seed", "ranks", "iterations")
                        if k in body
                    },
                )
                await self._send_json(
                    writer,
                    {
                        "ok": True,
                        "app": run.app.id if run.app is not None else None,
                        "state": run.state.value,
                        "time": vce.sim.now,
                    },
                )
                return True
            if path == "/api/chaos":
                controller = vce.chaos(
                    body.get("schedule", "chaos-mix"),
                    seed=body.get("seed"),
                    start=float(body.get("start", 0.0)),
                )
                await self._send_json(
                    writer,
                    {"ok": True, "schedule": body.get("schedule", "chaos-mix"),
                     "actions": len(controller.schedule)},
                )
                return True
            if path == "/api/drain":
                host = body["host"]
                if body.get("undrain"):
                    vce.undrain_host(host)
                else:
                    vce.drain_host(host)
                await self._send_json(
                    writer,
                    {"ok": True, "host": host,
                     "draining": vce.daemons[host].draining},
                )
                return True
            if path == "/api/restart":
                host = body["host"]
                vce.restart_daemon(host)
                await self._send_json(writer, {"ok": True, "host": host})
                return True
            if path == "/api/snapshot":
                path_arg = body.get("path", "run-snapshot")
                save_run_dir(vce, path_arg)
                await self._send_json(writer, {"ok": True, "path": path_arg})
                return True
            if path == "/api/shutdown":
                await self._send_json(writer, {"ok": True, "shutting_down": True})
                self.request_shutdown()
                return True
            return False
        return False

    def _trace_summary(self) -> dict:
        from repro.trace import TraceAssembler, critical_path

        paths = []
        for trace in TraceAssembler(self.vce.sim.log).assemble():
            cp = critical_path(trace)
            if cp is None:
                continue
            paths.append(
                {
                    "app": cp.app,
                    "start": cp.start,
                    "end": cp.end,
                    "makespan": cp.makespan,
                    "segments": [
                        {
                            "kind": s.kind,
                            "start": s.start,
                            "end": s.end,
                            "duration": s.duration,
                            "span": s.span,
                        }
                        for s in cp.segments
                    ],
                }
            )
        return {"paths": paths, "time": self.vce.sim.now}

    # ---------------------------------------------------------------- streams

    def _subscribe(self, request: _Request, kind: str) -> tuple:
        topics_arg = request.param("topics", "")
        topics = tuple(t for t in (topics_arg or "").split(",") if t)
        wake: asyncio.Event = asyncio.Event()
        self._wakes.add(wake)
        self._stream_count += 1
        sub = self.session.hub.subscribe(
            name=f"{kind}-{self._stream_count}",
            topics=topics,
            limit=self.queue_limit,
            on_enqueue=wake.set,
        )
        return sub, wake

    def _release(self, sub: "Subscription", wake: asyncio.Event) -> None:
        sub.close()
        self._wakes.discard(wake)

    async def _wait_events(self, sub: "Subscription", wake: asyncio.Event) -> list:
        """Drain pending events, or block until some arrive / keepalive
        timeout (returns []) / shutdown."""
        events = sub.drain(max_items=256)
        if events or self.shutting_down:
            return events
        wake.clear()
        if sub.pending:  # raced with a publish between drain and clear
            return sub.drain(max_items=256)
        try:
            await asyncio.wait_for(wake.wait(), timeout=self.keepalive)
        except asyncio.TimeoutError:
            return []
        return sub.drain(max_items=256)

    async def _stream_sse(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> None:
        sub, wake = self._subscribe(request, "sse")
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n"
                b"Access-Control-Allow-Origin: *\r\n\r\n"
            )
            hello = json.dumps(self.session.model.snapshot(), default=str)
            writer.write(f"event: snapshot\ndata: {hello}\n\n".encode())
            await writer.drain()
            while not self.shutting_down:
                events = await self._wait_events(sub, wake)
                if not events:
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                # unnamed frames so EventSource.onmessage sees every topic
                # (the topic rides in the JSON payload)
                chunks = []
                for event in events:
                    data = json.dumps(event.as_dict(), default=str)
                    chunks.append(f"data: {data}\n\n")
                writer.write("".join(chunks).encode())
                await writer.drain()
        finally:
            self._release(sub, wake)

    async def _stream_websocket(
        self,
        request: _Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        key = request.headers.get("sec-websocket-key")
        if key is None or request.headers.get("upgrade", "").lower() != "websocket":
            await self._send_json(writer, {"error": "expected websocket upgrade"}, 400)
            return
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {_ws_accept(key)}\r\n\r\n"
            ).encode()
        )
        await writer.drain()
        sub, wake = self._subscribe(request, "ws")
        closed = asyncio.Event()

        async def read_client() -> None:
            try:
                while True:
                    opcode, payload = await _ws_read_frame(reader)
                    if opcode == 0x8:  # close
                        break
                    if opcode == 0x9:  # ping -> pong
                        writer.write(_ws_frame(payload, opcode=0xA))
                        await writer.drain()
            except (asyncio.IncompleteReadError, ConnectionResetError):
                pass
            finally:
                closed.set()
                wake.set()

        reader_task = asyncio.ensure_future(read_client())
        try:
            hello = json.dumps(
                {"topic": "snapshot", "data": self.session.model.snapshot()},
                default=str,
            )
            writer.write(_ws_frame(hello.encode()))
            await writer.drain()
            while not self.shutting_down and not closed.is_set():
                events = await self._wait_events(sub, wake)
                if closed.is_set():
                    break
                if not events:
                    writer.write(_ws_frame(b"", opcode=0x9))  # ping as keepalive
                    await writer.drain()
                    continue
                for event in events:
                    payload = json.dumps(event.as_dict(), default=str).encode()
                    writer.write(_ws_frame(payload))
                await writer.drain()
            writer.write(_ws_frame(b"", opcode=0x8))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            reader_task.cancel()
            self._release(sub, wake)

    # -------------------------------------------------------------- responses

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
    ) -> None:
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            500: "Internal Server Error",
        }.get(status, "OK")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Access-Control-Allow-Origin: *\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
        )
        writer.write(body)
        await writer.drain()

    async def _send_json(
        self, writer: asyncio.StreamWriter, obj: dict, status: int = 200
    ) -> None:
        body = json.dumps(obj, default=str).encode()
        await self._send(writer, status, "application/json", body)


def serve(
    session: ServeSession,
    host: str = "127.0.0.1",
    port: int = 8421,
    exit_when_done: bool = False,
    max_wall: float | None = None,
) -> ControlPlaneServer:
    """Blocking convenience wrapper: run a server until shutdown."""
    server = ControlPlaneServer(session, host=host, port=port)
    asyncio.run(server.run(exit_when_done=exit_when_done, max_wall=max_wall))
    return server
