"""Live control plane: entity model, subscription hub, HTTP streaming.

Layers (each usable on its own):

- :mod:`~repro.controlplane.hub` — :class:`SubscriptionHub`, bounded
  per-subscriber queues with topic filters, coalescing, and drop-oldest
  backpressure;
- :mod:`~repro.controlplane.entities` — :class:`ControlPlaneModel`,
  typed host/daemon/instance/application change events derived from the
  event log and sampler (deterministic: kernel order in, hub order out);
- :mod:`~repro.controlplane.driver` — :class:`ServeSession`, slice-wise
  simulation driving with optional wall-clock pacing;
- :mod:`~repro.controlplane.server` — :class:`ControlPlaneServer`, the
  stdlib-asyncio HTTP server (SSE/WebSocket streams + control API) and
  the single-file dashboard;
- :mod:`~repro.controlplane.rundir` — saved run directories with
  truncation-detecting loads.
"""

from repro.controlplane.driver import WORKLOAD_NAMES, ServeSession, submit_workload
from repro.controlplane.entities import ControlPlaneModel
from repro.controlplane.hub import Event, Subscription, SubscriptionHub, topic_matches
from repro.controlplane.rundir import (
    TruncatedRunError,
    load_manifest,
    load_metrics,
    load_run_dir,
    save_run_dir,
)
from repro.controlplane.server import ControlPlaneServer, serve

__all__ = [
    "ControlPlaneModel",
    "ControlPlaneServer",
    "Event",
    "ServeSession",
    "Subscription",
    "SubscriptionHub",
    "TruncatedRunError",
    "WORKLOAD_NAMES",
    "load_manifest",
    "load_metrics",
    "load_run_dir",
    "save_run_dir",
    "serve",
    "submit_workload",
    "topic_matches",
]
