"""The single-file live dashboard served at ``GET /``.

Plain HTML + hand-rolled SVG/DOM — no external assets, so it works from
the same offline process that runs the simulation. Views:

- **cluster heatmap** — one cell per host, sequential blue fill by
  sampled load, status ring for down hosts, drain marker; clicking a
  cell toggles an operator drain through ``POST /api/drain``;
- **applications** — per-app progress bars (done / failed / in-flight
  segments over the task total);
- **critical path** — flame strip per completed app from
  ``GET /api/trace``, segments colored by attribution kind;
- **live feed** — chaos, recovery, health, and control events as they
  stream over SSE;
- header controls to inject a chaos recipe and save a run-directory
  snapshot, plus hub backpressure counters (events dropped/coalesced).

Palette: the skill-validated reference palette (categorical slot order,
sequential blue ramp, reserved status colors), declared once as CSS
custom properties with a selected dark mode — see the style block.
"""

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro control plane</title>
<style>
  :root {
    color-scheme: light;
    --surface-1: #fcfcfb; --page: #f9f9f7;
    --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
    --grid: #e1e0d9; --baseline: #c3c2b7;
    --border: rgba(11,11,11,0.10);
    --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
    --series-4: #eda100; --series-5: #e87ba4;
    --status-good: #0ca30c; --status-warn: #fab219;
    --status-serious: #ec835a; --status-critical: #d03b3b;
    --seq-100: #cde2fb; --seq-200: #9ec5f4; --seq-300: #6da7ec;
    --seq-400: #3987e5; --seq-500: #256abf; --seq-600: #184f95;
    --seq-700: #0d366b;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) {
      color-scheme: dark;
      --surface-1: #1a1a19; --page: #0d0d0d;
      --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
      --grid: #2c2c2a; --baseline: #383835;
      --border: rgba(255,255,255,0.10);
      --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
      --series-4: #c98500; --series-5: #d55181;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; background: var(--page); color: var(--ink);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  header {
    display: flex; align-items: baseline; gap: 16px; flex-wrap: wrap;
    padding: 14px 20px; border-bottom: 1px solid var(--grid);
  }
  header h1 { font-size: 16px; margin: 0; font-weight: 600; }
  #clock { font-variant-numeric: tabular-nums; color: var(--ink-2); }
  #conn { color: var(--muted); }
  #conn.live { color: var(--status-good); }
  header .actions { margin-left: auto; display: flex; gap: 8px; }
  button {
    font: inherit; color: var(--ink); background: var(--surface-1);
    border: 1px solid var(--border); border-radius: 6px;
    padding: 4px 10px; cursor: pointer;
  }
  button:hover { border-color: var(--baseline); }
  main {
    display: grid; gap: 16px; padding: 16px 20px;
    grid-template-columns: minmax(340px, 1.2fr) minmax(300px, 1fr);
  }
  section {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 12px 14px; min-width: 0;
  }
  section h2 {
    font-size: 12px; font-weight: 600; text-transform: uppercase;
    letter-spacing: .04em; color: var(--ink-2); margin: 0 0 10px;
  }
  #feedbox { grid-row: span 2; }
  /* heatmap */
  #heatmap { display: flex; flex-wrap: wrap; gap: 6px; }
  .cell {
    width: 92px; border-radius: 4px; padding: 6px 8px; cursor: pointer;
    border: 1px solid var(--border); position: relative;
  }
  .cell .hn { font-size: 12px; font-weight: 600; }
  .cell .hv { font-variant-numeric: tabular-nums; font-size: 12px; }
  .cell.lo { color: var(--ink); }
  .cell.hi { color: #fff; }
  .cell.down { outline: 2px solid var(--status-critical); outline-offset: 1px; }
  .cell .flag { position: absolute; top: 4px; right: 6px; font-size: 11px; }
  .ramp { display: flex; align-items: center; gap: 6px; margin-top: 10px;
          color: var(--muted); font-size: 11px; }
  .ramp i { width: 18px; height: 8px; display: inline-block; border-radius: 2px; }
  /* apps */
  .app { margin-bottom: 10px; }
  .app .meta { display: flex; gap: 8px; font-size: 12px; color: var(--ink-2);
               justify-content: space-between; }
  .bar {
    display: flex; height: 14px; border-radius: 4px; overflow: hidden;
    background: var(--grid); margin-top: 3px; gap: 2px;
  }
  .bar i { display: block; height: 100%; }
  .bar .done { background: var(--status-good); }
  .bar .failed { background: var(--status-critical); }
  .bar .run { background: var(--series-1); }
  .legend { display: flex; gap: 14px; font-size: 11px; color: var(--muted);
            margin-top: 8px; flex-wrap: wrap; }
  .legend i { width: 10px; height: 10px; display: inline-block;
              border-radius: 2px; vertical-align: -1px; margin-right: 4px; }
  /* critical path */
  .strip { margin-bottom: 10px; }
  .strip .meta { font-size: 12px; color: var(--ink-2); margin-bottom: 3px; }
  .strip svg { width: 100%; height: 18px; display: block; }
  /* feed */
  #feed { list-style: none; margin: 0; padding: 0; font-size: 12px;
          max-height: 520px; overflow-y: auto; }
  #feed li { padding: 3px 0; border-bottom: 1px solid var(--grid);
             display: flex; gap: 8px; }
  #feed .t { color: var(--muted); font-variant-numeric: tabular-nums;
             flex: none; width: 64px; }
  #feed .icon { flex: none; }
  #stats { color: var(--muted); font-size: 12px; margin-top: 8px; }
  #tooltip {
    position: fixed; pointer-events: none; display: none; z-index: 10;
    background: var(--surface-1); color: var(--ink);
    border: 1px solid var(--border); border-radius: 6px;
    box-shadow: 0 2px 10px rgba(0,0,0,.18);
    padding: 6px 9px; font-size: 12px; max-width: 320px;
  }
  @media (max-width: 860px) { main { grid-template-columns: 1fr; } }
</style>
</head>
<body>
<header>
  <h1>repro control plane</h1>
  <span id="clock">t = 0.0s</span>
  <span id="conn">connecting…</span>
  <div class="actions">
    <button id="btn-chaos" title="POST /api/chaos chaos-mix">Inject chaos-mix</button>
    <button id="btn-snap" title="POST /api/snapshot">Save snapshot</button>
  </div>
</header>
<main>
  <section>
    <h2>Cluster heatmap — load per host</h2>
    <div id="heatmap"></div>
    <div class="ramp">
      <span>load 0</span>
      <i style="background:var(--seq-100)"></i><i style="background:var(--seq-200)"></i>
      <i style="background:var(--seq-300)"></i><i style="background:var(--seq-400)"></i>
      <i style="background:var(--seq-500)"></i><i style="background:var(--seq-600)"></i>
      <i style="background:var(--seq-700)"></i>
      <span>2+</span>
      <span style="margin-left:12px">click a cell to drain / undrain · ✕ down · ⏸ draining</span>
    </div>
  </section>
  <section id="feedbox">
    <h2>Live feed — chaos · recovery · health · control</h2>
    <ul id="feed"></ul>
    <div id="stats">hub: waiting for events…</div>
  </section>
  <section>
    <h2>Applications</h2>
    <div id="apps"><span style="color:var(--muted)">no applications yet</span></div>
    <div class="legend">
      <span><i style="background:var(--status-good)"></i>done</span>
      <span><i style="background:var(--status-critical)"></i>failed</span>
      <span><i style="background:var(--series-1)"></i>in flight</span>
      <span><i style="background:var(--grid)"></i>not dispatched</span>
    </div>
  </section>
  <section>
    <h2>Critical path</h2>
    <div id="paths"><span style="color:var(--muted)">
      appears when an application completes</span></div>
    <div class="legend" id="path-legend"></div>
  </section>
</main>
<div id="tooltip"></div>
<script>
"use strict";
const S = { hosts: {}, daemons: {}, apps: {}, now: 0, hub: null };
const $ = id => document.getElementById(id);
const tooltip = $("tooltip");
let dirty = false, pathsFetched = 0;

function esc(s) {
  return String(s).replace(/[&<>"]/g,
    c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
}
function showTip(ev, html) {
  tooltip.innerHTML = html;
  tooltip.style.display = "block";
  const x = Math.min(ev.clientX + 12, innerWidth - 330);
  tooltip.style.left = x + "px";
  tooltip.style.top = (ev.clientY + 12) + "px";
}
function hideTip() { tooltip.style.display = "none"; }

/* sequential blue ramp: load 0..2+ -> step; text flips at the 400 step */
const RAMP = ["--seq-100","--seq-200","--seq-300","--seq-400",
              "--seq-500","--seq-600","--seq-700"];
function rampVar(load) {
  const i = Math.min(RAMP.length - 1, Math.floor((load / 2) * RAMP.length));
  return [RAMP[i], i >= 3];
}

function renderHeatmap() {
  const box = $("heatmap");
  box.textContent = "";
  for (const name of Object.keys(S.hosts).sort()) {
    const h = S.hosts[name], d = S.daemons[name] || {};
    const load = h.load || 0;
    const [v, hi] = rampVar(load);
    const cell = document.createElement("div");
    cell.className = "cell " + (hi ? "hi" : "lo") + (h.up === false ? " down" : "");
    cell.style.background = h.up === false ? "var(--grid)" : `var(${v})`;
    const flag = h.up === false ? "✕" : (d.draining ? "⏸" : "");
    cell.innerHTML = `<span class="hn">${esc(name)}</span>` +
      (flag ? `<span class="flag">${flag}</span>` : "") +
      `<div class="hv">${load.toFixed(2)} · ${h.inflight || 0} inst</div>`;
    cell.onmousemove = ev => showTip(ev,
      `<b>${esc(name)}</b> ${h.up === false ? "— <b>down</b>" : ""}<br>` +
      `load ${load.toFixed(2)} · in-flight ${h.inflight || 0}<br>` +
      `queue ${d.queue_depth || 0}` +
      (d.draining ? " · <b>draining</b>" : "") +
      `<br><span style="color:var(--muted)">click to ` +
      (d.draining ? "undrain" : "drain") + "</span>");
    cell.onmouseleave = hideTip;
    cell.onclick = () => post("/api/drain", { host: name, undrain: !!d.draining });
    box.appendChild(cell);
  }
}

function renderApps() {
  const box = $("apps");
  const ids = Object.keys(S.apps).sort();
  if (!ids.length) return;
  box.textContent = "";
  for (const id of ids) {
    const a = S.apps[id];
    const total = Math.max(a.tasks || 0, (a.done||0)+(a.failed||0)+(a.inflight||0), 1);
    const pct = n => (100 * (n || 0) / total).toFixed(2) + "%";
    const el = document.createElement("div");
    el.className = "app";
    el.innerHTML =
      `<div class="meta"><span><b>${esc(id)}</b> — ${esc(a.status)}</span>` +
      `<span>${a.done || 0}/${total} done` +
      (a.failed ? ` · ${a.failed} failed` : "") + `</span></div>` +
      `<div class="bar">` +
      `<i class="done" style="width:${pct(a.done)}"></i>` +
      `<i class="failed" style="width:${pct(a.failed)}"></i>` +
      `<i class="run" style="width:${pct(a.inflight)}"></i></div>`;
    el.onmousemove = ev => showTip(ev,
      `<b>${esc(id)}</b><br>status ${esc(a.status)}<br>` +
      `${a.done || 0} done · ${a.failed || 0} failed · ` +
      `${a.inflight || 0} in flight · ${total} tasks` +
      (a.makespan ? `<br>makespan ${(+a.makespan).toFixed(1)}s` : ""));
    el.onmouseleave = hideTip;
    box.appendChild(el);
  }
}

/* critical path: categorical slots per attribution kind, fixed order */
const KIND_SLOT = { run: 1, dispatch: 2, alloc: 3, migration: 4, wait: 5 };
function kindColor(kind) {
  return `var(--series-${KIND_SLOT[kind] || 5})`;
}
async function renderPaths() {
  let data;
  try { data = await (await fetch("/api/trace")).json(); }
  catch (e) { return; }
  if (!data.paths || !data.paths.length) return;
  const box = $("paths");
  box.textContent = "";
  const kinds = new Set();
  for (const p of data.paths) {
    const span = Math.max(p.makespan, 1e-9);
    let rects = "";
    for (const s of p.segments) {
      kinds.add(s.kind);
      const x = (100 * (s.start - p.start) / span);
      const w = Math.max(100 * s.duration / span, 0.15);
      rects += `<rect x="${x.toFixed(3)}%" y="2" width="${w.toFixed(3)}%" ` +
        `height="14" rx="2" fill="${kindColor(s.kind)}" ` +
        `data-tip="${esc(s.kind)} · ${esc(s.span)} · ${s.duration.toFixed(2)}s"` +
        `></rect>`;
    }
    const el = document.createElement("div");
    el.className = "strip";
    el.innerHTML = `<div class="meta"><b>${esc(p.app)}</b> — ` +
      `makespan ${p.makespan.toFixed(1)}s</div>` +
      `<svg preserveAspectRatio="none">${rects}</svg>`;
    el.querySelectorAll("rect").forEach(r => {
      r.addEventListener("mousemove",
        ev => showTip(ev, esc(r.getAttribute("data-tip"))));
      r.addEventListener("mouseleave", hideTip);
    });
    box.appendChild(el);
  }
  $("path-legend").innerHTML = [...kinds].sort().map(k =>
    `<span><i style="background:${kindColor(k)}"></i>${esc(k)}</span>`).join("");
}

const FEED_ICON = { chaos: "⚡", recovery: "↻", health: "⚠", control: "◇" };
function feedItem(topic, e) {
  const li = document.createElement("li");
  const d = e.data || {};
  let icon = FEED_ICON[topic] || "·";
  if (topic === "health" && d.category === "health.cleared") icon = "✓";
  const what = d.category || topic;
  li.innerHTML = `<span class="t">${e.time.toFixed(1)}s</span>` +
    `<span class="icon">${icon}</span>` +
    `<span>${esc(what)} <b>${esc(d.source || e.key || "")}</b>` +
    (d.severity ? ` <span style="color:var(--muted)">[${esc(d.severity)}]</span>` : "") +
    `</span>`;
  const feed = $("feed");
  feed.prepend(li);
  while (feed.children.length > 200) feed.lastChild.remove();
}

function render() {
  dirty = false;
  $("clock").textContent = `t = ${S.now.toFixed(1)}s`;
  renderHeatmap();
  renderApps();
  if (S.hub) {
    const dropped = S.hub.subscriptions
      ? S.hub.subscriptions.reduce((n, s) => n + s.dropped, 0) : 0;
    $("stats").textContent =
      `hub: ${S.hub.published} published · ${dropped} dropped (backpressure)`;
  }
}
function mark() {
  if (!dirty) { dirty = true; requestAnimationFrame(render); }
}

function applySnapshot(snap) {
  for (const h of snap.hosts || []) S.hosts[h.name] = h;
  for (const d of snap.daemons || []) S.daemons[d.host] = d;
  for (const a of snap.apps || []) S.apps[a.id] = a;
  S.now = snap.time || 0;
  S.hub = snap.hub || null;
  mark();
}

function onEvent(e) {
  const topic = e.topic, d = e.data || {};
  S.now = Math.max(S.now, e.time);
  if (topic.startsWith("entity.host.")) S.hosts[e.key] = d;
  else if (topic.startsWith("entity.daemon.")) S.daemons[e.key] = d;
  else if (topic.startsWith("entity.app.")) {
    S.apps[e.key] = d;
    if ((d.action === "done" || d.action === "failed") &&
        pathsFetched++ < 50) renderPaths();
  }
  else if (topic === "chaos" || topic === "recovery" ||
           topic === "health" || topic === "control") feedItem(topic, e);
  else if (topic === "sim") { /* clock only */ }
  mark();
}

async function post(path, body) {
  try {
    const r = await fetch(path, { method: "POST",
      headers: { "Content-Type": "application/json" },
      body: JSON.stringify(body || {}) });
    const out = await r.json();
    if (out.error) console.warn(path, out.error);
  } catch (e) { console.warn(path, e); }
}
$("btn-chaos").onclick = () => post("/api/chaos", { schedule: "chaos-mix" });
$("btn-snap").onclick = () => post("/api/snapshot", { path: "run-snapshot" });

const es = new EventSource("/events");
es.onopen = () => { $("conn").textContent = "● live"; $("conn").className = "live"; };
es.onerror = () => { $("conn").textContent = "reconnecting…"; $("conn").className = ""; };
es.addEventListener("snapshot", ev => applySnapshot(JSON.parse(ev.data)));
es.onmessage = ev => onEvent(JSON.parse(ev.data));
</script>
</body>
</html>
"""
