"""Tokenizer for the application description language."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.util.errors import ScriptError


class TokenKind(enum.Enum):
    WORD = "word"          # keywords and identifiers
    INT = "int"
    STRING = "string"      # double-quoted path
    DASH = "dash"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    EQUALS = "equals"      # '=' in SET
    COMPARE = "compare"    # == != <= >= < >
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def int_value(self) -> int:
        return int(self.text)


_SPEC = [
    (TokenKind.STRING, re.compile(r'"([^"\n]*)"')),
    (TokenKind.INT, re.compile(r"\d+")),
    (TokenKind.COMPARE, re.compile(r"==|!=|<=|>=|<|>")),
    (TokenKind.WORD, re.compile(r"[A-Za-z_][A-Za-z0-9_./-]*")),
    (TokenKind.DASH, re.compile(r"-")),
    (TokenKind.COMMA, re.compile(r",")),
    (TokenKind.LPAREN, re.compile(r"\(")),
    (TokenKind.RPAREN, re.compile(r"\)")),
    (TokenKind.EQUALS, re.compile(r"=")),
]

_COMMENT = re.compile(r"#[^\n]*")
_WS = re.compile(r"[ \t\r\n]+")


def tokenize(text: str) -> list[Token]:
    """Tokenize a script; raises :class:`ScriptError` with location on
    illegal input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0

    def advance_lines(chunk: str, start_pos: int) -> None:
        nonlocal line, line_start
        newlines = chunk.count("\n")
        if newlines:
            line += newlines
            line_start = start_pos + chunk.rfind("\n") + 1

    while pos < len(text):
        ws = _WS.match(text, pos)
        if ws:
            advance_lines(ws.group(), pos)
            pos = ws.end()
            continue
        comment = _COMMENT.match(text, pos)
        if comment:
            pos = comment.end()
            continue
        for kind, pattern in _SPEC:
            match = pattern.match(text, pos)
            if match:
                value = match.group(1) if kind is TokenKind.STRING else match.group()
                tokens.append(Token(kind, value, line, pos - line_start + 1))
                pos = match.end()
                break
        else:
            raise ScriptError(
                f"illegal character {text[pos]!r}", line=line, column=pos - line_start + 1
            )
    tokens.append(Token(TokenKind.EOF, "", line, pos - line_start + 1))
    return tokens
