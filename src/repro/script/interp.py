"""Interpreter: statement list → :class:`ApplicationDescription`.

Conditionals are evaluated against an :class:`Environment` that knows the
current availability of each machine class (from the group directory or
machine database) plus ``SET`` variables; problem-class directives resolve
to machine classes through the compilation manager's preference table.
"""

from __future__ import annotations

import posixpath
from typing import Callable, Iterable

from repro.compilation.classes import DEFAULT_CLASS_MAP
from repro.machines.archclass import MachineClass
from repro.script.ast import (
    ApplicationDescription,
    Available,
    ChannelSpec,
    ChannelStmt,
    Compare,
    Condition,
    Directive,
    Expr,
    IntLit,
    ModuleDirective,
    PrioritySpec,
    SetVar,
    Stmt,
    VarRef,
)
from repro.util.errors import ScriptError

_OPS: dict[str, Callable[[int, int], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Environment:
    """Evaluation context for scripts.

    Args:
        available: machine-class → count of biddable machines (what
            ``AVAILABLE(...)`` reports). Pass the group directory's member
            counts or the machine database's class counts.
        variables: initial variable bindings (callers may predefine
            parameters; ``SET`` adds more).
    """

    def __init__(
        self,
        available: dict[MachineClass, int] | None = None,
        variables: dict[str, int] | None = None,
    ) -> None:
        self.available = dict(available or {})
        self.variables = dict(variables or {})

    def eval(self, expr: Expr) -> int:
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, VarRef):
            if expr.name not in self.variables:
                raise ScriptError(f"undefined variable {expr.name!r}")
            return self.variables[expr.name]
        if isinstance(expr, Available):
            return self.available.get(expr.machine_class, 0)
        if isinstance(expr, Compare):
            return int(_OPS[expr.op](self.eval(expr.left), self.eval(expr.right)))
        raise ScriptError(f"cannot evaluate {expr!r}")  # pragma: no cover


def task_name_from_path(path: str) -> str:
    """``/apps/snow/collector.vce`` → ``collector``."""
    base = posixpath.basename(path)
    return base[: -len(".vce")] if base.endswith(".vce") else base


def interpret(
    statements: Iterable[Stmt],
    env: Environment | None = None,
    name: str = "app",
    class_map=None,
) -> ApplicationDescription:
    """Evaluate a parsed script into an :class:`ApplicationDescription`."""
    env = env or Environment()
    class_map = class_map or DEFAULT_CLASS_MAP
    desc = ApplicationDescription(name)
    paths: dict[str, str] = {}  # path -> task name

    def add_module(directive: Directive) -> None:
        task = task_name_from_path(directive.path)
        if any(m.task == task for m in desc.modules):
            raise ScriptError(
                f"module {task!r} declared twice", line=directive.line
            )
        if directive.local:
            machine_class = None
        elif directive.machine_class is not None:
            machine_class = directive.machine_class
        else:
            assert directive.problem_class is not None
            machine_class = class_map[directive.problem_class][0]
        desc.modules.append(
            ModuleDirective(
                task=task,
                path=directive.path,
                machine_class=machine_class,
                problem_class=directive.problem_class,
                min_instances=directive.min_instances,
                max_instances=directive.max_instances,
            )
        )
        paths[directive.path] = task

    def run(body: Iterable[Stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, Directive):
                add_module(stmt)
            elif isinstance(stmt, ChannelStmt):
                src = paths.get(stmt.src_path)
                dst = paths.get(stmt.dst_path)
                if src is None or dst is None:
                    missing = stmt.src_path if src is None else stmt.dst_path
                    raise ScriptError(
                        f"CHANNEL references undeclared module {missing!r}",
                        line=stmt.line,
                    )
                desc.channels.append(ChannelSpec(stmt.name, src, dst, stmt.volume))
            elif isinstance(stmt, SetVar):
                env.variables[stmt.name] = env.eval(stmt.expr)
            elif isinstance(stmt, PrioritySpec):
                desc.priority = float(stmt.value)
            elif isinstance(stmt, Condition):
                run(stmt.then_body if env.eval(stmt.expr) else stmt.else_body)
            else:  # pragma: no cover - parser guarantees coverage
                raise ScriptError(f"unknown statement {stmt!r}")

    run(statements)
    if not desc.modules:
        raise ScriptError("script declares no modules")
    return desc
