"""The VCE application description language (§5).

The prototype's input is a script like the weather-forecasting example::

    ASYNC 2 "/apps/snow/collector.vce"
    WORKSTATION 1 "/apps/snow/usercollect.vce"
    SYNC 1 "/apps/snow/predictor.vce"
    LOCAL "/apps/snow/display.vce"

"As VCE development proceeds, the vocabulary supported in the application
description will become more powerful. For instance constructs like
'ASYNC 5-' to indicate five or less remote instances are required,
'SYNC 5,10' to indicate between five and 10 remote instances and so on.
Conditional statements and statements describing the communication
requirements of the application will also be added."

This package implements the full planned vocabulary:

- directives by problem class (``ASYNC``/``SYNC``/``LOOSESYNC``: the class
  is mapped to a machine class through the compilation manager's table) or
  directly by machine class (``WORKSTATION``/``SIMD``/``MIMD``/``VECTOR``),
  plus ``LOCAL``;
- instance-count forms ``N``, ``N-`` (at most N), ``N,M`` (between);
- ``CHANNEL name FROM "a" TO "b" [VOLUME n]`` communication requirements;
- ``IF <expr> THEN ... [ELSE ...] ENDIF`` conditionals with the
  ``AVAILABLE(CLASS)`` builtin and ``SET``-defined variables;
- ``PRIORITY n`` to set the application's base scheduling priority.
"""

from repro.script.lexer import Token, TokenKind, tokenize
from repro.script.ast import (
    ApplicationDescription,
    ChannelSpec,
    Condition,
    Directive,
    ModuleDirective,
    PrioritySpec,
    SetVar,
)
from repro.script.parser import parse_script
from repro.script.interp import Environment, interpret

__all__ = [
    "tokenize",
    "Token",
    "TokenKind",
    "parse_script",
    "interpret",
    "Environment",
    "ApplicationDescription",
    "ModuleDirective",
    "ChannelSpec",
    "Directive",
    "Condition",
    "SetVar",
    "PrioritySpec",
]
