"""Recursive-descent parser for the application description language.

Grammar::

    script    := stmt* EOF
    stmt      := directive | channel | setvar | priority | cond
    directive := CLASSWORD countspec? STRING | "LOCAL" STRING
    countspec := INT | INT "-" | INT "," INT
    channel   := "CHANNEL" WORD "FROM" STRING "TO" STRING ("VOLUME" INT)?
    setvar    := "SET" WORD "=" expr
    priority  := "PRIORITY" INT
    cond      := "IF" expr "THEN" stmt* ("ELSE" stmt*)? "ENDIF"
    expr      := term (COMPARE term)?
    term      := INT | "AVAILABLE" "(" CLASSWORD ")" | WORD

Keywords are case-insensitive; class words are ``ASYNC``, ``SYNC``,
``LOOSESYNC`` (problem classes) and ``WORKSTATION``, ``SIMD``, ``MIMD``,
``VECTOR`` (machine classes).
"""

from __future__ import annotations

from repro.machines.archclass import MachineClass
from repro.script.ast import (
    Available,
    ChannelStmt,
    Compare,
    Condition,
    Directive,
    Expr,
    IntLit,
    PrioritySpec,
    SetVar,
    Stmt,
    VarRef,
)
from repro.script.lexer import Token, TokenKind, tokenize
from repro.taskgraph.node import ProblemClass
from repro.util.errors import ScriptError

PROBLEM_CLASS_WORDS = {
    "ASYNC": ProblemClass.ASYNCHRONOUS,
    "SYNC": ProblemClass.SYNCHRONOUS,
    "LOOSESYNC": ProblemClass.LOOSELY_SYNCHRONOUS,
}
MACHINE_CLASS_WORDS = {m.value: m for m in MachineClass}
KEYWORDS = (
    set(PROBLEM_CLASS_WORDS)
    | set(MACHINE_CLASS_WORDS)
    | {"LOCAL", "CHANNEL", "FROM", "TO", "VOLUME", "SET", "PRIORITY",
       "IF", "THEN", "ELSE", "ENDIF", "AVAILABLE"}
)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def expect(self, kind: TokenKind, what: str) -> Token:
        token = self.next()
        if token.kind is not kind:
            raise ScriptError(
                f"expected {what}, got {token.text or token.kind.value!r}",
                line=token.line,
                column=token.column,
            )
        return token

    def keyword(self) -> str | None:
        token = self.peek()
        if token.kind is TokenKind.WORD and token.text.upper() in KEYWORDS:
            return token.text.upper()
        return None

    def expect_keyword(self, word: str) -> Token:
        token = self.next()
        if token.kind is not TokenKind.WORD or token.text.upper() != word:
            raise ScriptError(
                f"expected {word}, got {token.text!r}", line=token.line, column=token.column
            )
        return token

    # -- grammar -------------------------------------------------------------

    def script(self) -> list[Stmt]:
        body = self.stmt_list(stop={"__eof__"})
        self.expect(TokenKind.EOF, "end of script")
        return body

    def stmt_list(self, stop: set[str]) -> list[Stmt]:
        out: list[Stmt] = []
        while True:
            token = self.peek()
            if token.kind is TokenKind.EOF:
                return out
            word = self.keyword()
            if word in stop:
                return out
            out.append(self.stmt())

    def stmt(self) -> Stmt:
        word = self.keyword()
        token = self.peek()
        if word is None:
            raise ScriptError(
                f"expected a statement keyword, got {token.text!r}",
                line=token.line,
                column=token.column,
            )
        if word in PROBLEM_CLASS_WORDS or word in MACHINE_CLASS_WORDS or word == "LOCAL":
            return self.directive()
        if word == "CHANNEL":
            return self.channel()
        if word == "SET":
            return self.setvar()
        if word == "PRIORITY":
            return self.priority()
        if word == "IF":
            return self.cond()
        raise ScriptError(
            f"{word} cannot start a statement", line=token.line, column=token.column
        )

    def directive(self) -> Directive:
        token = self.next()
        word = token.text.upper()
        if word == "LOCAL":
            path = self.expect(TokenKind.STRING, "a quoted program path")
            return Directive(path=path.text, local=True, line=token.line)
        problem_class = PROBLEM_CLASS_WORDS.get(word)
        machine_class = MACHINE_CLASS_WORDS.get(word)
        lo, hi = self.countspec(token)
        path = self.expect(TokenKind.STRING, "a quoted program path")
        return Directive(
            path=path.text,
            problem_class=problem_class,
            machine_class=machine_class,
            min_instances=lo,
            max_instances=hi,
            line=token.line,
        )

    def countspec(self, directive_token: Token) -> tuple[int, int]:
        if self.peek().kind is not TokenKind.INT:
            return 1, 1  # "WORKSTATION \"path\"" defaults to one instance
        first = self.next().int_value
        if first < 1:
            raise ScriptError(
                "instance count must be >= 1",
                line=directive_token.line,
                column=directive_token.column,
            )
        if self.peek().kind is TokenKind.DASH:
            self.next()
            return 1, first  # "5-" = five or less
        if self.peek().kind is TokenKind.COMMA:
            self.next()
            second = self.expect(TokenKind.INT, "an upper instance count").int_value
            if second < first:
                raise ScriptError(
                    f"range {first},{second} is inverted",
                    line=directive_token.line,
                )
            return first, second  # "5,10" = between five and ten
        return first, first

    def channel(self) -> ChannelStmt:
        token = self.expect_keyword("CHANNEL")
        name = self.expect(TokenKind.WORD, "a channel name")
        self.expect_keyword("FROM")
        src = self.expect(TokenKind.STRING, "a source program path")
        self.expect_keyword("TO")
        dst = self.expect(TokenKind.STRING, "a destination program path")
        volume = 0
        if self.keyword() == "VOLUME":
            self.next()
            volume = self.expect(TokenKind.INT, "a byte count").int_value
        return ChannelStmt(name.text, src.text, dst.text, volume, line=token.line)

    def setvar(self) -> SetVar:
        token = self.expect_keyword("SET")
        name = self.expect(TokenKind.WORD, "a variable name")
        self.expect(TokenKind.EQUALS, "'='")
        return SetVar(name.text, self.expr(), line=token.line)

    def priority(self) -> PrioritySpec:
        token = self.expect_keyword("PRIORITY")
        value = self.expect(TokenKind.INT, "a priority value")
        return PrioritySpec(value.int_value, line=token.line)

    def cond(self) -> Condition:
        token = self.expect_keyword("IF")
        expr = self.expr()
        self.expect_keyword("THEN")
        then_body = self.stmt_list(stop={"ELSE", "ENDIF"})
        else_body: list[Stmt] = []
        if self.keyword() == "ELSE":
            self.next()
            else_body = self.stmt_list(stop={"ENDIF"})
        self.expect_keyword("ENDIF")
        return Condition(expr, tuple(then_body), tuple(else_body), line=token.line)

    def expr(self) -> Expr:
        left = self.term()
        if self.peek().kind is TokenKind.COMPARE:
            op = self.next().text
            right = self.term()
            return Compare(op, left, right)
        return left

    def term(self) -> Expr:
        token = self.next()
        if token.kind is TokenKind.INT:
            return IntLit(token.int_value)
        if token.kind is TokenKind.WORD:
            if token.text.upper() == "AVAILABLE":
                self.expect(TokenKind.LPAREN, "'('")
                cls = self.expect(TokenKind.WORD, "a machine class")
                word = cls.text.upper()
                if word in MACHINE_CLASS_WORDS:
                    machine_class = MACHINE_CLASS_WORDS[word]
                elif word in PROBLEM_CLASS_WORDS:
                    # AVAILABLE(SYNC) asks about the preferred machine class
                    from repro.compilation.classes import candidate_classes

                    machine_class = candidate_classes(PROBLEM_CLASS_WORDS[word])[0]
                else:
                    raise ScriptError(
                        f"unknown class {cls.text!r}", line=cls.line, column=cls.column
                    )
                self.expect(TokenKind.RPAREN, "')'")
                return Available(machine_class)
            return VarRef(token.text)
        raise ScriptError(
            f"expected an expression, got {token.text!r}",
            line=token.line,
            column=token.column,
        )


def parse_script(text: str) -> list[Stmt]:
    """Parse script text into a statement list."""
    return _Parser(tokenize(text)).script()
