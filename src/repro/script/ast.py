"""AST nodes and the interpreter's output description."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.machines.archclass import MachineClass
from repro.taskgraph.node import ProblemClass

# ------------------------------------------------------------------ AST


@dataclass(frozen=True, slots=True)
class Directive:
    """One module line, e.g. ``ASYNC 2 "/apps/snow/collector.vce"``.

    Exactly one of *problem_class* / *machine_class* is set for remote
    directives; both are None for ``LOCAL``.
    """

    path: str
    problem_class: ProblemClass | None = None
    machine_class: MachineClass | None = None
    min_instances: int = 1
    max_instances: int = 1
    local: bool = False
    line: int = 0


@dataclass(frozen=True, slots=True)
class ChannelStmt:
    """``CHANNEL name FROM "a" TO "b" [VOLUME n]``."""

    name: str
    src_path: str
    dst_path: str
    volume: int = 0
    line: int = 0


@dataclass(frozen=True, slots=True)
class SetVar:
    """``SET name = expr``."""

    name: str
    expr: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class PrioritySpec:
    """``PRIORITY n`` — the application's base scheduling priority."""

    value: int
    line: int = 0


@dataclass(frozen=True, slots=True)
class Condition:
    """``IF expr THEN ... [ELSE ...] ENDIF``."""

    expr: "Expr"
    then_body: tuple["Stmt", ...]
    else_body: tuple["Stmt", ...] = ()
    line: int = 0


Stmt = Union[Directive, ChannelStmt, SetVar, PrioritySpec, Condition]


# ------------------------------------------------------------- expressions


@dataclass(frozen=True, slots=True)
class IntLit:
    value: int


@dataclass(frozen=True, slots=True)
class VarRef:
    name: str


@dataclass(frozen=True, slots=True)
class Available:
    """``AVAILABLE(WORKSTATION)`` — biddable machines in the class."""

    machine_class: MachineClass


@dataclass(frozen=True, slots=True)
class Compare:
    op: str  # == != < <= > >=
    left: "Expr"
    right: "Expr"


Expr = Union[IntLit, VarRef, Available, Compare]


# ------------------------------------------------------ interpreter output


@dataclass(frozen=True, slots=True)
class ModuleDirective:
    """A resolved module: what the execution program requests."""

    task: str
    path: str
    machine_class: MachineClass | None  # None = LOCAL
    problem_class: ProblemClass | None
    min_instances: int
    max_instances: int


@dataclass(frozen=True, slots=True)
class ChannelSpec:
    name: str
    src_task: str
    dst_task: str
    volume: int


@dataclass
class ApplicationDescription:
    """The interpreter's output: everything the execution program needs."""

    name: str
    modules: list[ModuleDirective] = field(default_factory=list)
    channels: list[ChannelSpec] = field(default_factory=list)
    priority: float = 0.0

    def module(self, task: str) -> ModuleDirective:
        for module in self.modules:
            if module.task == task:
                return module
        raise KeyError(task)

    @property
    def local_modules(self) -> list[ModuleDirective]:
        return [m for m in self.modules if m.machine_class is None]

    @property
    def remote_modules(self) -> list[ModuleDirective]:
        return [m for m in self.modules if m.machine_class is not None]
