"""repro — a reproduction of "The Virtual Computing Environment".

Rousselle, Tymann, Hariri, and Fox; Northeast Parallel Architectures
Center, Syracuse University; HPDC 1994.

The package implements the complete VCE stack over a deterministic
discrete-event cluster simulator: task graphs and the three SDM layers, an
Isis-style virtual-synchrony toolkit, channels/ports with interposition and
redirection, a vMPI message-passing library, IDL-generated object proxies,
the compilation manager with anticipatory compilation, the Figure-3 bidding
scheduler with group leaders and priority aging, the runtime manager, four
process-migration schemes, load-balancing policies, fault injection, the
application description script language, and the workloads and metrics used
by the benchmark suite.

Start with :class:`repro.core.VirtualComputingEnvironment`.
"""

from repro.core import (
    VCEConfig,
    VirtualComputingEnvironment,
    heterogeneous_cluster,
    multi_site_cluster,
    workstation_cluster,
)

__version__ = "1.0.0"

__all__ = [
    "VirtualComputingEnvironment",
    "VCEConfig",
    "workstation_cluster",
    "heterogeneous_cluster",
    "multi_site_cluster",
    "__version__",
]
