"""Command-line interface.

Usage (also via ``python -m repro``):

    repro describe SCRIPT.vce
        Parse and interpret an application description script; print the
        resolved modules, instance ranges, and channels.

    repro run SCRIPT.vce [--cluster SPEC] [--seed N] [--default-work W]
                         [--anticipatory] [--policy NAME] [--verbose]
        Boot a simulated VCE, run the script, print placement and metrics.
        Unknown modules get a generic compute program of --default-work
        units; module names matching the built-in weather programs
        (collector/usercollect/predictor/display) use those.

    repro demo {weather,montecarlo,stencil,pipeline}
        Run a built-in workload end to end and print the results.

    repro lint TARGET... [--cluster SPEC] [--json] [--strict]
    repro lint --det PATH... [--baseline FILE] [--json] [--strict]
    repro lint --hb RUN_DIR... [--json] [--strict]
        Static analysis (see repro.analysis and docs/ANALYSIS.md). The
        first form verifies task graphs before any dispatch: a TARGET is
        a .vce script (interpreted against --cluster / --cluster-file)
        or a .py file defining build_graph(); findings cover structure
        (cycles, dangling arcs), channel/protocol misuse, SDM annotation
        problems, and problem-class -> machine-class infeasibility.
        The second form runs the determinism linter over Python sources
        (wall-clock calls, unseeded randomness, unordered-set iteration
        in scheduling paths). The third form replays saved run
        directories (--save-run / POST /api/snapshot) through the
        protocol conformance FSMs (P001-P003). Exit status: 1 if any
        error-severity finding (or, with --strict, any finding at all),
        else 0.

    repro sanitize [SCENARIO...] [--backend B] [--shards N] [--seed N]
                   [--shuffles K] [--baseline FILE] [--json PATH]
        Happens-before race sanitizer (see docs/ANALYSIS.md): runs each
        scenario with the HB tracker + protocol monitor attached, then
        re-runs it K times with seeded permutations of same-timestamp
        ties and classifies every candidate race as real (outcome digest
        diverges under reorder -> error) or benign (digest-stable ->
        warning). Also runs the static FSM/code drift check (P005).
        Default scenarios: all of repro.analysis.sanitize.SCENARIOS —
        the golden determinism workloads plus the injected-race
        self-test fixture. Exit status: 1 on any unsuppressed finding.

    repro chaos SCRIPT.vce [run options] [--schedule NAME] [--fault-seed N]
        Run a script under a named fault schedule with the fault-tolerant
        execution layer on (reliable transport + lease-based failover):
        daemons crash and reboot, messages drop, partitions open and heal.
        Prints the run outcome plus injected-fault and recovery-action
        counts from the telemetry registry. Schedules: see
        repro.faults.SCHEDULES (default chaos-mix). SCRIPT may also be a
        saved run directory (see --save-run / POST /api/snapshot): the
        fault and recovery counts are then read from the saved log.

    repro trace SCRIPT.vce [run options] [--export PATH]
        Run a script exactly like ``repro run``, then reconstruct the
        causal trace: per-application critical path with time attributed
        to comms / queue-wait / compute / migration, plus the pre-submit
        allocation phase. --export writes Chrome trace-event JSON
        (load it in chrome://tracing or Perfetto). SCRIPT may also be a
        saved run directory: traces are reconstructed from the saved log
        without re-running anything.

    repro top SCRIPT.vce [run options] [--snapshot] [--refresh S]
                         [--frames N] [--json PATH] [--prom PATH]
        Run a script and render live-telemetry frames: per-host load /
        queue / in-flight gauges with sparkline histories, task duration
        quantiles, scheduler and network totals, and active health
        events. --snapshot prints one frame after completion; otherwise
        a frame prints every --refresh simulated seconds. --json writes
        the shared metrics+health snapshot (the same schema the control
        plane's /api/metrics serves); --prom writes Prometheus text.

    repro serve [SCRIPT.vce | --workload NAME] [run options] [--port N]
                [--bind ADDR] [--pace R] [--slice S] [--failover]
                [--exit-when-done] [--max-wall S]
        Boot a cluster, start the live control plane (dashboard at /,
        SSE stream at /events, WebSocket at /ws, control API under
        /api/), and drive the simulation in slices while streaming
        entity events. --pace R advances R simulated seconds per wall
        second (0 = as fast as possible). Works on either simulation
        backend (--backend serial|sharded).

    repro bench [--quick] [--backend {serial,sharded}] [--shards N]
                [--json PATH] [--check] [--baseline FILE] [--tolerance F]
        Measure kernel/scheduler throughput on the canonical workloads
        (random DAGs, stencil, chaos-mix soak): events/sec, dispatch
        latency per task, scheduler event share, and the replay digest.
        --check gates on the machine-normalized events/sec ratio against
        a baseline (default BENCH_kernel.json, >25% drop fails) — the CI
        perf-smoke job runs ``repro bench --quick --check``. With
        --backend sharded, --check instead requires every replay digest
        to be byte-identical to the serial baseline's (backend
        invariance; see docs/PARALLELISM.md) and gates engine overhead
        against a serial suite measured in the same process; ratios vs
        the baseline's "sharded" section are advisory.

Cluster SPEC: ``ws:N`` for N workstations, or ``hetero:W,M,S`` for W
workstations + M MIMD + S SIMD machines (default ``hetero:6,2,1``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable

from repro.core import VCEConfig, VirtualComputingEnvironment, heterogeneous_cluster, workstation_cluster
from repro.metrics import format_table
from repro.scheduler import (
    load_sorted_assignment,
    random_assignment,
    round_robin_assignment,
    utilization_first_assignment,
)
from repro.scheduler.execution_program import AppRun, RunState
from repro.script import interpret, parse_script
from repro.script.interp import Environment
from repro.util.errors import VCEError
from repro.vmpi import Compute

POLICIES = {
    "load": load_sorted_assignment,
    "random": random_assignment,
    "round-robin": round_robin_assignment,
    "utilization-first": utilization_first_assignment,
}


def _parse_cluster(spec: str):
    kind, _, rest = spec.partition(":")
    if kind == "ws":
        return workstation_cluster(int(rest or "6"))
    if kind == "hetero":
        parts = [int(x) for x in (rest or "6,2,1").split(",")]
        while len(parts) < 3:
            parts.append(0)
        return heterogeneous_cluster(parts[0], parts[1], parts[2])
    raise ValueError(f"unknown cluster spec {spec!r} (use ws:N or hetero:W,M,S)")


def _generic_program(work: float) -> Callable:
    def program(ctx):
        yield Compute(work)
        return f"{ctx.task}[{ctx.rank}] ok"

    return program


def _program_registry(tasks: list[str], default_work: float) -> dict[str, Callable]:
    from repro.workloads import weather_programs

    builtin = weather_programs()
    out: dict[str, Callable] = {}
    for task in tasks:
        out[task] = builtin.get(task, _generic_program(default_work))
    return out


def _print_run(run: AppRun, vce: VirtualComputingEnvironment, out) -> None:
    print(f"state: {run.state.value}", file=out)
    if run.error:
        print(f"error: {run.error}", file=out)
    if run.placement is not None:
        rows = [
            [f"{task}[{rank}]", machine]
            for (task, rank), machine in sorted(run.placement.assignments.items())
        ]
        print(format_table(["instance", "machine"], rows, title="placement"), file=out)
    if run.allocation_latency is not None:
        print(f"allocation latency: {run.allocation_latency:.4f}s", file=out)
    if run.app is not None and run.app.makespan is not None:
        print(f"makespan: {run.app.makespan:.2f}s", file=out)
    totals = vce.metrics().message_totals()
    print(
        f"network: {totals.get('sent', 0)} messages, "
        f"{totals.get('bytes', 0):,} bytes", file=out
    )


def cmd_describe(args: argparse.Namespace, out) -> int:
    text = open(args.script).read()
    description = interpret(
        parse_script(text),
        Environment(variables=dict(args.var or {})),
        name=args.script,
    )
    rows = [
        [
            m.task,
            m.path,
            "LOCAL" if m.machine_class is None else m.machine_class.value,
            f"{m.min_instances}..{m.max_instances}",
        ]
        for m in description.modules
    ]
    print(format_table(["module", "path", "target", "instances"], rows), file=out)
    if description.channels:
        crows = [[c.name, c.src_task, c.dst_task, c.volume] for c in description.channels]
        print(format_table(["channel", "from", "to", "volume"], crows), file=out)
    if description.priority:
        print(f"priority: {description.priority}", file=out)
    return 0


def _boot_vce(
    args: argparse.Namespace, **config_overrides
) -> VirtualComputingEnvironment:
    """Build and boot the simulated cluster a run-style subcommand asked for."""
    wan = None
    if args.cluster_file:
        from repro.core import load_cluster_file

        machines, wan = load_cluster_file(args.cluster_file, seed=args.seed)
    else:
        machines = _parse_cluster(args.cluster)
    return VirtualComputingEnvironment(
        machines,
        VCEConfig(
            seed=args.seed,
            anticipatory=args.anticipatory,
            wan_latency=wan,
            **config_overrides,
        ),
    ).boot()


def _launch_script(vce: VirtualComputingEnvironment, args: argparse.Namespace) -> AppRun:
    """Parse args.script and submit it (built-in or generic programs)."""
    text = open(args.script).read()
    description = vce.describe_script(text, variables=dict(args.var or {}))
    programs = _program_registry([m.task for m in description.modules], args.default_work)
    return vce.run_script(
        text,
        programs,
        works={m.task: args.default_work for m in description.modules},
        policy=POLICIES[args.policy],
        name=args.script,
    )


def cmd_run(args: argparse.Namespace, out) -> int:
    vce = _boot_vce(args)
    run = _launch_script(vce, args)
    vce.run_to_completion(run, timeout=args.timeout)
    _print_run(run, vce, out)
    _maybe_save_run(vce, args, out)
    if args.gantt:
        from repro.metrics import build_timeline, render_gantt

        spans = build_timeline(vce.sim.log, horizon=vce.sim.now)
        print("\ntimeline ('#' running, 's' suspended, 'x' down):", file=out)
        print(render_gantt(spans, vce.sim.now), file=out)
    return 0 if run.state is RunState.DONE else 1


def _load_run_dir_or_exit(path: str, out) -> "object | None":
    """Load a saved run directory; on truncation print a friendly error
    (no traceback) and return None so the caller can exit 1."""
    from repro.controlplane import TruncatedRunError, load_run_dir

    try:
        return load_run_dir(path)
    except TruncatedRunError as err:
        print(f"error: {err}", file=sys.stderr)
        print(
            "hint: the run directory looks incomplete — re-save it with "
            "--save-run or POST /api/snapshot on a live control plane",
            file=sys.stderr,
        )
        return None


def _maybe_save_run(vce: VirtualComputingEnvironment, args: argparse.Namespace, out) -> None:
    if getattr(args, "save_run", None):
        from repro.controlplane import save_run_dir

        save_run_dir(vce, args.save_run)
        print(f"saved run directory to {args.save_run}", file=out)


def _print_traces(log, makespans: dict, args: argparse.Namespace, out) -> None:
    from repro.trace import TraceAssembler, critical_path, export_chrome_trace

    traces = TraceAssembler(log).assemble()
    for trace in traces:
        path = critical_path(trace)
        if path is None:
            continue
        print(
            f"\ntrace {trace.trace_id}: app {path.app}, "
            f"makespan {path.makespan:.4f}s "
            f"(collector: {makespans.get(path.app, float('nan')):.4f}s)",
            file=out,
        )
        rows = [
            [seg.kind, f"{seg.start:.4f}", f"{seg.end:.4f}", f"{seg.duration:.4f}", seg.span]
            for seg in path.segments
        ]
        print(
            format_table(
                ["kind", "start", "end", "duration", "span"],
                rows,
                title="critical path",
            ),
            file=out,
        )
        totals = sorted(path.by_kind().items(), key=lambda kv: -kv[1])
        summary = ", ".join(f"{kind} {secs:.4f}s" for kind, secs in totals)
        print(f"attribution: {summary}", file=out)
        print(f"path total: {path.total:.4f}s (= makespan)", file=out)
        if path.allocation:
            alloc = ", ".join(
                f"{seg.kind} {seg.duration:.4f}s" for seg in path.allocation
            )
            print(f"allocation phase (pre-submit): {alloc}", file=out)
    if not traces:
        print("no traces recorded", file=out)
    if args.export:
        export_chrome_trace(traces, args.export)
        print(f"\nwrote Chrome trace-event JSON to {args.export}", file=out)


def cmd_trace(args: argparse.Namespace, out) -> int:
    if os.path.isdir(args.script):
        log = _load_run_dir_or_exit(args.script, out)
        if log is None:
            return 1
        from repro.controlplane import load_manifest

        manifest = load_manifest(args.script)
        print(
            f"run directory {args.script}: {manifest.get('records', len(log))} "
            f"records, t={manifest.get('time', 0.0)}", file=out,
        )
        _print_traces(log, {}, args, out)
        return 0

    vce = _boot_vce(args)
    run = _launch_script(vce, args)
    vce.run_to_completion(run, timeout=args.timeout)
    print(f"state: {run.state.value}", file=out)
    if run.error:
        print(f"error: {run.error}", file=out)
    _print_traces(vce.sim.log, vce.metrics().app_makespans(), args, out)
    _maybe_save_run(vce, args, out)
    return 0 if run.state is RunState.DONE else 1


def cmd_top(args: argparse.Namespace, out) -> int:
    from repro.telemetry import write_prometheus

    vce = _boot_vce(args)
    telemetry = vce.telemetry
    assert telemetry is not None  # VCEConfig.telemetry defaults on
    run = _launch_script(vce, args)
    terminal = (RunState.DONE, RunState.FAILED)
    if args.snapshot:
        vce.run_to_completion(run, timeout=args.timeout)
        print(telemetry.render(), file=out)
    else:
        deadline = vce.sim.now + args.timeout
        frame = 0
        while True:
            vce.sim.run(
                until=min(vce.sim.now + args.refresh, deadline),
                stop_when=lambda: run.state in terminal,
            )
            frame += 1
            print(telemetry.render(title=f"repro top [frame {frame}]"), file=out)
            print(file=out)
            if (
                run.state in terminal
                or vce.sim.now >= deadline
                or (args.frames and frame >= args.frames)
            ):
                break
    if args.json:
        # the shared metrics+health schema (watchdog rule states included,
        # host_down/stranded and all): identical to GET /api/metrics on
        # the control plane, so dashboards and scripts parse one format
        import json as _json

        with open(args.json, "w") as fh:
            _json.dump(telemetry.snapshot(), fh, indent=2, default=str)
            fh.write("\n")
        print(f"wrote JSON snapshot to {args.json}", file=out)
    if args.prom:
        write_prometheus(telemetry.registry, args.prom)
        print(f"wrote Prometheus text to {args.prom}", file=out)
    _maybe_save_run(vce, args, out)
    print(f"state: {run.state.value}", file=out)
    return 0 if run.state is RunState.DONE else 1


def _counter_by_label(registry, name: str) -> dict[str, float]:
    """label-value -> count for a labelled counter family ("" when bare)."""
    family = registry.get(name)
    if family is None:
        return {}
    return {
        ("/".join(values) if values else ""): child.value
        for values, child in family.samples()
    }


def cmd_chaos(args: argparse.Namespace, out) -> int:
    from repro.migration.failover import FailoverConfig

    if os.path.isdir(args.script):
        log = _load_run_dir_or_exit(args.script, out)
        if log is None:
            return 1
        from repro.controlplane import load_manifest

        manifest = load_manifest(args.script)
        print(
            f"run directory {args.script}: {manifest.get('records', len(log))} "
            f"records, t={manifest.get('time', 0.0)}", file=out,
        )
        counts = log.category_counts()
        injected = {
            cat.split(".", 1)[1]: n
            for cat, n in sorted(counts.items())
            if cat.startswith("fault.") and cat != "fault.schedule"
        }
        recovery = {
            cat.split(".", 1)[1]: n
            for cat, n in sorted(counts.items())
            if cat.startswith("recovery.")
        }
        injected_s = "  ".join(f"{k}={n}" for k, n in injected.items()) or "(none)"
        recovery_s = "  ".join(f"{k}={n}" for k, n in recovery.items()) or "(none)"
        print(f"injected faults: {injected_s}", file=out)
        print(f"recovery actions: {recovery_s}", file=out)
        return 0

    vce = _boot_vce(args, reliable_transport=True, failover=FailoverConfig())
    fault_seed = args.seed if args.fault_seed is None else args.fault_seed
    controller = vce.chaos(args.schedule, seed=fault_seed)
    run = _launch_script(vce, args)
    vce.run_to_completion(run, timeout=args.timeout)
    # drain any trailing fault windows so close events land in the log
    _print_run(run, vce, out)

    assert vce.telemetry is not None  # VCEConfig.telemetry defaults on
    registry = vce.telemetry.registry
    injected = _counter_by_label(registry, "faults_injected_total")
    recovery = _counter_by_label(registry, "recovery_actions_total")
    print(
        f"\nschedule: {args.schedule} (fault seed {fault_seed}, "
        f"{len(controller.schedule or [])} actions)",
        file=out,
    )
    injected_s = (
        "  ".join(f"{k}={int(v)}" for k, v in sorted(injected.items())) or "(none)"
    )
    recovery_s = (
        "  ".join(f"{k}={int(v)}" for k, v in sorted(recovery.items())) or "(none)"
    )
    print(f"injected faults: {injected_s}", file=out)
    print(f"recovery actions: {recovery_s}", file=out)
    net = vce.network
    print(
        f"transport: {net.retransmissions} retransmits, "
        f"{net.duplicates_dropped} duplicates absorbed, "
        f"{net.messages_lost} abandoned",
        file=out,
    )
    if vce.failover is not None:
        stranded = vce.failover.stranded()
        if stranded:
            print(f"still stranded: {stranded}", file=out)
    _maybe_save_run(vce, args, out)
    return 0 if run.state is RunState.DONE else 1


def _lint_graph_target(target: str, compilation, variables, default_work: float):
    """Build the task graph a lint TARGET describes and verify it."""
    from repro.analysis import verify_graph
    from repro.core import materialize_description
    from repro.script.interp import Environment as ScriptEnvironment

    if target.endswith(".py"):
        import importlib.util

        spec = importlib.util.spec_from_file_location(f"_lint_{abs(hash(target))}", target)
        if spec is None or spec.loader is None:
            raise VCEError(f"cannot import graph module {target!r}")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        builder = getattr(module, "build_graph", None)
        if not callable(builder):
            raise VCEError(f"{target!r} defines no build_graph() function")
        graph = builder()
    else:
        text = open(target).read()
        description = interpret(
            parse_script(text),
            ScriptEnvironment(compilation.database.class_counts(), variables),
            name=target,
        )
        programs = {m.task: _generic_program(default_work) for m in description.modules}
        graph, _, _ = materialize_description(description, programs)
    report = verify_graph(graph, compilation=compilation)
    report.subject = f"{target} (graph {graph.name!r})"
    return report


def cmd_lint(args: argparse.Namespace, out) -> int:
    import json

    if args.hb:
        from repro.analysis import check_records
        from repro.analysis.report import AnalysisReport

        reports = []
        for target in args.targets:
            log = _load_run_dir_or_exit(target, out)
            if log is None:
                return 1
            report = AnalysisReport(subject=f"{target} (protocol conformance)")
            report.extend(check_records(list(log)))
            reports.append(report)
    elif args.det:
        from repro.analysis import lint_paths

        reports = [lint_paths(args.targets, baseline=args.baseline)]
    else:
        from repro.compilation.manager import CompilationManager
        from repro.machines.database import MachineDatabase

        if args.cluster_file:
            from repro.core import load_cluster_file

            machines, _ = load_cluster_file(args.cluster_file)
        else:
            machines = _parse_cluster(args.cluster)
        database = MachineDatabase()
        for machine in machines:
            database.register(machine)
        compilation = CompilationManager(database)
        variables = dict(args.var or {})
        reports = [
            _lint_graph_target(target, compilation, variables, args.default_work)
            for target in args.targets
        ]
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2), file=out)
    else:
        print("\n\n".join(r.render_text() for r in reports), file=out)
    return max(r.exit_code(strict=args.strict) for r in reports)


def cmd_sanitize(args: argparse.Namespace, out) -> int:
    import json as _json
    from pathlib import Path

    import repro
    from repro.analysis.protocol import check_protocol_sources
    from repro.analysis.report import AnalysisReport
    from repro.analysis.sanitize import SCENARIOS, sanitize_scenario

    names = args.scenarios or sorted(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(
            f"error: unknown scenario(s) {', '.join(unknown)} "
            f"(expected: {', '.join(sorted(SCENARIOS))})",
            file=sys.stderr,
        )
        return 2
    results = [
        sanitize_scenario(
            name,
            seed=args.seed,
            backend=args.backend,
            shards=args.shards,
            shuffles=args.shuffles,
            baseline=args.baseline,
        )
        for name in names
    ]
    combined = AnalysisReport(subject=f"sanitize ({args.backend}, seed {args.seed})")
    static_findings = []
    if not args.no_static:
        static_findings = check_protocol_sources(Path(repro.__file__).parent)
        combined.extend(static_findings)
    for result in results:
        combined.merge(result.report)
    for result in results:
        shuffled = len(result.shuffle_runs)
        diverged = sum(1 for r in result.shuffle_runs if r["diverged"])
        print(
            f"{result.scenario}[{result.backend}]: {result.classification} — "
            f"{result.races} race(s), {result.suppressed} suppressed, "
            f"{diverged}/{shuffled} shuffles diverged",
            file=out,
        )
    print(combined.render_text(), file=out)
    if args.json:
        payload = {
            "backend": args.backend,
            "seed": args.seed,
            "shuffles": args.shuffles,
            "scenarios": [r.to_dict() for r in results],
            "static": [f.to_dict() for f in static_findings],
            "errors": len(combined.errors),
            "warnings": len(combined.warnings),
        }
        Path(args.json).write_text(_json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}", file=out)
    return combined.exit_code(strict=True)


def cmd_demo(args: argparse.Namespace, out) -> int:
    vce = VirtualComputingEnvironment(
        heterogeneous_cluster(), VCEConfig(seed=args.seed)
    ).boot()
    if args.workload == "weather":
        from repro.workloads import WEATHER_SCRIPT, weather_programs

        run = vce.run_script(WEATHER_SCRIPT, weather_programs(), name="weather")
    elif args.workload == "montecarlo":
        from repro.workloads import build_monte_carlo_graph
        from repro.machines import MachineClass

        graph = build_monte_carlo_graph(workers=4)
        run = vce.submit(graph, class_map={"worker": MachineClass.WORKSTATION})
    elif args.workload == "stencil":
        from repro.workloads import build_stencil_graph
        from repro.machines import MachineClass

        graph = build_stencil_graph(ranks=4, cells=64, iterations=10)
        run = vce.submit(graph, class_map={"grid": MachineClass.WORKSTATION})
    else:  # pipeline
        from repro.workloads import build_pipeline_graph

        run = vce.submit(build_pipeline_graph(stages=4))
    vce.run_to_completion(run, timeout=args.timeout)
    _print_run(run, vce, out)
    if run.app is not None and run.state is RunState.DONE:
        for node in run.app.graph:
            results = run.app.results(node.name)
            preview = str(results[0])
            if len(preview) > 60:
                preview = preview[:57] + "..."
            print(f"result {node.name}: {preview}", file=out)
    return 0 if run.state is RunState.DONE else 1


def cmd_bench(args: argparse.Namespace, out) -> int:
    import json as _json
    from pathlib import Path

    from repro.bench import (
        check_against_baseline,
        check_backend_parity,
        check_sharded_overhead,
        run_suite,
    )

    if args.baseline is None:
        args.baseline = (
            "BENCH_scale.json" if args.suite == "scale" else "BENCH_kernel.json"
        )
    if args.suite == "scale":
        return _bench_scale(args, out)
    suite = run_suite(
        quick=args.quick,
        pump_events=args.pump_events,
        backend=args.backend,
        shards=args.shards,
    )
    label = args.backend if args.backend == "serial" else f"sharded x{args.shards}"
    rows = [
        [
            name,
            f"{r['events_per_sec']:,.0f}",
            f"{r['normalized_ratio']:.4f}",
            f"{r['dispatch_ms_per_instance']:.3f}",
            f"{r['sched_event_share'] * 100:.1f}%",
            f"{r['sim_events']:,}",
            r["digest"][:12],
        ]
        for name, r in suite["workloads"].items()
    ]
    print(
        format_table(
            ["workload", "events/s", "ratio", "ms/task", "sched share", "events", "digest"],
            rows,
            title=(
                f"kernel bench ({suite['mode']}, {label}, "
                f"pump {suite['pump_events_per_sec']:,.0f} ev/s)"
            ),
        ),
        file=out,
    )
    if args.json:
        Path(args.json).write_text(_json.dumps(suite, indent=2) + "\n")
        print(f"wrote {args.json}", file=out)
    if args.check:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"error: baseline {args.baseline} not found", file=sys.stderr)
            return 2
        baseline = _json.loads(baseline_path.read_text())
        # BENCH_kernel.json stores one section per mode; the sharded
        # backend has its own ratcheted sections under "sharded"
        serial_section = baseline.get(suite["mode"], baseline)
        failures: list[str] = []
        if args.backend == "sharded":
            failures += check_backend_parity(suite, serial_section)
            # Throughput is gated against a serial suite run in this
            # same process (noise cancels out of the ratio); the
            # checked-in sharded ratios are advisory only — a quick
            # suite's run-to-run noise on a busy machine exceeds any
            # tolerance tight enough to catch real regressions.
            serial_suite = run_suite(
                quick=args.quick, pump_events=args.pump_events
            )
            failures += check_sharded_overhead(suite, serial_suite)
            sharded_section = baseline.get("sharded", {}).get(suite["mode"])
            if sharded_section is not None:
                for drift in check_against_baseline(
                    suite, sharded_section, tolerance=args.tolerance
                ):
                    if "event count" in drift:
                        failures.append(drift)
                    else:
                        print(f"note (advisory): {drift}", file=out)
            else:
                print(
                    f"note: no sharded/{suite['mode']} baseline section; "
                    "digest parity checked, ratios not gated",
                    file=out,
                )
        else:
            failures += check_against_baseline(
                suite, serial_section, tolerance=args.tolerance
            )
        for failure in failures:
            print(f"REGRESSION: {failure}", file=out)
        if failures:
            return 1
        print(f"perf check passed ({suite['mode']}, {label} vs {args.baseline})", file=out)
    return 0


def _bench_scale(args: argparse.Namespace, out) -> int:
    """``repro bench --suite scale``: soak scenarios + scale-conformance gate."""
    import json as _json
    from pathlib import Path

    from repro.bench import check_scale_baseline, check_scale_suite, run_scale_suite

    suite = run_scale_suite(quick=args.quick, shards=args.shards)
    rows = [
        [
            name,
            f"{r['machines']}/{r['fanout']}",
            f"{r['admitted']}",
            f"{r['peak_live_instances']:,}",
            f"{r['bid_fanout_per_round']:.1f}",
            f"{r['sched_event_share'] * 100:.1f}%",
            f"{r['wall_seconds']:.1f}s",
            r["digest"][:12],
        ]
        for name, r in suite["scenarios"].items()
        if "completed" in r
    ]
    print(
        format_table(
            ["scenario", "mach/fan", "apps", "peak live", "fan-out/rd", "sched share", "wall", "digest"],
            rows,
            title=(
                f"scale bench ({suite['mode']}, "
                f"fan-out reduction {suite['fanout_reduction']:.2f}x)"
            ),
        ),
        file=out,
    )
    if args.json:
        Path(args.json).write_text(_json.dumps(suite, indent=2) + "\n")
        print(f"wrote {args.json}", file=out)
    if args.check:
        baseline_path = Path(args.baseline)
        if baseline_path.exists():
            baseline = _json.loads(baseline_path.read_text())
            section = baseline.get(suite["mode"], {})
            failures = check_scale_baseline(suite, section)
        else:
            print(
                f"note: baseline {args.baseline} not found; "
                "checking self-contained invariants only",
                file=out,
            )
            failures = check_scale_suite(suite)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=out)
        if failures:
            return 1
        print(f"scale check passed ({suite['mode']})", file=out)
    return 0


def cmd_soak(args: argparse.Namespace, out) -> int:
    import json as _json
    from pathlib import Path

    from repro.soak import SoakConfig, run_soak

    kw: dict = dict(
        tenants=args.tenants,
        apps=args.apps,
        machines=args.machines,
        fanout=args.fanout,
        seed=args.seed,
        backend=args.backend,
        shards=args.shards,
        chaos=args.chaos,
    )
    if args.arrival_span is not None:
        kw["arrival_span"] = args.arrival_span
    if args.instances is not None:
        kw["instances"] = args.instances
    if args.work is not None:
        kw["work"] = args.work
    cfg = SoakConfig(**kw)
    vce, driver, report = run_soak(cfg)
    tenants = report.tenants
    held_waits = report.max_admission_wait
    rows = [
        [
            name,
            f"{t['quota']}",
            f"{t['priority']:+.0f}",
            f"{t['apps_admitted']}/{t['apps_submitted']}",
            f"{t['apps_completed']}",
            f"{t['peak_admitted']:,}",
            f"{t['denials']}",
        ]
        for name, t in sorted(tenants.items())[: args.top]
    ]
    print(
        format_table(
            ["tenant", "quota", "prio", "admitted", "done", "peak inst", "held"],
            rows,
            title=(
                f"soak: {report.config_tenants} tenants, "
                f"{report.submitted} apps on {report.machines} machines "
                f"(fanout {report.fanout}, {report.backend})"
            ),
        ),
        file=out,
    )
    print(
        f"completed {report.completed}/{report.admitted} admitted "
        f"({report.held} held at quota, max wait {held_waits:.0f}s), "
        f"peak {report.peak_live_instances:,} live / "
        f"{report.peak_admitted_instances:,} admitted instances",
        file=out,
    )
    print(
        f"bidding: {report.requests_led} rounds, "
        f"{report.bid_fanout_per_round:.1f} members polled/round "
        f"({report.delegations} delegations, {report.escalations} escalations), "
        f"sched event share {report.sched_event_share * 100:.1f}%",
        file=out,
    )
    print(
        f"makespan {report.makespan:,.0f}s sim, {report.events:,} log records, "
        f"{report.net_messages:,} messages, digest {report.digest[:16]}",
        file=out,
    )
    if args.json:
        Path(args.json).write_text(_json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"wrote {args.json}", file=out)
    ok = report.failed == 0 and report.completed == report.admitted
    return 0 if ok else 1


def cmd_serve(args: argparse.Namespace, out) -> int:
    import asyncio

    from repro.controlplane import ControlPlaneServer, ServeSession
    from repro.netsim.pacing import WallClockPacer

    if args.backend == "network":
        return _cmd_serve_network(args, out)
    overrides: dict = {"backend": args.backend, "shards": args.shards}
    if args.failover:
        from repro.migration.failover import FailoverConfig

        overrides.update(reliable_transport=True, failover=FailoverConfig())
    vce = _boot_vce(args, **overrides)
    session = ServeSession(
        vce, slice_seconds=args.slice, pacer=WallClockPacer(args.pace)
    )
    if args.script:
        session.track(_launch_script(vce, args))
    elif args.workload:
        session.submit(
            args.workload,
            layers=args.layers,
            width=args.width,
            ranks=args.ranks,
            iterations=args.iterations,
        )
    server = ControlPlaneServer(session, host=args.bind, port=args.port)

    async def _main() -> None:
        await server.start()
        print(
            f"control plane on http://{args.bind}:{server.port}/ "
            f"(SSE /events, WebSocket /ws, API /api/) — "
            f"backend {args.backend}, pace {args.pace or 'free-run'}",
            file=out,
            flush=True,
        )
        await server.run(
            exit_when_done=args.exit_when_done, max_wall=args.max_wall
        )

    asyncio.run(_main())
    stats = session.hub.stats()
    print(
        f"stopped at t={vce.sim.now:.1f}s after {session.slices} slices; "
        f"hub published {stats['published']} events",
        file=out,
    )
    _maybe_save_run(vce, args, out)
    return 0


def _cmd_serve_network(args: argparse.Namespace, out) -> int:
    """``repro serve --backend network``: the 3-process parity quickstart."""
    from repro.netexec.frames import WorkloadSpec
    from repro.netexec.quickstart import default_workload, run_quickstart

    if args.workload not in (None, "randomdag"):
        print(
            f"--backend network runs the randomdag quickstart; "
            f"--workload {args.workload} is not supported (see docs/NETWORK.md)",
            file=out,
        )
        return 2
    # one instance per machine at allocation time: size the chain to the
    # daemon count so the sim reference stays allocatable (docs/NETWORK.md)
    workload = WorkloadSpec(
        kind="randomdag",
        kwargs=(
            ("layers", min(args.layers, args.processes)), ("width", 1),
            ("seed", args.seed), ("min_work", 1.0), ("max_work", 4.0),
        ),
    ) if args.workload else default_workload(args.seed, args.processes)
    timeout = args.max_wall if args.max_wall else 120.0
    print(
        f"network backend: {args.processes} daemon processes on localhost, "
        f"rate {args.rate} sim-s/wall-s",
        file=out,
        flush=True,
    )
    report = run_quickstart(
        machines=args.processes,
        seed=args.seed,
        rate=args.rate,
        timeout=timeout,
        workload=workload,
    )
    print(report.render(), file=out)
    return 0 if report.ok else 1


def _kv(pair: str) -> tuple[str, int]:
    key, _, value = pair.partition("=")
    return key, int(value)


def _int_pair(text: str) -> tuple[int, int]:
    lo, _, hi = text.partition(",")
    return int(lo), int(hi)


def _float_pair(text: str) -> tuple[float, float]:
    lo, _, hi = text.partition(",")
    return float(lo), float(hi)


def _add_run_options(parser: argparse.ArgumentParser, script_optional: bool = False) -> None:
    if script_optional:
        parser.add_argument("script", nargs="?", default=None)
    else:
        parser.add_argument("script")
    parser.add_argument("--cluster", default="hetero:6,2,1")
    parser.add_argument(
        "--cluster-file",
        help="JSON cluster specification (see repro.core.spec); overrides --cluster",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--default-work", type=float, default=10.0)
    parser.add_argument("--anticipatory", action="store_true")
    parser.add_argument("--policy", choices=sorted(POLICIES), default="load")
    parser.add_argument("--timeout", type=float, default=10_000.0)
    parser.add_argument("--var", action="append", type=_kv, metavar="NAME=INT")
    parser.add_argument(
        "--save-run", metavar="DIR",
        help="save the event log + metrics as a run directory afterwards",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="The Virtual Computing Environment (HPDC 1994 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser("describe", help="parse and resolve a VCE script")
    describe.add_argument("script")
    describe.add_argument("--var", action="append", type=_kv, metavar="NAME=INT")
    describe.set_defaults(fn=cmd_describe)

    run = sub.add_parser("run", help="run a VCE script on a simulated cluster")
    _add_run_options(run)
    run.add_argument(
        "--gantt", action="store_true", help="print a per-host ASCII timeline"
    )
    run.set_defaults(fn=cmd_run)

    trace = sub.add_parser(
        "trace", help="run a script and print its causal critical path"
    )
    _add_run_options(trace)
    trace.add_argument(
        "--export", metavar="PATH", help="write Chrome trace-event JSON to PATH"
    )
    trace.set_defaults(fn=cmd_trace)

    top = sub.add_parser(
        "top", help="run a script and show live telemetry frames"
    )
    _add_run_options(top)
    top.add_argument(
        "--snapshot",
        action="store_true",
        help="run to completion and print one final frame",
    )
    top.add_argument(
        "--refresh",
        type=float,
        default=5.0,
        help="simulated seconds between frames (interactive mode)",
    )
    top.add_argument(
        "--frames", type=int, default=0, help="stop after N frames (0 = until done)"
    )
    top.add_argument("--json", metavar="PATH", help="write a JSON metrics snapshot")
    top.add_argument(
        "--prom", metavar="PATH", help="write Prometheus text exposition"
    )
    top.set_defaults(fn=cmd_top)

    chaos = sub.add_parser(
        "chaos", help="run a script under a named fault schedule"
    )
    _add_run_options(chaos)
    from repro.faults.schedule import SCHEDULES

    chaos.add_argument(
        "--schedule",
        choices=sorted(SCHEDULES),
        default="chaos-mix",
        help="named fault schedule to inject (default: chaos-mix)",
    )
    chaos.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for schedule randomization (default: --seed)",
    )
    chaos.set_defaults(fn=cmd_chaos)

    lint = sub.add_parser(
        "lint", help="statically verify task graphs / lint sources for determinism"
    )
    lint.add_argument(
        "targets", nargs="+",
        help=".vce scripts or build_graph() .py files; with --det, "
             "Python files/directories",
    )
    lint.add_argument(
        "--det", action="store_true",
        help="run the determinism linter over Python sources instead of "
             "verifying task graphs",
    )
    lint.add_argument(
        "--hb", action="store_true",
        help="treat targets as saved run directories and replay them "
             "through the protocol conformance FSMs (P001-P003)",
    )
    lint.add_argument("--json", action="store_true", help="emit findings as JSON")
    lint.add_argument(
        "--strict", action="store_true", help="exit non-zero on warnings too"
    )
    lint.add_argument(
        "--baseline", metavar="PATH",
        help="detlint baseline file of grandfathered findings (--det only)",
    )
    lint.add_argument("--cluster", default="hetero:6,2,1")
    lint.add_argument(
        "--cluster-file",
        help="JSON cluster specification (see repro.core.spec); overrides --cluster",
    )
    lint.add_argument("--default-work", type=float, default=10.0)
    lint.add_argument("--var", action="append", type=_kv, metavar="NAME=INT")
    lint.set_defaults(fn=cmd_lint)

    sanitize = sub.add_parser(
        "sanitize",
        help="happens-before race sanitizer with tie-shuffle confirmation",
    )
    sanitize.add_argument(
        "scenarios", nargs="*",
        help="scenarios to sanitize (default: all; see "
             "repro.analysis.sanitize.SCENARIOS)",
    )
    sanitize.add_argument("--seed", type=int, default=3)
    sanitize.add_argument(
        "--backend", choices=["serial", "sharded"], default="serial",
        help="simulation backend (default serial)",
    )
    sanitize.add_argument(
        "--shards", type=int, default=4,
        help="shard count for --backend sharded (default 4)",
    )
    sanitize.add_argument(
        "--shuffles", type=int, default=4,
        help="tie-shuffle confirmation reruns per scenario (default 4)",
    )
    sanitize.add_argument(
        "--baseline", metavar="PATH",
        help="baseline file of grandfathered races (detlint format: "
             "'RULE path[:line]' per line)",
    )
    sanitize.add_argument(
        "--json", metavar="PATH", help="write the full result set as JSON"
    )
    sanitize.add_argument(
        "--no-static", action="store_true",
        help="skip the static FSM/code drift check (P005)",
    )
    sanitize.set_defaults(fn=cmd_sanitize)

    bench = sub.add_parser(
        "bench", help="measure kernel/scheduler throughput on canonical workloads"
    )
    bench.add_argument(
        "--suite", choices=["kernel", "scale"], default="kernel",
        help="kernel: canonical workloads vs BENCH_kernel.json; "
             "scale: multi-tenant soak scenarios vs BENCH_scale.json",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="reduced workload sizes (the CI perf-smoke gate)",
    )
    bench.add_argument(
        "--backend", choices=["serial", "sharded"], default="serial",
        help="simulation backend to benchmark (default serial)",
    )
    bench.add_argument(
        "--shards", type=int, default=4,
        help="shard count for --backend sharded (default 4)",
    )
    bench.add_argument("--json", metavar="PATH", help="write results as JSON")
    bench.add_argument(
        "--check", action="store_true",
        help="compare normalized ratios against --baseline; exit 1 on regression",
    )
    bench.add_argument(
        "--baseline", default=None,
        help="baseline JSON (default BENCH_kernel.json or BENCH_scale.json "
             "per --suite)",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed normalized-ratio drop before --check fails (default 0.25)",
    )
    bench.add_argument("--pump-events", type=int, default=100_000)
    bench.set_defaults(fn=cmd_bench)

    soak = sub.add_parser(
        "soak", help="multi-tenant soak: tenant populations load the scheduler"
    )
    soak.add_argument("--tenants", type=int, default=50, help="tenant populations")
    soak.add_argument("--apps", type=int, default=2000, help="total applications")
    soak.add_argument("--machines", type=int, default=256, help="workstation count")
    soak.add_argument(
        "--fanout", type=int, default=8,
        help="sub-leader cells (1 = the paper's flat bidding)",
    )
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument(
        "--backend", choices=["serial", "sharded"], default="serial"
    )
    soak.add_argument("--shards", type=int, default=4)
    soak.add_argument(
        "--arrival-span", type=float, default=None, metavar="SECONDS",
        help="compress arrivals into this window (default 200)",
    )
    soak.add_argument(
        "--instances", type=_int_pair, default=None, metavar="LO,HI",
        help="per-app instance range (default 96,192)",
    )
    soak.add_argument(
        "--work", type=_float_pair, default=None, metavar="LO,HI",
        help="per-instance compute seconds range (default 8,16)",
    )
    from repro.faults.schedule import SCHEDULES as _SCHEDULES

    soak.add_argument(
        "--chaos", choices=sorted(_SCHEDULES), default=None,
        help="run under a named fault schedule (enables reliable "
             "transport + failover)",
    )
    soak.add_argument(
        "--top", type=int, default=12, help="tenant rows to print (default 12)"
    )
    soak.add_argument("--json", metavar="PATH", help="write the full report as JSON")
    soak.set_defaults(fn=cmd_soak)

    serve = sub.add_parser(
        "serve", help="start the live control plane (dashboard + SSE + API)"
    )
    _add_run_options(serve, script_optional=True)
    from repro.controlplane.driver import WORKLOAD_NAMES

    serve.add_argument(
        "--workload", choices=sorted(WORKLOAD_NAMES), default=None,
        help="built-in workload to submit when no SCRIPT is given",
    )
    serve.add_argument("--layers", type=int, default=8, help="randomdag layers")
    serve.add_argument("--width", type=int, default=8, help="randomdag width")
    serve.add_argument("--ranks", type=int, default=4, help="stencil ranks")
    serve.add_argument(
        "--iterations", type=int, default=8, help="stencil iterations"
    )
    serve.add_argument("--bind", default="127.0.0.1", help="listen address")
    serve.add_argument(
        "--port", type=int, default=8421, help="listen port (0 = pick free)"
    )
    serve.add_argument(
        "--pace", type=float, default=2.0,
        help="simulated seconds per wall second (0 = as fast as possible)",
    )
    serve.add_argument(
        "--slice", type=float, default=2.0,
        help="simulated seconds advanced per scheduling slice",
    )
    serve.add_argument(
        "--failover", action="store_true",
        help="enable reliable transport + lease-based failover (as repro chaos does)",
    )
    serve.add_argument(
        "--exit-when-done", action="store_true",
        help="stop once every tracked application completes (headless/CI mode)",
    )
    serve.add_argument(
        "--max-wall", type=float, default=None,
        help="hard wall-clock runtime cap in seconds",
    )
    serve.add_argument(
        "--backend", choices=["serial", "sharded", "network"], default="serial",
        help="simulation backend; 'network' runs the real-process quickstart "
             "(daemons as asyncio processes on localhost, docs/NETWORK.md)",
    )
    serve.add_argument(
        "--shards", type=int, default=4,
        help="shard count for --backend sharded (default 4)",
    )
    serve.add_argument(
        "--processes", type=int, default=3,
        help="daemon process count for --backend network (default 3)",
    )
    serve.add_argument(
        "--rate", type=float, default=10.0,
        help="simulated seconds per wall second for --backend network",
    )
    serve.set_defaults(fn=cmd_serve)

    demo = sub.add_parser("demo", help="run a built-in workload")
    demo.add_argument(
        "workload", choices=["weather", "montecarlo", "stencil", "pipeline"]
    )
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--timeout", type=float, default=10_000.0)
    demo.set_defaults(fn=cmd_demo)
    return parser


def main(argv: list[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args, out)
    except (VCEError, OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
