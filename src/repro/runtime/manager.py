"""The runtime manager: dispatch, precedence, staging, completion.

The manager turns an annotated task graph plus a :class:`Placement` into
running :class:`~repro.runtime.instance.TaskInstance` processes:

- root tasks dispatch immediately; successors dispatch when every instance
  of every precedence predecessor has completed;
- DATA-arc volumes are charged as stage-in delay when producer and consumer
  landed on different hosts;
- binary availability is consulted through an optional *binary service*
  (the compilation manager): a task whose binary is already prepared for
  the target machine class starts immediately, otherwise it pays
  compile-on-demand time — the cost anticipatory compilation (§4.5)
  removes;
- instance failures are offered to registered failure handlers (migration
  and fault-tolerance policies); unhandled failures fail the application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Protocol

from repro.channels.channel import Channel, ChannelManager
from repro.channels.port import Port, PortDirection
from repro.runtime.app import Application, AppStatus, InstanceRecord
from repro.runtime.checkpoints import CheckpointStore
from repro.runtime.instance import InstanceState, TaskInstance
from repro.taskgraph import ArcKind, TaskGraph
from repro.trace.context import TraceContext, trace_fields
from repro.util.errors import ConfigurationError
from repro.vmpi.communicator import TaskContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.machines.machine import Machine
    from repro.netsim.host import Host
    from repro.netsim.kernel import Simulator
    from repro.netsim.network import Network
    from repro.taskgraph.node import TaskNode


class BinaryService(Protocol):
    """What the runtime manager needs from the compilation manager."""

    def load_delay(self, task: "TaskNode", machine: "Machine", now: float) -> float:
        """Seconds of extra start latency to have a runnable binary on
        *machine* (0.0 when one is already prepared). May raise
        :class:`~repro.util.errors.CompilationError` if impossible."""
        ...  # pragma: no cover


@dataclass
class Placement:
    """(task, rank) → host-name assignment produced by the scheduler."""

    assignments: dict[tuple[str, int], str] = field(default_factory=dict)

    def assign(self, task: str, rank: int, host_name: str) -> None:
        self.assignments[(task, rank)] = host_name

    def host_for(self, task: str, rank: int) -> str:
        try:
            return self.assignments[(task, rank)]
        except KeyError:
            raise ConfigurationError(f"no placement for {task}[{rank}]") from None

    def covers(self, graph: TaskGraph) -> bool:
        return all(
            (node.name, rank) in self.assignments
            for node in graph
            for rank in range(node.instances)
        )


#: Failure handler signature: return True if the failure was handled (the
#: handler re-dispatched or absorbed it), False to let the app fail.
FailureHandler = Callable[[Application, InstanceRecord, TaskInstance], bool]


class RuntimeManager:
    """Central dispatch bookkeeping of the EXM (see module docstring)."""

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        channels: ChannelManager | None = None,
        checkpoints: CheckpointStore | None = None,
        binary_service: BinaryService | None = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.channels = channels or ChannelManager(network)
        self.checkpoints = checkpoints or CheckpointStore()
        self.binary_service = binary_service
        self.apps: dict[str, Application] = {}
        self.failure_handlers: list[FailureHandler] = []
        #: called after every instance dispatch — migration/redundancy
        #: services hook here (e.g. to launch redundant copies)
        self.dispatch_hooks: list[Callable[[Application, InstanceRecord], None]] = []
        self._incarnations: dict[tuple[str, str, int], int] = {}
        # live-telemetry handles, cached once (None when telemetry is off)
        tel = sim.telemetry
        self._m_dispatches = (
            tel.counter("runtime_dispatches_total", "instance dispatches")
            if tel is not None else None
        )
        self._m_task_duration = (
            tel.histogram(
                "task_duration_seconds", "dispatch to exit", labels=("task",)
            )
            if tel is not None else None
        )
        self._m_task_exits = (
            tel.counter("tasks_exited_total", "instance exits", labels=("state",))
            if tel is not None else None
        )
        self._m_makespan = (
            tel.histogram("app_makespan_seconds", "submit to done")
            if tel is not None else None
        )
        self._m_apps = (
            tel.counter("apps_finished_total", "application completions", labels=("status",))
            if tel is not None else None
        )

    # ---------------------------------------------------------------- submit

    def submit(
        self,
        graph: TaskGraph,
        placement: Placement,
        params: dict[str, Any] | None = None,
        app_id: str | None = None,
        trace: TraceContext | None = None,
    ) -> Application:
        """Start an application; returns its tracking object immediately.

        *trace*, when given, parents the application's span under the
        caller's (the execution program passes its run-root span); a
        direct submit mints a fresh root trace, so every application is
        causally traceable either way.
        """
        graph.validate()
        if not placement.covers(graph):
            raise ConfigurationError(f"placement does not cover graph {graph.name!r}")
        app_id = app_id or self.sim.ids.next("app")
        app = Application(app_id, graph, params)
        app.submitted_at = self.sim.now
        app.status = AppStatus.RUNNING
        app._placement = placement  # kept for successor dispatch
        if trace is not None:
            app.trace = trace.child(self.sim.ids.next("span"))
        else:
            app.trace = TraceContext(
                self.sim.ids.next("trace"), self.sim.ids.next("span")
            )
        self.apps[app_id] = app
        self.sim.emit("app.submit", app_id, tasks=len(graph), **app.trace.fields())
        for task in app.ready_tasks():
            self._dispatch_task(app, task)
        if not app.records:  # degenerate empty graph
            app._mark_complete(AppStatus.DONE, self.sim.now)
        return app

    def terminate(self, app: Application) -> None:
        """Kill every live instance ("the execution program notifies all
        machines working on the application to terminate", §5)."""
        for record in app.records.values():
            if record.instance is not None and not record.instance.state.terminal:
                record.instance.kill("app-terminated")
            for copy in record.redundant_copies:
                if not copy.state.terminal:
                    copy.kill("app-terminated")
        app._mark_complete(AppStatus.TERMINATED, self.sim.now)
        self.checkpoints.drop_app(app.id)
        self.sim.emit("app.terminate", app.id, **trace_fields(app.trace))

    # -------------------------------------------------------------- dispatch

    def _dispatch_task(self, app: Application, task: str) -> None:
        node = app.graph.task(task)
        for rank in range(node.instances):
            record = app.record(task, rank)
            host_name = app._placement.host_for(task, rank)
            self.dispatch_instance(app, record, host_name)

    def dispatch_instance(
        self,
        app: Application,
        record: InstanceRecord,
        host_name: str,
        restored_state: Any = None,
    ) -> TaskInstance:
        """Create and start one instance of ``record`` on *host_name*.

        Also used by migration schemes for re-dispatch: pass
        ``restored_state`` to hand the program its last checkpoint.
        """
        node = app.graph.task(record.task)
        host = self.network.host(host_name)
        key = (app.id, record.task, record.rank)
        incarnation = self._incarnations.get(key, 0)
        self._incarnations[key] = incarnation + 1
        name = f"{app.id}.{record.task}.{record.rank}#{incarnation}"

        # every incarnation gets its own span under the application span;
        # `after` names the predecessor-instance spans whose completion
        # released this dispatch (the causal edges of the critical path)
        after = tuple(
            r.instance.ctx.trace.span_id
            for pred in app.graph.predecessors(record.task)
            for r in app.task_records(pred)
            if r.instance is not None and r.instance.ctx.trace is not None
        )
        span = (
            app.trace.child(self.sim.ids.next("span"))
            if app.trace is not None
            else None
        )
        ctx = TaskContext(
            app=app.id,
            task=record.task,
            rank=record.rank,
            size=node.instances,
            params=app.params,
            restored_state=restored_state,
            trace=span,
        )
        mpi_channel, named = self._wire_channels(app, node, record.rank)
        stage_in = self._stage_in_delay(app, node, host_name)
        binary = self._binary_delay(node, host)
        start_delay = stage_in + binary

        instance = TaskInstance(
            name=name,
            ctx=ctx,
            node=node,
            channels=named,
            mpi_channel=mpi_channel,
            checkpoints=self.checkpoints,
            on_exit=lambda inst, state, outcome: self._instance_exited(
                app, record, inst, state, outcome
            ),
            start_delay=start_delay,
        )
        instance.allocation_epoch = incarnation
        address = host.spawn(instance)
        # point this rank's receive ports at the new incarnation
        if mpi_channel is not None:
            self._bind_port(mpi_channel, str(record.rank), address)
        for channel in named.values():
            self._bind_port(channel, f"{record.task}[{record.rank}]", address)

        hb = self.sim.hb
        if hb is not None:
            hb.write(
                f"epoch:{app.id}:{record.task}:{record.rank}",
                "R003", "runtime.dispatch_commit",
            )
        record.instance = instance
        record.epoch = incarnation
        app.commit_state(record, InstanceState.PENDING)
        record.host_name = host_name
        record.dispatched_at = self.sim.now
        record.placements.append(host_name)
        app.mark_dispatched(record)
        if self._m_dispatches is not None:
            self._m_dispatches.inc()
        self.sim.emit(
            "runtime.dispatch",
            app.id,
            task=record.task,
            rank=record.rank,
            host=host_name,
            stage_in=stage_in,
            binary=binary,
            incarnation=incarnation,
            after=after,
            **trace_fields(span),
        )
        for hook in self.dispatch_hooks:
            hook(app, record)
        return instance

    @staticmethod
    def _bind_port(channel: Channel, port_name: str, address: Any) -> None:
        existing = {p.name for p in channel.receive_ports}
        if port_name in existing:
            channel.rebind(port_name, address)
        else:
            channel.attach(Port(port_name, address, PortDirection.RECEIVE))

    def _wire_channels(
        self, app: Application, node: "TaskNode", rank: int
    ) -> tuple[Channel | None, dict[str, Channel]]:
        mpi_channel = None
        if node.instances > 1:
            mpi_channel = self.channels.get_or_create(f"{app.id}.{node.name}.mpi")
        named: dict[str, Channel] = {}
        for arc in app.graph.arcs_from(node.name):
            if arc.kind is ArcKind.STREAM:
                cname = arc.channel or f"{app.id}.{arc.src}->{arc.dst}"
                named[cname] = self.channels.get_or_create(cname)
        for arc in app.graph.arcs_into(node.name):
            if arc.kind is ArcKind.STREAM:
                cname = arc.channel or f"{app.id}.{arc.src}->{arc.dst}"
                named[cname] = self.channels.get_or_create(cname)
        return mpi_channel, named

    def _stage_in_delay(self, app: Application, node: "TaskNode", host_name: str) -> float:
        """Max transfer time of incoming DATA-arc volumes produced on other
        hosts (transfers proceed in parallel)."""
        delay = 0.0
        bandwidth = self.network.latency.bandwidth
        for arc in app.graph.arcs_into(node.name):
            if arc.kind is not ArcKind.DATA or arc.volume <= 0:
                continue
            remote = any(
                r.host_name is not None and r.host_name != host_name
                for r in app.task_records(arc.src)
            )
            if remote:
                delay = max(delay, arc.volume / bandwidth + self.network.latency.base_latency)
        return delay

    def _binary_delay(self, node: "TaskNode", host: "Host") -> float:
        if self.binary_service is None or host.machine is None:
            return 0.0
        return self.binary_service.load_delay(node, host.machine, self.sim.now)

    # ------------------------------------------------------------ transitions

    def _instance_exited(
        self,
        app: Application,
        record: InstanceRecord,
        instance: TaskInstance,
        state: InstanceState,
        outcome: Any,
    ) -> None:
        if record.instance is not instance:
            # a superseded incarnation (killed during migration) — ignore
            return
        hb = self.sim.hb
        if hb is not None:
            # a stale incarnation's exit racing a re-dispatch is absorbed by
            # the allocation-epoch guard just below (runtime.stale_commit)
            hb.write(  # hbrace: ok(R003)
                f"epoch:{app.id}:{record.task}:{record.rank}",
                "R003", "runtime.exit_commit",
            )
        if getattr(instance, "allocation_epoch", record.epoch) != record.epoch:
            # an exit from a stale allocation epoch must not commit: the
            # failover layer already re-dispatched this (task, rank)
            self.sim.emit(
                "runtime.stale_commit", app.id, task=record.task, rank=record.rank,
                epoch=getattr(instance, "allocation_epoch", None),
                current=record.epoch,
            )
            return
        app.commit_state(record, state)
        record.finished_at = self.sim.now
        if self._m_task_exits is not None:
            self._m_task_exits.labels(state.value).inc()
            if state is InstanceState.DONE and record.dispatched_at is not None:
                self._m_task_duration.labels(record.task).observe(
                    self.sim.now - record.dispatched_at
                )
        if state is InstanceState.DONE:
            record.result = instance.result
            self._kill_redundant_copies(record, "primary-done")
            self._advance(app, completed=record.task)
        elif state is InstanceState.FAILED:
            if app.status.terminal:
                return
            handled = any(h(app, record, instance) for h in self.failure_handlers)
            if not handled:
                app._mark_complete(AppStatus.FAILED, self.sim.now)
                if self._m_apps is not None:
                    self._m_apps.labels(AppStatus.FAILED.value).inc()
                self.sim.emit("app.failed", app.id, task=record.task, rank=record.rank,
                              **trace_fields(app.trace))
        # KILLED incarnations are superseded deliberately; nothing to do.

    def _kill_redundant_copies(self, record: InstanceRecord, reason: str) -> None:
        # iterate a snapshot: each kill() re-enters the copy's on_exit, which
        # may remove it from the live list
        for copy in list(record.redundant_copies):
            if not copy.state.terminal:
                copy.kill(reason)
        record.redundant_copies.clear()

    def _advance(self, app: Application, completed: str | None = None) -> None:
        """Dispatch whatever a completion made ready.

        With *completed* (the task whose instance just committed DONE) only
        that task's successors are examined — readiness can only change when
        the last blocking predecessor finishes, so the full-graph rescan is
        reserved for callers with no completion context (e.g. ``submit``).
        """
        if app.status.terminal:
            return
        if app.all_done:
            app._mark_complete(AppStatus.DONE, self.sim.now)
            if self._m_apps is not None:
                self._m_apps.labels(AppStatus.DONE.value).inc()
                if app.makespan is not None:
                    self._m_makespan.observe(app.makespan)
            self.sim.emit("app.done", app.id, makespan=app.makespan,
                          **trace_fields(app.trace))
            self.checkpoints.drop_app(app.id)
            return
        if completed is not None:
            if not app.task_done(completed):
                return  # sibling ranks still running; nothing newly ready
            graph = app.graph
            for task in graph.successors(completed):
                # parallel arcs may repeat a successor; the untouched check
                # goes False after the first dispatch, so repeats are no-ops
                if app.task_untouched(task) and all(
                    app.task_done(p) for p in graph.predecessors(task)
                ):
                    self._dispatch_task(app, task)
            return
        for task in app.ready_tasks():
            self._dispatch_task(app, task)

    # ------------------------------------------------------------- utilities

    def add_failure_handler(self, handler: FailureHandler) -> None:
        self.failure_handlers.append(handler)

    def instances_on(self, host_name: str) -> list[TaskInstance]:
        """Live VCE task instances currently on *host_name*."""
        out = []
        for app in self.apps.values():
            for record in app.records.values():
                inst = record.instance
                if (
                    inst is not None
                    and not inst.state.terminal
                    and inst.host is not None
                    and inst.host.name == host_name
                ):
                    out.append(inst)
                for copy in record.redundant_copies:
                    if (
                        not copy.state.terminal
                        and copy.host is not None
                        and copy.host.name == host_name
                    ):
                        out.append(copy)
        return out

    def rebind_instance(self, old_address: Any, new_address: Any) -> int:
        """Channel handoff after a migration (counts ports moved)."""
        return self.channels.rebind_everywhere(old_address, new_address)
