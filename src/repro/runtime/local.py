"""LocalBackend: execute task graphs with *real* Python callables.

The simulator executes modelled work; this backend executes actual
functions on a pool of worker threads — one worker per "machine" — while
reusing the same task-graph, placement, and precedence machinery. It is
the reproduction's stand-in for the paper's real prototype deployment
(daemons on a workstation LAN), and lets the examples do genuine
computation.

Execution model:

- each placed machine name owns one worker thread (machines execute their
  instances serially, like a busy workstation);
- a task instance runs when every precedence predecessor of its task has
  finished; it is called as ``fn(LocalContext)`` and its return value is
  the instance result;
- downstream tasks see predecessor outputs in ``ctx.inputs`` —
  ``{pred_task_name: [rank-ordered results]}``;
- any instance raising fails the application (remaining work is skipped).

This backend intentionally supports plain callables, not the generator
syscall programs of the simulator: real code blocks on real work.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.runtime.manager import Placement
from repro.taskgraph import TaskGraph
from repro.util.errors import ConfigurationError, VCEError


class LocalExecutionError(VCEError):
    """An instance raised during local execution."""


@dataclass
class LocalContext:
    """What a locally-executed task callable receives."""

    app: str
    task: str
    rank: int
    size: int
    machine: str
    params: dict[str, Any] = field(default_factory=dict)
    inputs: dict[str, list[Any]] = field(default_factory=dict)


class _Worker:
    """One machine: a thread draining a serial work queue."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._queue: "queue.Queue[tuple[Callable[[], None], None] | None]" = queue.Queue()
        self._thread = threading.Thread(target=self._loop, name=f"vce-{name}", daemon=True)
        self._thread.start()

    def submit(self, job: Callable[[], None]) -> None:
        self._queue.put((job, None))

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            job, _ = item
            job()

    def shutdown(self) -> None:
        self._queue.put(None)
        self._thread.join(timeout=5.0)


class LocalBackend:
    """Run annotated task graphs on real threads (see module docstring).

    Args:
        machine_names: the machines this backend embodies; a placement may
            only name these.
    """

    def __init__(self, machine_names: list[str]) -> None:
        if not machine_names:
            raise ConfigurationError("LocalBackend needs at least one machine")
        if len(set(machine_names)) != len(machine_names):
            raise ConfigurationError("duplicate machine names")
        self.machine_names = list(machine_names)
        self._workers = {name: _Worker(name) for name in machine_names}
        self._closed = False

    # ------------------------------------------------------------------ run

    def run(
        self,
        graph: TaskGraph,
        placement: Placement,
        programs: dict[str, Callable[[LocalContext], Any]],
        params: dict[str, Any] | None = None,
        app_id: str = "local-app",
        timeout: float = 60.0,
    ) -> dict[str, list[Any]]:
        """Execute *graph* and return ``{task: rank-ordered results}``.

        Raises :class:`LocalExecutionError` if any instance raised, with
        the original exception chained.
        """
        if self._closed:
            raise ConfigurationError("backend is closed")
        graph.validate()
        if not placement.covers(graph):
            raise ConfigurationError("placement does not cover the graph")
        missing = [t.name for t in graph if t.name not in programs]
        if missing:
            raise ConfigurationError(f"no local programs for tasks: {missing}")
        for (task, rank), machine in placement.assignments.items():
            if machine not in self._workers:
                raise ConfigurationError(
                    f"placement puts {task}[{rank}] on unknown machine {machine!r}"
                )

        lock = threading.Lock()
        done_event = threading.Event()
        results: dict[str, list[Any]] = {
            node.name: [None] * node.instances for node in graph
        }
        remaining: dict[str, int] = {node.name: node.instances for node in graph}
        launched: set[str] = set()
        failure: list[BaseException] = []

        def task_ready(task: str) -> bool:
            return all(remaining[p] == 0 for p in graph.predecessors(task))

        def maybe_launch_ready() -> None:
            for node in graph:
                if node.name in launched:
                    continue
                if task_ready(node.name):
                    launched.add(node.name)
                    for rank in range(node.instances):
                        _dispatch(node.name, rank)

        def _dispatch(task: str, rank: int) -> None:
            node = graph.task(task)
            machine = placement.host_for(task, rank)
            ctx = LocalContext(
                app=app_id,
                task=task,
                rank=rank,
                size=node.instances,
                machine=machine,
                params=dict(params or {}),
                inputs={p: list(results[p]) for p in graph.predecessors(task)},
            )
            fn = programs[task]

            def job() -> None:
                try:
                    value = fn(ctx)
                except BaseException as err:  # noqa: BLE001 - reported to caller
                    with lock:
                        failure.append(err)
                    done_event.set()
                    return
                with lock:
                    results[task][rank] = value
                    remaining[task] -= 1
                    if failure:
                        return
                    maybe_launch_ready()
                    if all(v == 0 for v in remaining.values()):
                        done_event.set()

            self._workers[machine].submit(job)

        with lock:
            maybe_launch_ready()
            if all(v == 0 for v in remaining.values()):  # empty graph
                done_event.set()

        if not done_event.wait(timeout=timeout):
            raise LocalExecutionError(f"local execution timed out after {timeout}s")
        if failure:
            raise LocalExecutionError("a task instance raised") from failure[0]
        return results

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            for worker in self._workers.values():
                worker.shutdown()

    def __enter__(self) -> "LocalBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def round_robin_local_placement(graph: TaskGraph, machine_names: list[str]) -> Placement:
    """Convenience: spread instances across the backend's machines."""
    placement = Placement()
    i = 0
    for node in graph:
        for rank in range(node.instances):
            placement.assign(node.name, rank, machine_names[i % len(machine_names)])
            i += 1
    return placement
