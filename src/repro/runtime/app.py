"""Application bookkeeping.

An :class:`Application` tracks the instances of one submitted task graph —
their placements, states, results, and timing — and reports completion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.runtime.instance import InstanceState, TaskInstance
from repro.taskgraph import TaskGraph

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.context import TraceContext


class AppStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    TERMINATED = "terminated"

    @property
    def terminal(self) -> bool:
        return self in (AppStatus.DONE, AppStatus.FAILED, AppStatus.TERMINATED)


@dataclass
class InstanceRecord:
    """The runtime manager's view of one task instance."""

    task: str
    rank: int
    state: InstanceState = InstanceState.PENDING
    host_name: str | None = None
    instance: TaskInstance | None = None
    result: Any = None
    dispatched_at: float | None = None
    finished_at: float | None = None
    placements: list[str] = field(default_factory=list)  # migration history
    redundant_copies: list[TaskInstance] = field(default_factory=list)
    #: allocation epoch — bumped on every (re-)dispatch; an exit only
    #: commits when its instance carries the record's current epoch, which
    #: makes completion at-most-once under failover re-dispatch
    epoch: int = -1

    @property
    def key(self) -> tuple[str, int]:
        return (self.task, self.rank)


class Application:
    """One submitted VCE application."""

    def __init__(self, app_id: str, graph: TaskGraph, params: dict[str, Any] | None = None):
        self.id = app_id
        self.graph = graph
        self.params = dict(params or {})
        self.status = AppStatus.PENDING
        self.submitted_at: float | None = None
        self.completed_at: float | None = None
        #: span covering this application's submit → completion (set by the
        #: runtime manager; every instance span is parented under it)
        self.trace: "TraceContext | None" = None
        self.records: dict[tuple[str, int], InstanceRecord] = {}
        for node in graph:
            for rank in range(node.instances):
                self.records[(node.name, rank)] = InstanceRecord(node.name, rank)
        self._on_complete: list[Callable[["Application"], None]] = []

    # -- queries -----------------------------------------------------------

    def record(self, task: str, rank: int) -> InstanceRecord:
        return self.records[(task, rank)]

    def task_records(self, task: str) -> list[InstanceRecord]:
        return [r for r in self.records.values() if r.task == task]

    def task_done(self, task: str) -> bool:
        """All instances of *task* completed successfully."""
        return all(r.state is InstanceState.DONE for r in self.task_records(task))

    def ready_tasks(self) -> list[str]:
        """Tasks whose precedence predecessors are all done and whose own
        instances are still pending."""
        out = []
        for node in self.graph:
            records = self.task_records(node.name)
            if any(
                r.dispatched_at is not None or r.state is not InstanceState.PENDING
                for r in records
            ):
                continue
            if all(self.task_done(p) for p in self.graph.predecessors(node.name)):
                out.append(node.name)
        return out

    @property
    def all_done(self) -> bool:
        return all(r.state is InstanceState.DONE for r in self.records.values())

    @property
    def any_failed(self) -> bool:
        return any(r.state is InstanceState.FAILED for r in self.records.values())

    def results(self, task: str) -> list[Any]:
        """Rank-ordered results of a completed task."""
        records = sorted(self.task_records(task), key=lambda r: r.rank)
        return [r.result for r in records]

    @property
    def makespan(self) -> float | None:
        if self.submitted_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    # -- completion ---------------------------------------------------------

    def on_complete(self, callback: Callable[["Application"], None]) -> None:
        self._on_complete.append(callback)
        if self.status.terminal:
            callback(self)

    def _mark_complete(self, status: AppStatus, time: float) -> None:
        if self.status.terminal:
            return
        self.status = status
        self.completed_at = time
        for callback in self._on_complete:
            callback(self)
