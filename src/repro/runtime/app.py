"""Application bookkeeping.

An :class:`Application` tracks the instances of one submitted task graph —
their placements, states, results, and timing — and reports completion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.runtime.instance import InstanceState, TaskInstance
from repro.taskgraph import TaskGraph

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.context import TraceContext


class AppStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    TERMINATED = "terminated"


# ``terminal`` is a plain member attribute, not a property: status checks sit
# on per-event hot paths (samplers, watchdogs, dispatch) where descriptor
# dispatch through the enum metaclass is measurable.
for _status in AppStatus:
    _status.terminal = _status in (AppStatus.DONE, AppStatus.FAILED, AppStatus.TERMINATED)
del _status


@dataclass
class InstanceRecord:
    """The runtime manager's view of one task instance."""

    task: str
    rank: int
    state: InstanceState = InstanceState.PENDING
    host_name: str | None = None
    instance: TaskInstance | None = None
    result: Any = None
    dispatched_at: float | None = None
    finished_at: float | None = None
    placements: list[str] = field(default_factory=list)  # migration history
    redundant_copies: list[TaskInstance] = field(default_factory=list)
    #: allocation epoch — bumped on every (re-)dispatch; an exit only
    #: commits when its instance carries the record's current epoch, which
    #: makes completion at-most-once under failover re-dispatch
    epoch: int = -1

    @property
    def key(self) -> tuple[str, int]:
        return (self.task, self.rank)


class Application:
    """One submitted VCE application."""

    def __init__(self, app_id: str, graph: TaskGraph, params: dict[str, Any] | None = None):
        self.id = app_id
        self.graph = graph
        self.params = dict(params or {})
        self.status = AppStatus.PENDING
        self.submitted_at: float | None = None
        self.completed_at: float | None = None
        #: span covering this application's submit → completion (set by the
        #: runtime manager; every instance span is parented under it)
        self.trace: "TraceContext | None" = None
        self.records: dict[tuple[str, int], InstanceRecord] = {}
        self._by_task: dict[str, list[InstanceRecord]] = {}
        for node in graph:
            per_task = self._by_task[node.name] = []
            for rank in range(node.instances):
                record = InstanceRecord(node.name, rank)
                self.records[(node.name, rank)] = record
                per_task.append(record)
        #: count of records in DONE state; exact as long as every state
        #: change goes through :meth:`commit_state` (it does — the runtime
        #: manager and failover layers are the only writers)
        self._done_count = 0
        #: records that have been dispatched and whose state is not yet
        #: terminal (plus terminal records that still own redundant copies) —
        #: the telemetry sampler and watchdog scan these instead of all
        #: records, so per-tick cost tracks live work, not application size
        self.inflight: dict[tuple[str, int], InstanceRecord] = {}
        #: records currently in FAILED state (stranded-instance detection)
        self.failed: dict[tuple[str, int], InstanceRecord] = {}
        self._on_complete: list[Callable[["Application"], None]] = []

    # -- queries -----------------------------------------------------------

    def record(self, task: str, rank: int) -> InstanceRecord:
        return self.records[(task, rank)]

    def task_records(self, task: str) -> list[InstanceRecord]:
        return list(self._by_task.get(task, ()))

    def task_done(self, task: str) -> bool:
        """All instances of *task* completed successfully."""
        return all(
            r.state is InstanceState.DONE for r in self._by_task.get(task, ())
        )

    def task_untouched(self, task: str) -> bool:
        """No instance of *task* has been dispatched or left PENDING."""
        return all(
            r.dispatched_at is None and r.state is InstanceState.PENDING
            for r in self._by_task.get(task, ())
        )

    def ready_tasks(self) -> list[str]:
        """Tasks whose precedence predecessors are all done and whose own
        instances are still pending."""
        done: dict[str, bool] = {}
        untouched: dict[str, bool] = {}
        for name, records in self._by_task.items():
            all_done = True
            clean = True
            for r in records:
                if r.state is not InstanceState.DONE:
                    all_done = False
                if r.dispatched_at is not None or r.state is not InstanceState.PENDING:
                    clean = False
                if not all_done and not clean:
                    break
            done[name] = all_done
            untouched[name] = clean
        predecessors = self.graph.predecessors
        return [
            node.name
            for node in self.graph
            if untouched[node.name] and all(done[p] for p in predecessors(node.name))
        ]

    def mark_dispatched(self, record: InstanceRecord) -> None:
        """Register *record* as in flight (called by the runtime manager at
        every (re-)dispatch, after ``dispatched_at`` is set)."""
        self.inflight[record.key] = record

    def commit_state(self, record: InstanceRecord, state: InstanceState) -> None:
        """The single choke point for record state changes: keeps the O(1)
        done-count (behind :attr:`all_done`) and the in-flight/failed
        indexes exact. Writers must use this instead of assigning
        ``record.state`` directly."""
        old = record.state
        if old is state:
            return
        record.state = state
        if state is InstanceState.DONE:
            self._done_count += 1
        elif old is InstanceState.DONE:
            self._done_count -= 1
        if state is InstanceState.FAILED:
            self.failed[record.key] = record
        elif old is InstanceState.FAILED:
            self.failed.pop(record.key, None)
        if state.terminal:
            # keep records that still own live redundant copies visible to
            # the sampler; per-instance state checks filter the dead ones
            if not record.redundant_copies:
                self.inflight.pop(record.key, None)
        elif record.dispatched_at is not None:
            # failover absorbed a crash: the record is live again
            self.inflight[record.key] = record

    @property
    def all_done(self) -> bool:
        return self._done_count == len(self.records)

    @property
    def any_failed(self) -> bool:
        return bool(self.failed)

    def results(self, task: str) -> list[Any]:
        """Rank-ordered results of a completed task."""
        records = sorted(self.task_records(task), key=lambda r: r.rank)
        return [r.result for r in records]

    @property
    def makespan(self) -> float | None:
        if self.submitted_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    # -- completion ---------------------------------------------------------

    def on_complete(self, callback: Callable[["Application"], None]) -> None:
        self._on_complete.append(callback)
        if self.status.terminal:
            callback(self)

    def _mark_complete(self, status: AppStatus, time: float) -> None:
        if self.status.terminal:
            return
        self.status = status
        self.completed_at = time
        for callback in self._on_complete:
            callback(self)
