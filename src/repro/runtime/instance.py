"""Task instances: the syscall interpreter.

A :class:`TaskInstance` drives one task program (a Python generator) on its
host, translating the vMPI syscalls into simulated effects:

- ``Compute`` — time = work / (machine effective speed / co-resident VCE
  compute tasks). Effective speed is sampled when the burst starts (a
  documented approximation; bursts are short relative to load changes in
  the shipped workloads) and re-sampled if the machine is fully busy.
- ``Send``/``Recv`` — channel traffic with tag/src matching and a parked-
  receive mailbox.
- ``Checkpoint`` — writes the checkpoint store, charging write cost.
- ``ReadFile``/``WriteFile`` — local or remote file access against the
  machine's file set.
- ``Sleep``/``Emit`` — timing and logging.

Instances can be *suspended* (the Stealth-style load policies of §4.3: the
program stops advancing but keeps accumulating messages), *killed* (the
redundant-execution scheme kills copies), and *adopted* by another host
(dump migration moves the live object; see ``Host.adopt``).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable

from repro.channels.channel import Channel, ChannelDelivery
from repro.channels.port import Port, PortDirection
from repro.netsim.host import Address
from repro.netsim.process import SimProcess
from repro.util.errors import CommunicationError, SimulationError
from repro.vmpi.api import ANY, Checkpoint, Compute, Emit, ReadFile, Recv, Send, Sleep, WriteFile
from repro.vmpi.communicator import TaskContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.checkpoints import CheckpointStore
    from repro.taskgraph.node import TaskNode


class InstanceState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    BLOCKED = "blocked"
    SUSPENDED = "suspended"
    DONE = "done"
    FAILED = "failed"
    KILLED = "killed"


# ``terminal`` is a plain member attribute, not a property: the telemetry
# sampler and watchdog test it once per instance per tick, and descriptor
# dispatch through the enum metaclass dominates that loop.
for _state in InstanceState:
    _state.terminal = _state in (
        InstanceState.DONE, InstanceState.FAILED, InstanceState.KILLED
    )
del _state


def _host_compute_count(host: Any) -> int:
    return getattr(host, "_vce_computing", 0)


def _host_compute_delta(host: Any, delta: int) -> None:
    host._vce_computing = _host_compute_count(host) + delta


class _Envelope:
    """Tagged payload riding inside channel deliveries. Carries the
    sender's trace context so the receiver can log the causal hop."""

    __slots__ = ("tag", "data", "trace")

    def __init__(self, tag: str | None, data: Any, trace: Any = None) -> None:
        self.tag = tag
        self.data = data
        self.trace = trace


class TaskInstance(SimProcess):
    """One running copy of a task (see module docstring).

    Args:
        name: globally unique process name.
        ctx: the task context handed to the program factory.
        node: the task-graph node being executed.
        channels: name → Channel for every channel this instance may use;
            the key ``None``... is not allowed — the MPI communicator
            channel is passed as ``mpi_channel``.
        mpi_channel: the channel carrying this task's rank-addressed
            traffic (None for single-instance tasks that never use ranks).
        checkpoints: the checkpoint store.
        on_exit: callback ``(instance, state, result_or_error)`` fired once
            on DONE / FAILED / KILLED.
    """

    #: polling interval when the machine is completely saturated by local load
    STALL_RETRY = 1.0

    def __init__(
        self,
        name: str,
        ctx: TaskContext,
        node: "TaskNode",
        channels: dict[str, Channel],
        mpi_channel: Channel | None,
        checkpoints: "CheckpointStore",
        on_exit: Callable[["TaskInstance", InstanceState, Any], None] | None = None,
        start_delay: float = 0.0,
    ) -> None:
        super().__init__(name)
        self.ctx = ctx
        self.node = node
        self.channels = channels
        self.mpi_channel = mpi_channel
        self.checkpoints = checkpoints
        self.on_exit = on_exit
        self.start_delay = start_delay

        self.state = InstanceState.PENDING
        self.result: Any = None
        self.error: Exception | None = None
        self.work_done = 0.0
        self.started_at: float | None = None
        self.finished_at: float | None = None

        self._gen: Any = None
        self._gen_started = False
        self._mailbox: list[tuple[str | None, str | int, str | None, Any]] = []
        self._parked_recv: Recv | None = None
        self._suspended = False
        self._held_resume: tuple[Any] | None = None
        self._computing = False
        self._compute_finish_at: float | None = None
        self._frozen_compute_remaining: float | None = None
        self._m_sends = None  # vMPI telemetry handles, cached at _begin
        self._m_compute = None

    def _trace_fields(self) -> dict[str, Any]:
        """trace_id/span_id/parent_span_id of this incarnation's span."""
        trace = self.ctx.trace
        return trace.fields() if trace is not None else {}

    # ------------------------------------------------------------- lifecycle

    def on_start(self) -> None:
        if self.state is not InstanceState.PENDING:
            return
        if self.start_delay > 0:
            # data-staging / binary-loading time before the program runs
            self.set_timer(self.start_delay, "stage-in")
        else:
            self._begin()

    def on_timer(self, key: str) -> None:
        if key == "stage-in":
            self._begin()
        elif key == "compute-done":
            self._computing = False
            _host_compute_delta(self.host, -1)
            self._resume(None)
        elif key == "compute-stalled":
            self._start_compute(self._stalled_work)
        elif key == "resume":
            self._resume(None)

    def _begin(self) -> None:
        if self.node.program is None:
            raise SimulationError(f"task {self.node.name!r} has no program attached")
        self.state = InstanceState.RUNNING
        self.started_at = self.now
        tel = self.sim.telemetry
        if tel is not None:
            self._m_sends = tel.counter("vmpi_sends_total", "vMPI Send syscalls")
            self._m_compute = tel.histogram(
                "compute_burst_seconds", "simulated duration of Compute bursts"
            )
        self.emit(
            "task.start",
            app=self.ctx.app,
            task=self.ctx.task,
            rank=self.ctx.rank,
            host=self.host.name if self.host else "?",
            **self._trace_fields(),
        )
        self._gen = self.node.program(self.ctx)
        self._step(None)

    # ------------------------------------------------------------ interpreter

    def _step(self, send_value: Any) -> None:
        """Advance the generator until it blocks or finishes."""
        while self.alive and not self.state.terminal:
            try:
                if self._gen_started:
                    syscall = self._gen.send(send_value)
                else:
                    self._gen_started = True
                    syscall = next(self._gen)
            except StopIteration as stop:
                self._finish(InstanceState.DONE, stop.value)
                return
            except Exception as err:  # noqa: BLE001 - task program fault
                self._finish(InstanceState.FAILED, err)
                return
            send_value = None

            if isinstance(syscall, Compute):
                self._start_compute(syscall.work)
                return
            if isinstance(syscall, Send):
                self._do_send(syscall)
                continue
            if isinstance(syscall, Recv):
                matched = self._match_mailbox(syscall)
                if matched is not None:
                    send_value = matched
                    continue
                self._parked_recv = syscall
                self.state = InstanceState.BLOCKED
                return
            if isinstance(syscall, Checkpoint):
                cost = self.checkpoints.put(
                    self.ctx.app, self.ctx.task, self.ctx.rank,
                    syscall.state, syscall.size, self.now,
                )
                self.emit("task.checkpoint", app=self.ctx.app, task=self.ctx.task,
                          rank=self.ctx.rank, size=syscall.size, **self._trace_fields())
                self.set_timer(cost, "resume")
                return
            if isinstance(syscall, Sleep):
                self.set_timer(max(0.0, syscall.seconds), "resume")
                return
            if isinstance(syscall, Emit):
                self.emit(syscall.category, **syscall.data)
                continue
            if isinstance(syscall, ReadFile):
                self.set_timer(self._file_read_cost(syscall), "resume")
                return
            if isinstance(syscall, WriteFile):
                machine = self.host.machine
                if machine is not None:
                    machine.files.add(syscall.name)
                self.set_timer(syscall.size * 1e-8, "resume")
                return
            raise SimulationError(
                f"task {self.node.name!r} yielded unknown syscall {syscall!r}"
            )

    def _resume(self, value: Any) -> None:
        """Continue the generator, honouring suspension."""
        if not self.alive or self.state.terminal:
            return
        if self._suspended:
            self._held_resume = (value,)
            return
        self.state = InstanceState.RUNNING
        self._step(value)

    # -------------------------------------------------------------- compute

    def _start_compute(self, work: float) -> None:
        machine = self.host.machine
        base = machine.effective_speed(self.now) if machine is not None else self.host.speed
        if base <= 1e-9:
            # machine saturated by local work: poll until capacity frees up
            self._stalled_work = work
            self.set_timer(self.STALL_RETRY, "compute-stalled")
            return
        contenders = _host_compute_count(self.host) + 1
        speed = base / contenders
        duration = work / speed
        if self._m_compute is not None:
            self._m_compute.observe(duration)
        self._computing = True
        _host_compute_delta(self.host, +1)
        self.work_done += work
        self._compute_finish_at = self.now + duration
        self.set_timer(duration, "compute-done")

    # ---------------------------------------------------------------- comms

    def _channel_for(self, name: str | None) -> Channel:
        if name is None:
            if self.mpi_channel is None:
                raise CommunicationError(
                    f"task {self.node.name!r} has no MPI communicator "
                    "(single-instance task sending by rank?)"
                )
            return self.mpi_channel
        try:
            return self.channels[name]
        except KeyError:
            raise CommunicationError(
                f"task {self.node.name!r} is not attached to channel {name!r}"
            ) from None

    def _do_send(self, syscall: Send) -> None:
        channel = self._channel_for(syscall.channel)
        if self._m_sends is not None:
            self._m_sends.inc()
        if isinstance(syscall.dst, int):
            to = str(syscall.dst)
            sender_port = str(self.ctx.rank)
        else:
            to = syscall.dst
            sender_port = f"{self.ctx.task}[{self.ctx.rank}]"
        channel.send(
            Port(sender_port, self.address, PortDirection.SEND),
            _Envelope(syscall.tag, syscall.data, self.ctx.trace),
            size=syscall.size,
            to=to,
            trace=self.ctx.trace,
        )

    def _match_mailbox(self, pattern: Recv) -> tuple[Any, Any] | None:
        """Find, pop, and return (src, data) for the first matching message."""
        for i, (chan, src, tag, data) in enumerate(self._mailbox):
            if self._matches(pattern, chan, src, tag):
                self._mailbox.pop(i)
                return (src, data)
        return None

    @staticmethod
    def _matches(pattern: Recv, chan: str | None, src: Any, tag: str | None) -> bool:
        if pattern.channel != chan:
            return False
        if pattern.src is not ANY and pattern.src != src:
            return False
        if pattern.tag is not None and pattern.tag != tag:
            return False
        return True

    def on_message(self, src: Address, payload: Any) -> None:
        if not isinstance(payload, ChannelDelivery):
            return
        envelope = payload.data
        tag = envelope.tag if isinstance(envelope, _Envelope) else None
        data = envelope.data if isinstance(envelope, _Envelope) else envelope
        sender_trace = envelope.trace if isinstance(envelope, _Envelope) else None
        if sender_trace is not None and self.ctx.trace is not None:
            # the causal hop: link the sender's span into our trace
            self.emit(
                "chan.recv",
                channel=payload.channel,
                from_span=sender_trace.span_id,
                size=payload.size,
                **self._trace_fields(),
            )
        if self.mpi_channel is not None and payload.channel == self.mpi_channel.name:
            chan_key: str | None = None
            try:
                source: Any = int(payload.sender_port)
            except ValueError:
                source = payload.sender_port
        else:
            chan_key = payload.channel
            source = payload.sender_port
        self._mailbox.append((chan_key, source, tag, data))
        if self._parked_recv is not None and not self._suspended:
            matched = self._match_mailbox(self._parked_recv)
            if matched is not None:
                self._parked_recv = None
                self._resume(matched)

    # ------------------------------------------------------------------ files

    def _file_read_cost(self, syscall: ReadFile) -> float:
        machine = self.host.machine
        local_cost = syscall.size * 1e-8  # ~100 MB/s local disk
        if machine is None or syscall.name in machine.files:
            return local_cost
        # remote fetch over the LAN, then cache locally
        network = self.host.network
        fetch = syscall.size / network.latency.bandwidth + network.latency.base_latency
        machine.files.add(syscall.name)
        self.emit("task.file_fetch", app=self.ctx.app, task=self.ctx.task,
                  rank=self.ctx.rank, file=syscall.name, size=syscall.size,
                  **self._trace_fields())
        return local_cost + fetch

    # ----------------------------------------------------------------- control

    def suspend(self) -> None:
        """Stop advancing the program (Stealth-style local-priority yield).
        An in-flight compute burst is frozen and its remaining time resumes
        on :meth:`resume` — the CPU really is taken away."""
        if self.state.terminal or self._suspended:
            return
        self._suspended = True
        if self._computing and self._compute_finish_at is not None:
            self._frozen_compute_remaining = max(0.0, self._compute_finish_at - self.now)
            self.cancel_timer("compute-done")
            self._computing = False
            _host_compute_delta(self.host, -1)
        self.state = InstanceState.SUSPENDED
        self.emit("task.suspend", app=self.ctx.app, task=self.ctx.task,
                  rank=self.ctx.rank, **self._trace_fields())

    def resume(self) -> None:
        """Undo :meth:`suspend`."""
        if self.state.terminal or not self._suspended:
            return
        self._suspended = False
        self.state = InstanceState.BLOCKED if self._parked_recv else InstanceState.RUNNING
        self.emit("task.resume", app=self.ctx.app, task=self.ctx.task,
                  rank=self.ctx.rank, **self._trace_fields())
        if self._frozen_compute_remaining is not None:
            remaining = self._frozen_compute_remaining
            self._frozen_compute_remaining = None
            self._computing = True
            _host_compute_delta(self.host, +1)
            self._compute_finish_at = self.now + remaining
            self.set_timer(remaining, "compute-done")
            return
        if self._held_resume is not None:
            value = self._held_resume[0]
            self._held_resume = None
            self._resume(value)
        elif self._parked_recv is not None:
            matched = self._match_mailbox(self._parked_recv)
            if matched is not None:
                self._parked_recv = None
                self._resume(matched)

    def kill(self, reason: str = "") -> None:
        """Terminate this copy ("kill the incarnation of the redundant task
        on that machine", §4.4)."""
        if self.state.terminal:
            return
        self._finish(InstanceState.KILLED, reason)
        if self.host is not None:
            self.host.kill(self.name)

    def _finish(self, state: InstanceState, outcome: Any) -> None:
        if self.state.terminal:
            return
        if self._computing:
            self._computing = False
            _host_compute_delta(self.host, -1)
            self.cancel_timer("compute-done")
        self.state = state
        self.finished_at = self.now
        if state is InstanceState.DONE:
            self.result = outcome
        elif state is InstanceState.FAILED:
            self.error = outcome
        self.emit(
            f"task.{state.value}",
            app=self.ctx.app,
            task=self.ctx.task,
            rank=self.ctx.rank,
            host=self.host.name if self.host else "?",
            **self._trace_fields(),
        )
        if self.on_exit is not None:
            self.on_exit(self, state, outcome)

    def on_crash(self) -> None:
        if not self.state.terminal:
            if self._computing:
                self._computing = False
                _host_compute_delta(self.host, -1)
            self.state = InstanceState.FAILED
            self.error = SimulationError(f"host {self.host.name} crashed")
            self.finished_at = self.now
            self.emit("task.host_crashed", app=self.ctx.app, task=self.ctx.task,
                      rank=self.ctx.rank, **self._trace_fields())
            if self.on_exit is not None:
                self.on_exit(self, InstanceState.FAILED, self.error)
