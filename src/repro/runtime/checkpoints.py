"""Checkpoint records (§4.4, "process migration through checkpointing").

The store is logically replicated (any machine can restart a task from it);
we model write cost at checkpoint time and restore cost at restart time,
charged by the migration scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class CheckpointRecord:
    """One saved checkpoint."""

    app: str
    task: str
    rank: int
    state: Any
    size: int
    time: float


class CheckpointStore:
    """Latest-checkpoint-per-instance storage.

    Attributes:
        write_seconds_per_byte: cost charged to the running task at
            ``Checkpoint`` syscalls.
        restore_seconds_per_byte: cost charged when a migration scheme
            instantiates "the new incarnation from the checkpoint record".
    """

    def __init__(
        self,
        write_seconds_per_byte: float = 2e-8,
        restore_seconds_per_byte: float = 2e-8,
    ) -> None:
        self.write_seconds_per_byte = write_seconds_per_byte
        self.restore_seconds_per_byte = restore_seconds_per_byte
        self._records: dict[tuple[str, str, int], CheckpointRecord] = {}
        self.writes = 0

    def put(self, app: str, task: str, rank: int, state: Any, size: int, time: float) -> float:
        """Store a checkpoint; returns the write cost in seconds."""
        self._records[(app, task, rank)] = CheckpointRecord(app, task, rank, state, size, time)
        self.writes += 1
        return size * self.write_seconds_per_byte

    def get(self, app: str, task: str, rank: int) -> CheckpointRecord | None:
        return self._records.get((app, task, rank))

    def restore_cost(self, record: CheckpointRecord) -> float:
        return record.size * self.restore_seconds_per_byte

    def drop_app(self, app: str) -> None:
        """Discard all records of a finished application."""
        for key in [k for k in self._records if k[0] == app]:
            del self._records[key]

    def __len__(self) -> int:
        return len(self._records)
