"""The EXM runtime: task execution, applications, and the runtime manager.

"The runtime manager will be responsible for managing the execution of a
VCE application. The basic service provided by this level is selecting the
'best' machines on which to run the various tasks, loading the
corresponding binaries, and initiating execution. ... While the application
is running this layer will migrate tasks to less loaded machines, and
provide fault tolerance, if required or requested by the user." (§3.1.2)

- :class:`TaskInstance` — one running copy of a task: a simulated process
  that drives the task's program generator, interpreting the vMPI syscalls
  (compute under background load and co-resident contention, channel sends
  and receives, checkpoints, file I/O).
- :class:`CheckpointStore` — the checkpoint records of §4.4.
- :class:`Application` — bookkeeping for one submitted task graph.
- :class:`RuntimeManager` — dispatch according to a placement, precedence
  tracking, data staging between hosts, completion/termination, and the
  hooks migration and load-balancing policies act through.
"""

from repro.runtime.checkpoints import CheckpointStore, CheckpointRecord
from repro.runtime.instance import InstanceState, TaskInstance
from repro.runtime.app import Application, InstanceRecord, AppStatus
from repro.runtime.manager import Placement, RuntimeManager
from repro.runtime.local import (
    LocalBackend,
    LocalContext,
    LocalExecutionError,
    round_robin_local_placement,
)

__all__ = [
    "TaskInstance",
    "InstanceState",
    "CheckpointStore",
    "CheckpointRecord",
    "Application",
    "InstanceRecord",
    "AppStatus",
    "RuntimeManager",
    "Placement",
    "LocalBackend",
    "LocalContext",
    "LocalExecutionError",
    "round_robin_local_placement",
]
