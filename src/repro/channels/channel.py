"""Channel routing and management.

A :class:`Channel` records its attached send ports, receive ports (by port
name), and any interposer stages spliced into it. Sends traverse the
interposer chain, then fan out to receive ports (all of them, or one named
port for a directed send). Every hop is a real network message and pays the
latency model.

The :class:`ChannelManager` is the runtime's bookkeeping for channel
creation, port attachment, splitting, and redirection. It is a simulation-
level object (one per VCE), matching the paper's "the runtime system will be
responsible for the creation, placement, and destruction of ports";
rebinding state is considered control-plane and takes effect immediately,
while the data path always pays wire costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.channels.port import Port, PortDirection
from repro.netsim.host import Address
from repro.util.errors import CommunicationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.channels.interpose import Interposer
    from repro.netsim.network import Network
    from repro.trace.context import TraceContext


@dataclass(frozen=True, slots=True)
class ChannelDelivery:
    """The payload wrapper delivered to a receiving process.

    Attributes:
        channel: channel name.
        port: the receive port this copy is addressed to.
        sender_port: name of the sending port.
        data: the application payload.
        size: wire size in bytes.
    """

    channel: str
    port: str
    sender_port: str
    data: Any
    size: int


class Channel:
    """One logical transport medium (see module docstring)."""

    def __init__(self, name: str, network: "Network") -> None:
        self.name = name
        self.network = network
        self._senders: dict[str, Port] = {}
        self._receivers: dict[str, Port] = {}
        self._stages: list["Interposer"] = []
        self.messages = 0
        self.bytes = 0
        self.dropped_no_receiver = 0
        # live-telemetry handles, cached per channel (hot path)
        tel = network.sim.telemetry
        self._m_messages = (
            tel.counter("chan_messages_total", "channel sends")
            if tel is not None else None
        )
        self._m_bytes = (
            tel.counter("chan_bytes_total", "channel payload bytes")
            if tel is not None else None
        )

    # -- attachment -----------------------------------------------------------

    def attach(self, port: Port) -> Port:
        hb = self.network.sim.hb
        if hb is not None:
            hb.write(f"chan:{self.name}", "R005", "channel.attach")
        table = self._senders if port.direction is PortDirection.SEND else self._receivers
        if port.name in table:
            raise CommunicationError(
                f"channel {self.name!r}: duplicate {port.direction.value} port {port.name!r}"
            )
        table[port.name] = port
        return port

    def detach(self, port_name: str) -> None:
        hb = self.network.sim.hb
        if hb is not None:
            hb.write(f"chan:{self.name}", "R005", "channel.detach")
        self._senders.pop(port_name, None)
        self._receivers.pop(port_name, None)

    def rebind(self, port_name: str, new_owner: Address) -> Port:
        """Repoint a receive port at a new process (migration support).

        "these libraries will provide the runtime manager with the ability
        to monitor, redirect, and move connections between tasks" (§4.2).
        """
        old = self._receivers.get(port_name)
        if old is None:
            raise CommunicationError(
                f"channel {self.name!r}: cannot rebind unknown port {port_name!r}"
            )
        hb = self.network.sim.hb
        if hb is not None:
            # rebind targets an existing port by name (see _bind_port's
            # membership check); racing an attach of a different port is safe
            hb.write(f"chan:{self.name}", "R005", "channel.rebind")  # hbrace: ok(R005)
        port = Port(port_name, new_owner, PortDirection.RECEIVE)
        self._receivers[port_name] = port
        return port

    @property
    def receive_ports(self) -> list[Port]:
        return list(self._receivers.values())

    @property
    def send_ports(self) -> list[Port]:
        return list(self._senders.values())

    # -- splitting ----------------------------------------------------------------

    def split(self, interposer: "Interposer") -> None:
        """Splice an interposer task between senders and receivers. Multiple
        splits chain in insertion order (sender-side first)."""
        if interposer.host is None:
            raise CommunicationError(
                f"interposer {interposer.name!r} must be spawned on a host before splitting"
            )
        interposer.bind_channel(self)
        self._stages.append(interposer)

    @property
    def stages(self) -> list["Interposer"]:
        return list(self._stages)

    # -- data path ------------------------------------------------------------------

    def send(
        self,
        sender: Port | Address,
        data: Any,
        size: int = 256,
        to: str | None = None,
        trace: "TraceContext | None" = None,
    ) -> None:
        """Send *data* into the channel.

        Without *to*, every receive port gets a copy (group delivery); with
        *to*, only the named port does. "Clients may be unaware of whether
        messages are being received by groups or individuals."

        *trace* is the sender's span: traced sends are logged as
        ``chan.send`` records so the trace assembler can follow an
        application's data path hop by hop.
        """
        if isinstance(sender, Port):
            sender_addr, sender_port = sender.owner, sender.name
        else:
            sender_addr, sender_port = sender, str(sender)
        self.messages += 1
        self.bytes += size
        if self._m_messages is not None:
            self._m_messages.inc()
            self._m_bytes.inc(size)
        if trace is not None:
            self.network.sim.emit(
                "chan.send",
                str(sender_addr),
                channel=self.name,
                to=to,
                size=size,
                **trace.fields(),
            )
        self._route(sender_addr, sender_port, data, size, to, stage=0)

    def _route(
        self,
        from_addr: Address,
        sender_port: str,
        data: Any,
        size: int,
        to: str | None,
        stage: int,
    ) -> None:
        """Advance a message to interposer *stage*, or fan out if past the
        last stage. Called by Channel.send and by interposers forwarding."""
        if stage < len(self._stages):
            interposer = self._stages[stage]
            self.network.send(
                from_addr,
                interposer.address,
                _StageDelivery(self.name, sender_port, data, size, to, stage),
                size=size,
            )
            return
        hb = self.network.sim.hb
        if hb is not None:
            hb.read(f"chan:{self.name}", "R005", "channel.route")
        targets = (
            [self._receivers[to]]
            if to is not None and to in self._receivers
            else list(self._receivers.values())
            if to is None
            else []
        )
        if not targets:
            self.dropped_no_receiver += 1
            return
        for port in targets:
            self.network.send(
                from_addr,
                port.owner,
                ChannelDelivery(self.name, port.name, sender_port, data, size),
                size=size,
            )


@dataclass(frozen=True, slots=True)
class _StageDelivery:
    """Internal wrapper addressed to an interposer stage."""

    channel: str
    sender_port: str
    data: Any
    size: int
    to: str | None
    stage: int


class ChannelManager:
    """Creates and tracks the channels of one VCE."""

    def __init__(self, network: "Network") -> None:
        self.network = network
        self._channels: dict[str, Channel] = {}

    def create(self, name: str) -> Channel:
        if name in self._channels:
            raise CommunicationError(f"channel {name!r} already exists")
        channel = Channel(name, self.network)
        self._channels[name] = channel
        return channel

    def get(self, name: str) -> Channel:
        try:
            return self._channels[name]
        except KeyError:
            raise CommunicationError(f"unknown channel {name!r}") from None

    def get_or_create(self, name: str) -> Channel:
        return self._channels[name] if name in self._channels else self.create(name)

    def destroy(self, name: str) -> None:
        self._channels.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._channels

    def __len__(self) -> int:
        return len(self._channels)

    def rebind_everywhere(self, old_owner: Address, new_owner: Address) -> int:
        """Repoint every receive port owned by *old_owner* to *new_owner*
        across all channels. Returns the number of ports moved. This is the
        one-call connection handoff used when a task migrates."""
        moved = 0
        for channel in self._channels.values():
            for port in channel.receive_ports:
                if port.owner == old_owner:
                    channel.rebind(port.name, new_owner)
                    moved += 1
        return moved
