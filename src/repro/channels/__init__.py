"""Channels and ports — the VCE communication substrate (§4.2).

"A channel is a logical transport medium that connects possibly many tasks
sending and receiving messages. Channels are distinct from the tasks that
are connected to them, and thus readily support messaging directed to groups
and/or single tasks without requiring that clients use different forms of
message addressing ... The runtime system may split channels, interposing
other tasks between senders and receivers to deal with issues such as
authentication or data conversion. Channels will be connected to tasks
through ports. The runtime system will be responsible for the creation,
placement, and destruction of ports."

Key properties implemented here:

- group/individual transparency: ``Channel.send`` multicasts to every
  attached receive port; a directed send names a port, but the *sender call
  shape is identical*;
- splitting: interposer tasks (authentication, data conversion) are spliced
  between senders and receivers and charge per-message processing delay;
- redirection: ``rebind`` repoints a receive port at a new process address —
  the hook migration and redundant execution use to move endpoints without
  the peers noticing.
"""

from repro.channels.port import Port, PortDirection
from repro.channels.channel import Channel, ChannelDelivery, ChannelManager
from repro.channels.interpose import (
    AuthenticationInterposer,
    DataConversionInterposer,
    Interposer,
)
from repro.channels.monitor import ChannelMonitor, ChannelSample

__all__ = [
    "ChannelMonitor",
    "ChannelSample",
    "Port",
    "PortDirection",
    "Channel",
    "ChannelDelivery",
    "ChannelManager",
    "Interposer",
    "AuthenticationInterposer",
    "DataConversionInterposer",
]
