"""Interposer tasks for channel splitting.

"The runtime system may split channels, interposing other tasks between
senders and receivers to deal with issues such as authentication or data
conversion." (§4.2)

An :class:`Interposer` is a real simulated process: messages detour through
its host (paying wire latency twice) and are charged a processing delay
before being forwarded. Two concrete interposers are provided:

- :class:`AuthenticationInterposer` — drops messages from senders not on
  its allow-list;
- :class:`DataConversionInterposer` — models marshalling between
  architectures (e.g. byte-order/word-size conversion between a workstation
  and a SIMD machine): charges time proportional to message size and may
  change the message size.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.channels.channel import Channel, _StageDelivery
from repro.netsim.host import Address
from repro.netsim.process import SimProcess
from repro.util.errors import CommunicationError


class Interposer(SimProcess):
    """Base interposer: applies :meth:`transform` then forwards.

    Subclass and override ``transform`` (and optionally
    ``processing_delay``). Returning ``None`` from ``transform`` drops the
    message.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._channel: Channel | None = None
        self.processed = 0
        self.dropped = 0

    def bind_channel(self, channel: Channel) -> None:
        if self._channel is not None and self._channel is not channel:
            raise CommunicationError(
                f"interposer {self.name!r} already bound to channel {self._channel.name!r}"
            )
        self._channel = channel

    # -- policy hooks -----------------------------------------------------------

    def transform(self, sender_port: str, data: Any, size: int) -> tuple[Any, int] | None:
        """Return (new_data, new_size), or None to drop. Default: identity."""
        return data, size

    def processing_delay(self, size: int) -> float:
        """Seconds of local work charged per message. Default: none."""
        return 0.0

    # -- plumbing -------------------------------------------------------------------

    def on_message(self, src: Address, payload: Any) -> None:
        if not isinstance(payload, _StageDelivery) or self._channel is None:
            return
        delivery = payload
        result = self.transform(delivery.sender_port, delivery.data, delivery.size)
        if result is None:
            self.dropped += 1
            self.emit("channel.interposer_drop", channel=delivery.channel)
            return
        new_data, new_size = result
        self.processed += 1
        delay = self.processing_delay(delivery.size)
        channel = self._channel

        def forward() -> None:
            channel._route(
                self.address,
                delivery.sender_port,
                new_data,
                new_size,
                delivery.to,
                delivery.stage + 1,
            )

        if delay > 0:
            self.sim.schedule(delay, forward)
        else:
            forward()


class AuthenticationInterposer(Interposer):
    """Drops messages whose sender port is not on the allow-list."""

    def __init__(self, name: str, allowed_senders: set[str]) -> None:
        super().__init__(name)
        self.allowed_senders = set(allowed_senders)

    def transform(self, sender_port: str, data: Any, size: int) -> tuple[Any, int] | None:
        if sender_port not in self.allowed_senders:
            return None
        return data, size


class DataConversionInterposer(Interposer):
    """Architecture data conversion: charges time per byte and may inflate
    or shrink the representation (``size_factor``)."""

    def __init__(
        self,
        name: str,
        seconds_per_byte: float = 1e-8,
        size_factor: float = 1.0,
        convert: Callable[[Any], Any] | None = None,
    ) -> None:
        super().__init__(name)
        self.seconds_per_byte = seconds_per_byte
        self.size_factor = size_factor
        self.convert = convert

    def transform(self, sender_port: str, data: Any, size: int) -> tuple[Any, int] | None:
        new_data = self.convert(data) if self.convert is not None else data
        return new_data, max(1, int(size * self.size_factor))

    def processing_delay(self, size: int) -> float:
        return size * self.seconds_per_byte
