"""Channel monitoring (§4.2).

"these libraries will provide the runtime manager with the ability to
**monitor**, redirect, and move connections between tasks" — redirection
lives on :class:`~repro.channels.channel.Channel`; this module adds the
monitoring side: a :class:`ChannelMonitor` samples every channel's
counters on a fixed period and logs per-interval message/byte rates, which
the metrics layer (and load-balancing policies that want to co-locate
chatty endpoints) can read back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.channels.channel import ChannelManager
    from repro.netsim.kernel import Simulator


@dataclass(frozen=True, slots=True)
class ChannelSample:
    """One channel's traffic during one sampling interval."""

    channel: str
    time: float
    messages_per_s: float
    bytes_per_s: float
    drops: int


class ChannelMonitor:
    """Periodic sampler over a :class:`ChannelManager`'s channels."""

    def __init__(
        self,
        sim: "Simulator",
        channels: "ChannelManager",
        interval: float = 1.0,
    ) -> None:
        self.sim = sim
        self.channels = channels
        self.interval = interval
        self._running = False
        self._last: dict[str, tuple[int, int, int]] = {}  # msgs, bytes, drops
        self.samples: list[ChannelSample] = []

    def start(self) -> "ChannelMonitor":
        if not self._running:
            self._running = True
            self.sim.schedule(self.interval, self._tick, daemon=True)
        return self

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        for name in list(self.channels._channels):
            channel = self.channels._channels[name]
            prev_m, prev_b, prev_d = self._last.get(name, (0, 0, 0))
            dm = channel.messages - prev_m
            db = channel.bytes - prev_b
            dd = channel.dropped_no_receiver - prev_d
            self._last[name] = (channel.messages, channel.bytes, channel.dropped_no_receiver)
            if dm or db or dd:
                sample = ChannelSample(
                    name, now, dm / self.interval, db / self.interval, dd
                )
                self.samples.append(sample)
                self.sim.emit(
                    "channel.sample",
                    name,
                    messages_per_s=sample.messages_per_s,
                    bytes_per_s=sample.bytes_per_s,
                    drops=dd,
                )
        self.sim.schedule(self.interval, self._tick, daemon=True)

    # ------------------------------------------------------------- queries

    def busiest(self, n: int = 5) -> list[tuple[str, float]]:
        """Channels ranked by peak observed bytes/s."""
        peaks: dict[str, float] = {}
        for sample in self.samples:
            peaks[sample.channel] = max(peaks.get(sample.channel, 0.0), sample.bytes_per_s)
        return sorted(peaks.items(), key=lambda kv: -kv[1])[:n]

    def rate_series(self, channel: str) -> list[tuple[float, float]]:
        """(time, bytes/s) samples for one channel."""
        return [(s.time, s.bytes_per_s) for s in self.samples if s.channel == channel]
