"""Ports: a task's named attachment points to channels."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.netsim.host import Address


class PortDirection(enum.Enum):
    SEND = "send"
    RECEIVE = "receive"


@dataclass(frozen=True, slots=True)
class Port:
    """A named, directed endpoint owned by a process.

    The *name* identifies the port within its channel (directed sends name
    it); the *owner* is the current process address — rebinding a port
    during migration changes the owner recorded in the channel, not the
    port value held by senders.
    """

    name: str
    owner: Address
    direction: PortDirection

    def __str__(self) -> str:  # pragma: no cover
        arrow = "->" if self.direction is PortDirection.SEND else "<-"
        return f"Port({self.name}{arrow}{self.owner})"
