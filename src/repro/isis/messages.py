"""Wire messages of the virtual-synchrony protocol.

All are plain frozen dataclasses; the :class:`~repro.isis.member.IsisMember`
dispatches on type. ``view_id`` fields let receivers discard stale traffic
from superseded views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.isis.vclock import VectorClock
from repro.isis.views import View
from repro.netsim.host import Address

# -- membership -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class JoinReq:
    """A process asks to join; sent to a contact member and forwarded to the
    coordinator."""

    joiner: Address


@dataclass(frozen=True, slots=True)
class LeaveReq:
    """Graceful departure announcement."""

    leaver: Address


@dataclass(frozen=True, slots=True)
class Flush:
    """Phase 1 of a view change: the coordinator announces the proposed view
    and asks survivors to stop multicasting and report recent messages."""

    proposed: View
    change_id: int


@dataclass(frozen=True, slots=True)
class FlushOk:
    """A member's phase-1 acknowledgement, carrying its replay window of
    recently delivered multicasts (msg_id -> replayable record)."""

    sender: Address
    change_id: int
    recent: tuple["ReplayRecord", ...] = ()


@dataclass(frozen=True, slots=True)
class ReplayRecord:
    """A delivered multicast carried through a flush so that members that
    missed it can still deliver it in the old view's scope."""

    msg_id: str
    sender: Address
    kind: str
    payload: Any


@dataclass(frozen=True, slots=True)
class NewView:
    """Phase 2: install the view. ``replay`` is the union of survivors'
    windows; installers deliver anything they have not yet delivered.
    ``state`` carries the coordinator's application-state snapshot to
    *joiners* only (Isis state transfer); None for surviving members."""

    view: View
    replay: tuple[ReplayRecord, ...] = ()
    state: Any = None


# -- failure detection -------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """Member -> coordinator liveness signal."""

    sender: Address
    view_id: int


@dataclass(frozen=True, slots=True)
class CoordBeat:
    """Coordinator -> members liveness signal. Piggybacks the sequencer's
    high-water mark so members can detect (and NACK) lost tail AbcastSeq
    messages even when no later sequence number ever arrives."""

    sender: Address
    view_id: int
    high_seq: int = 0


@dataclass(frozen=True, slots=True)
class Evicted:
    """Coordinator -> a process that heartbeats but is not a member: you
    were removed from the group (e.g. on the losing side of a healed
    partition); clear your view and rejoin."""

    group_view_id: int
    coordinator: Address


@dataclass(frozen=True, slots=True)
class Suspect:
    """A member reports a peer it believes has failed (e.g. a reply never
    arrived); the coordinator verifies via its own timeout bookkeeping."""

    suspect: Address
    reporter: Address


# -- ordered multicast ----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CBcastMsg:
    """A causal multicast: carries the sender's vector clock."""

    msg_id: str
    sender: Address
    view_id: int
    clock: VectorClock
    kind: str
    payload: Any


@dataclass(frozen=True, slots=True)
class CBcastAck:
    """Receiver -> sender: a CBCAST copy arrived (reliability layer).
    Unacked copies are retransmitted periodically until acked or the view
    changes — tolerance for lossy links beyond the paper's LAN."""

    msg_id: str
    sender: Address


@dataclass(frozen=True, slots=True)
class AbcastNack:
    """Receiver -> sequencer: sequence numbers from *from_seq* up are
    missing in my holdback; please re-send from your history."""

    from_seq: int
    requester: Address
    view_id: int


@dataclass(frozen=True, slots=True)
class AbcastReq:
    """Sender -> sequencer (coordinator): please order this message."""

    msg_id: str
    sender: Address
    view_id: int
    kind: str
    payload: Any


@dataclass(frozen=True, slots=True)
class AbcastSeq:
    """Sequencer -> members: message with its global sequence number."""

    seq: int
    msg_id: str
    sender: Address
    view_id: int
    kind: str
    payload: Any


# -- request / reply (Isis bcast-and-collect) -------------------------------------


@dataclass(frozen=True, slots=True)
class GroupRequest:
    """Payload of a ``group_request`` multicast."""

    req_id: str
    requester: Address
    body: Any


@dataclass(frozen=True, slots=True)
class GroupReply:
    """A member's unicast answer to a :class:`GroupRequest`."""

    req_id: str
    sender: Address
    body: Any
