"""The Isis-style group member actor.

:class:`IsisMember` gives subclasses the toolkit facilities the paper's
prototype uses:

- ``join`` / ``leave`` / automatic failure eviction, with coordinator-driven
  two-phase view changes (Flush, NewView);
- ``cbcast`` — causal multicast (vector clocks, BSS delivery rule);
- ``abcast`` — totally-ordered multicast (coordinator as sequencer);
- ``group_request`` / ``reply`` — the Isis *bcast and collect nwanted
  replies* primitive used verbatim by the scheduler ("The prototype uses
  Isis bcast and reply primitives for communication between the execution
  program, group leaders, and group members");
- heartbeat failure detection with rank-staggered takeover so "the oldest
  surviving member of the group assume[s] the role of group leader".

Concurrency note: everything runs inside one deterministic simulator, so no
locking is needed; correctness concerns are protocol-level (stale views,
crashed coordinators, messages from superseded views).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.isis.messages import (
    AbcastReq,
    AbcastSeq,
    AbcastNack,
    CBcastAck,
    CBcastMsg,
    CoordBeat,
    Evicted,
    Flush,
    FlushOk,
    GroupReply,
    GroupRequest,
    Heartbeat,
    JoinReq,
    LeaveReq,
    NewView,
    ReplayRecord,
    Suspect,
)
from repro.isis.vclock import VectorClock
from repro.isis.views import View
from repro.netsim.host import Address
from repro.netsim.process import SimProcess
from repro.util.errors import MembershipError

#: Sentinel for ``group_request(n_wanted=ALL)``: wait for a reply from every
#: member of the view in force when the request was issued.
ALL = -1
#: Sentinel: wait for a strict majority of the view.
MAJORITY = -2


@dataclass
class IsisConfig:
    """Protocol timing and sizing knobs.

    Attributes:
        hb_interval: heartbeat period (s).
        hb_timeout: silence after which a member is declared failed (s).
        flush_timeout: how long the coordinator waits for FlushOk before
            treating non-responders as failed (s).
        join_retry: joiner's retransmission period (s).
        request_timeout: default ``group_request`` reply-collection timeout.
        replay_window: how many recently delivered multicasts each member
            retains for re-delivery during a flush (bounded stand-in for
            Isis stability tracking).
        control_size: wire size charged to protocol messages (bytes).
        require_majority: when True, a view change only installs if a
            strict majority of the previous view survives into the new one
            — the quorum rule that prevents split-brain under network
            partitions (an extension beyond the paper's LAN prototype).
            Members on a minority side stall until the partition heals,
            then learn they were evicted and rejoin.
    """

    hb_interval: float = 0.5
    hb_timeout: float = 2.0
    flush_timeout: float = 1.5
    join_retry: float = 1.0
    request_timeout: float = 3.0
    replay_window: int = 64
    control_size: int = 128
    require_majority: bool = False
    retransmit_interval: float = 0.75
    abcast_history: int = 256


@dataclass
class _PendingRequest:
    req_id: str
    wanted: int
    replies: list[tuple[Address, Any]]
    on_done: Callable[[list[tuple[Address, Any]], bool], None]
    done: bool = False


@dataclass
class _ViewChange:
    """Coordinator-side state of an in-progress view change."""

    proposed: View
    waiting_on: set[Address]
    replay: dict[str, ReplayRecord]


class IsisMember(SimProcess):
    """A process-group member. Subclass and override the ``on_*`` hooks.

    Args:
        name: process name (unique per host).
        group: group name (informational; one member object serves one group).
        contacts: addresses of existing members to join through; ``None`` or
            empty founds a new group as its first (and thus coordinator)
            member.
        config: protocol knobs.
    """

    def __init__(
        self,
        name: str,
        group: str,
        contacts: list[Address] | None = None,
        config: IsisConfig | None = None,
    ) -> None:
        super().__init__(name)
        self.group = group
        self.config = config or IsisConfig()
        self._contacts = list(contacts or [])
        self._contact_idx = 0

        self.view: View | None = None
        self._left = False

        # causal multicast state (reset each view)
        self._vc = VectorClock()
        self._cb_holdback: list[CBcastMsg] = []
        self._delivered_ids: set[str] = set()
        self._replay: deque[ReplayRecord] = deque(maxlen=self.config.replay_window)

        # total order state (reset each view)
        self._ab_next_deliver = 0
        self._ab_holdback: dict[int, AbcastSeq] = {}
        self._ab_next_assign = 0  # sequencer counter (coordinator only)

        # reliability layer (lossy-link tolerance; reset each view)
        self._received_ids: set[str] = set()
        self._unacked: dict[str, tuple[CBcastMsg, set[Address], int]] = {}
        self._ab_history: deque[AbcastSeq] = deque(maxlen=self.config.abcast_history)
        self._ab_pending: dict[str, tuple[AbcastReq, int]] = {}  # unsequenced sends
        self._ab_sequenced: set[str] = set()  # sequencer-side dedup
        self._ab_known_high = 0  # sequencer high-water mark (from CoordBeat)

        # view-change state
        self._change: _ViewChange | None = None
        self._flushing = False
        self._queued_joins: list[Address] = []
        self._queued_leaves: set[Address] = set()
        self._queued_mcasts: list[tuple[str, Any, bool]] = []  # (kind, payload, ordered)
        self._acting_coordinator = False

        # failure detection
        self._last_seen: dict[Address, float] = {}
        self._last_coord_seen = 0.0
        # group-merge machinery: departed members we occasionally probe so
        # that concurrently-formed rival groups discover each other
        self._alumni: dict[Address, int] = {}  # address -> probes sent
        self._hb_ticks = 0

        # request/reply
        self._pending_requests: dict[str, _PendingRequest] = {}

    # ------------------------------------------------------------------ API

    @property
    def joined(self) -> bool:
        return self.view is not None and not self._left

    @property
    def is_coordinator(self) -> bool:
        return (
            self.view is not None
            and not self._left
            and (self.view.coordinator == self.address or self._acting_coordinator)
        )

    def cbcast(self, kind: str, payload: Any, size: int = 256) -> None:
        """Causally ordered multicast to the group (including self)."""
        self._require_joined()
        if self._flushing:
            self._queued_mcasts.append((kind, payload, False))
            return
        assert self.view is not None
        self._vc.increment(self.address)
        msg = CBcastMsg(
            msg_id=self.sim.ids.next(f"cb.{self.name}"),
            sender=self.address,
            view_id=self.view.view_id,
            clock=self._vc.snapshot(),
            kind=kind,
            payload=payload,
        )
        # Fan out in view order (never set order): the send sequence feeds
        # the network's deterministic event schedule, so it must not depend
        # on hash-randomised set iteration.
        me = self.address
        pending = set()
        for member in self.view.members:
            if member != me:
                pending.add(member)
                self.send(member, msg, size=size)
        if pending:
            self._unacked[msg.msg_id] = (msg, pending, size)
            if not self.has_timer("rtx"):
                self.set_timer(self.config.retransmit_interval, "rtx")
        self._deliver_cbcast(msg)

    def abcast(self, kind: str, payload: Any, size: int = 256) -> None:
        """Totally ordered multicast (sequenced by the coordinator)."""
        self._require_joined()
        if self._flushing:
            self._queued_mcasts.append((kind, payload, True))
            return
        assert self.view is not None
        req = AbcastReq(
            msg_id=self.sim.ids.next(f"ab.{self.name}"),
            sender=self.address,
            view_id=self.view.view_id,
            kind=kind,
            payload=payload,
        )
        self._ab_pending[req.msg_id] = (req, size)
        if not self.has_timer("rtx"):
            self.set_timer(self.config.retransmit_interval, "rtx")
        if self.is_coordinator:
            self._sequence_abcast(req)
        else:
            self.send(self.view.coordinator, req, size=size)

    def group_request(
        self,
        body: Any,
        n_wanted: int = ALL,
        timeout: float | None = None,
        on_done: Callable[[list[tuple[Address, Any]], bool], None] | None = None,
    ) -> str:
        """Isis bcast-and-reply: multicast *body*; collect replies.

        ``on_done(replies, timed_out)`` fires once, either when ``n_wanted``
        replies arrived (``ALL``/``MAJORITY`` resolve against the current
        view) or at timeout with whatever has arrived. Returns the request
        id.
        """
        self._require_joined()
        assert self.view is not None
        if n_wanted == ALL:
            wanted = len(self.view)
        elif n_wanted == MAJORITY:
            wanted = self.view.majority()
        else:
            wanted = n_wanted
        if wanted <= 0:
            raise MembershipError(f"n_wanted must resolve positive, got {wanted}")
        req_id = self.sim.ids.next(f"req.{self.name}")
        pending = _PendingRequest(req_id, wanted, [], on_done or (lambda r, t: None))
        self._pending_requests[req_id] = pending
        self.set_timer(timeout if timeout is not None else self.config.request_timeout, f"req:{req_id}")
        self.cbcast("__request__", GroupRequest(req_id, self.address, body))
        return req_id

    def leave(self) -> None:
        """Gracefully depart the group."""
        if not self.joined:
            return
        assert self.view is not None
        self._left = True
        self.cancel_timer("hb")
        if self.view.coordinator == self.address or self._acting_coordinator:
            # Coordinator hands off by running one last view change that
            # excludes itself; the next-oldest member leads the new view.
            self._queued_leaves.add(self.address)
            self._maybe_start_view_change()
        else:
            self.send(self.view.coordinator, LeaveReq(self.address), size=self.config.control_size)
        self.emit("isis.leave", group=self.group)

    # ----------------------------------------------------------------- hooks

    def on_view_change(self, view: View, joined: list[Address], left: list[Address]) -> None:
        """Membership changed. Override in subclasses."""

    def on_cbcast(self, sender: Address, kind: str, payload: Any) -> None:
        """A causal multicast was delivered. Override in subclasses."""

    def on_abcast(self, sender: Address, kind: str, payload: Any) -> None:
        """A totally-ordered multicast was delivered. Override."""

    def on_group_request(
        self, requester: Address, body: Any, reply: Callable[[Any], None]
    ) -> None:
        """A ``group_request`` arrived; call ``reply(value)`` to answer (or
        don't — e.g. an overloaded daemon that declines to bid)."""

    def on_join_failed(self) -> None:
        """All join attempts are failing (no contact responded). Default:
        keep retrying; override to give up."""

    def get_group_state(self) -> Any:
        """Coordinator-side state-transfer hook: return a snapshot to hand
        to members joining in the next view (None = no state transfer)."""
        return None

    def on_state_received(self, state: Any) -> None:
        """Joiner-side state-transfer hook: called with the coordinator's
        snapshot just before ``on_view_change`` for the joining view."""

    # ------------------------------------------------------------- lifecycle

    def on_start(self) -> None:
        if not self._contacts:
            self._install(View(1, (self.address,)), replay=())
        else:
            self._try_join()

    def _try_join(self) -> None:
        if self.joined or not self.alive:
            return
        contact = self._contacts[self._contact_idx % len(self._contacts)]
        self._contact_idx += 1
        self.send(contact, JoinReq(self.address), size=self.config.control_size)
        self.set_timer(self.config.join_retry, "join-retry")
        if self._contact_idx > 0 and self._contact_idx % (2 * len(self._contacts)) == 0:
            self.on_join_failed()

    def _require_joined(self) -> None:
        if not self.joined:
            raise MembershipError(f"{self.address} is not a member of group {self.group!r}")

    # ------------------------------------------------------------ dispatch

    def on_message(self, src: Address, payload: Any) -> None:
        if self._left:
            return
        if isinstance(payload, JoinReq):
            self._on_join_req(payload)
        elif isinstance(payload, LeaveReq):
            self._on_leave_req(payload)
        elif isinstance(payload, Flush):
            self._on_flush(src, payload)
        elif isinstance(payload, FlushOk):
            self._on_flush_ok(payload)
        elif isinstance(payload, NewView):
            self._on_new_view(payload)
        elif isinstance(payload, Heartbeat):
            self._last_seen[payload.sender] = self.now
            # a live heartbeat retracts any queued suspicion (partition heal)
            self._queued_leaves.discard(payload.sender)
            if self.view is not None and payload.sender not in self.view:
                # a non-member is heartbeating us: it was evicted (losing
                # side of a partition, or a superseded rival group) and
                # should rejoin through our coordinator
                self.send(
                    payload.sender,
                    Evicted(self.view.view_id, self.view.coordinator),
                    size=self.config.control_size,
                )
        elif isinstance(payload, CoordBeat):
            if self.view is None:
                pass
            elif (
                self.view.coordinator == self.address
                and payload.sender != self.address
                and payload.sender not in self.view
            ):
                # another coordinator exists (concurrent takeovers formed
                # rival groups): resolve deterministically and merge
                self._on_rival_coordinator(payload)
            elif payload.view_id >= self.view.view_id and payload.sender in self.view:
                self._last_coord_seen = self.now
                if payload.sender != self.address:
                    # the legitimate coordinator is alive: stand down any
                    # takeover attempt (e.g. after a heal)
                    self._acting_coordinator = False
                if payload.view_id == self.view.view_id:
                    self._ab_known_high = max(self._ab_known_high, payload.high_seq)
                    if (
                        self._ab_known_high > self._ab_next_deliver
                        and not self.has_timer("abgap")
                    ):
                        self.set_timer(self.config.retransmit_interval, "abgap")
        elif isinstance(payload, Evicted):
            self._on_evicted(payload)
        elif isinstance(payload, Suspect):
            self._on_suspect(payload)
        elif isinstance(payload, CBcastMsg):
            self._on_cbcast_msg(payload)
        elif isinstance(payload, CBcastAck):
            entry = self._unacked.get(payload.msg_id)
            if entry is not None:
                entry[1].discard(payload.sender)
                if not entry[1]:
                    del self._unacked[payload.msg_id]
        elif isinstance(payload, AbcastNack):
            self._on_abcast_nack(payload)
        elif isinstance(payload, AbcastReq):
            self._on_abcast_req(payload)
        elif isinstance(payload, AbcastSeq):
            self._on_abcast_seq(payload)
        elif isinstance(payload, GroupReply):
            self._on_group_reply(payload)

    # ------------------------------------------------------------ membership

    def _on_join_req(self, req: JoinReq) -> None:
        if not self.joined:
            return
        assert self.view is not None
        if req.joiner in self.view and self._change is None:
            # Duplicate join (e.g. retransmission raced the NewView): resend
            # the current view so the joiner learns it is already in.
            self.send(req.joiner, NewView(self.view), size=self.config.control_size)
            return
        if self.is_coordinator:
            if req.joiner not in self._queued_joins:
                self._queued_joins.append(req.joiner)
            self._maybe_start_view_change()
        else:
            self.send(self.view.coordinator, req, size=self.config.control_size)

    def _on_leave_req(self, req: LeaveReq) -> None:
        if not self.joined:
            return
        assert self.view is not None
        if self.is_coordinator:
            self._queued_leaves.add(req.leaver)
            self._maybe_start_view_change()
        else:
            self.send(self.view.coordinator, req, size=self.config.control_size)

    def _on_evicted(self, msg: Evicted) -> None:
        """We were removed from the group while unreachable: reset
        membership state and rejoin through the current coordinator."""
        if self.view is None or self._left:
            return
        if msg.group_view_id < self.view.view_id:
            return  # stale
        self.emit("isis.evicted", group=self.group, rejoin_via=str(msg.coordinator))
        self.view = None
        self._acting_coordinator = False
        self._change = None
        self._flushing = False
        self._queued_joins.clear()
        self._queued_leaves.clear()
        self._cb_holdback.clear()
        self._ab_holdback.clear()
        self.cancel_timer("hb")
        self.cancel_timer("flush-timeout")
        self._contacts = [msg.coordinator]
        self._contact_idx = 0
        self._try_join()

    def _on_suspect(self, msg: Suspect) -> None:
        if self.is_coordinator and self.view is not None and msg.suspect in self.view:
            self._queued_leaves.add(msg.suspect)
            self._maybe_start_view_change()

    def _maybe_start_view_change(self) -> None:
        if self._change is not None or not self.is_coordinator or self.view is None:
            return
        joins = [j for j in self._queued_joins if j not in self.view]
        leaves = {l for l in self._queued_leaves if l in self.view}
        if not joins and not leaves:
            self._queued_joins.clear()
            self._queued_leaves.clear()
            return
        if self.config.require_majority:
            survivors = [m for m in self.view.members if m not in leaves]
            if len(survivors) < self.view.majority():
                # minority side of a partition: do NOT install a view — keep
                # the suspicions queued and retry when connectivity returns
                self.emit(
                    "isis.quorum_blocked",
                    group=self.group,
                    survivors=len(survivors),
                    needed=self.view.majority(),
                )
                return
        self._queued_joins.clear()
        self._queued_leaves.clear()
        members = self.view.without(*leaves) + tuple(joins)
        if not members:
            return
        proposed = View(self.view.view_id + 1, members)
        # survivors kept in view order: the Flush fan-out below must follow a
        # deterministic sequence, not hash-randomised set order
        survivors = [
            m for m in self.view.members if m in proposed and m != self.address
        ]
        self._change = _ViewChange(proposed, set(survivors), {})
        self._flushing = True
        for rec in self._replay:
            self._change.replay[rec.msg_id] = rec
        self.emit(
            "isis.flush_start",
            group=self.group,
            proposed=proposed.view_id,
            joins=[str(j) for j in joins],
            leaves=sorted(str(l) for l in leaves),
        )
        if not survivors:
            self._finish_view_change()
            return
        flush = Flush(proposed, proposed.view_id)
        for member in survivors:
            self.send(member, flush, size=self.config.control_size)
        self.set_timer(self.config.flush_timeout, "flush-timeout")

    def _on_flush(self, src: Address, msg: Flush) -> None:
        if self.view is None or msg.proposed.view_id <= self.view.view_id:
            return
        self._flushing = True
        self.send(
            src,
            FlushOk(self.address, msg.change_id, tuple(self._replay)),
            size=self.config.control_size + 64 * len(self._replay),
        )

    def _on_flush_ok(self, msg: FlushOk) -> None:
        change = self._change
        if change is None or msg.change_id != change.proposed.view_id:
            return
        if msg.sender in change.waiting_on:
            change.waiting_on.discard(msg.sender)
            for rec in msg.recent:
                change.replay.setdefault(rec.msg_id, rec)
            if not change.waiting_on:
                self.cancel_timer("flush-timeout")
                self._finish_view_change()

    def _finish_view_change(self) -> None:
        change = self._change
        assert change is not None
        self._change = None
        replay = tuple(change.replay.values())
        old_members = set(self.view.members) if self.view is not None else set()
        joiners = [m for m in change.proposed.members if m not in old_members]
        state = self.get_group_state() if joiners else None
        for member in change.proposed.members:
            if member != self.address:
                self.send(
                    member,
                    NewView(
                        change.proposed,
                        replay,
                        state=(state if member in joiners else None),
                    ),
                    size=self.config.control_size + 64 * len(replay),
                )
        if self.address in change.proposed:
            self._on_new_view(NewView(change.proposed, replay))
        else:
            # Coordinator excluded itself (graceful leave): go quiet.
            self.view = None

    def _on_new_view(self, msg: NewView) -> None:
        if self.view is not None and msg.view.view_id <= self.view.view_id:
            return
        # Deliver replayed multicasts we missed from the old view.
        for rec in msg.replay:
            if rec.msg_id not in self._delivered_ids:
                self._delivered_ids.add(rec.msg_id)
                self._dispatch(rec.sender, rec.kind, rec.payload, ordered=False)
        if msg.state is not None:
            # Isis state transfer: we are joining; adopt the coordinator's
            # snapshot before any view/application callbacks fire
            self.on_state_received(msg.state)
        self._install(msg.view, msg.replay)

    def _install(self, view: View, replay: tuple[ReplayRecord, ...]) -> None:
        old = self.view
        old_members = set(old.members) if old else set()
        joined = [m for m in view.members if m not in old_members]
        left = [m for m in (old.members if old else ()) if m not in view]
        for gone in left:
            self._alumni.setdefault(gone, 0)
        for member in view.members:
            self._alumni.pop(member, None)
        self.view = view
        self._vc = VectorClock()
        self._cb_holdback.clear()
        self._delivered_ids = set()
        self._replay.clear()
        self._ab_next_deliver = 0
        self._ab_holdback.clear()
        self._ab_next_assign = 0
        self._received_ids = set()
        self._unacked.clear()
        self._ab_history.clear()
        resend = [
            (req.kind, req.payload, size) for req, size in self._ab_pending.values()
        ]
        self._ab_pending.clear()
        self._ab_sequenced = set()
        self._ab_known_high = 0
        self.cancel_timer("rtx")
        self.cancel_timer("abgap")
        for kind, payload, size in resend:
            # sends from the superseded view that never got sequenced are
            # re-issued in the new view (after the install completes)
            self._queued_mcasts.append((kind, payload, True))
        self._flushing = False
        self._acting_coordinator = False
        self._change = None
        self._last_coord_seen = self.now
        self._last_seen = {m: self.now for m in view.members}
        self.cancel_timer("join-retry")
        self.set_timer(self.config.hb_interval, "hb")
        self.emit(
            "isis.view",
            group=self.group,
            view_id=view.view_id,
            # lazy: the O(n) member-name list is only built if the log
            # actually stores isis.view records (see EventLog.suppress)
            members=lambda: [str(m) for m in view.members],
            coordinator=str(view.coordinator),
        )
        self.on_view_change(view, joined, left)
        # Re-issue multicasts queued while flushing.
        queued, self._queued_mcasts = self._queued_mcasts, []
        for kind, payload, ordered in queued:
            if ordered:
                self.abcast(kind, payload)
            else:
                self.cbcast(kind, payload)
        # A fresh coordinator may have inherited queued membership work.
        if self.is_coordinator:
            self._maybe_start_view_change()

    # --------------------------------------------------------- failure detect

    def on_timer(self, key: str) -> None:
        if key == "hb":
            self._heartbeat_tick()
        elif key == "rtx":
            self._retransmit_unacked()
        elif key == "abgap":
            self._nack_abcast_gap()
        elif key == "join-retry":
            self._try_join()
        elif key == "flush-timeout":
            self._flush_timed_out()
        elif key.startswith("req:"):
            self._request_timed_out(key[4:])

    def _heartbeat_tick(self) -> None:
        if not self.joined:
            return
        assert self.view is not None
        cfg = self.config
        self._hb_ticks += 1
        if self.is_coordinator:
            beat = CoordBeat(self.address, self.view.view_id, self._ab_next_assign)
            for member in self.view.members:
                if member != self.address:
                    self.send(member, beat, size=cfg.control_size)
            if self._hb_ticks % 4 == 0:
                # probe departed members: if one of them now leads a rival
                # group, the beat triggers merge resolution on its side
                for alumnus in list(self._alumni):
                    self._alumni[alumnus] += 1
                    if self._alumni[alumnus] > 20:
                        del self._alumni[alumnus]  # presumed really gone
                        continue
                    self.send(alumnus, beat, size=cfg.control_size)
            # a list, in _last_seen insertion order (deterministic): the
            # emits below must not follow set-iteration order
            now = self.now
            me = self.address
            dead = [
                m
                for m, seen in self._last_seen.items()
                if m != me and now - seen > cfg.hb_timeout and m in self.view
            ]
            if dead:
                for m in dead:
                    self.emit("isis.failure_detected", group=self.group, failed=str(m))
                self._queued_leaves.update(dead)
                self._maybe_start_view_change()
        else:
            self.send(self.view.coordinator, Heartbeat(self.address, self.view.view_id), size=cfg.control_size)
            rank = self.view.rank(self.address)
            takeover_after = cfg.hb_timeout * (1 + rank)
            if self.now - self._last_coord_seen > takeover_after:
                self._take_over()
        self.set_timer(cfg.hb_interval, "hb")

    def _take_over(self) -> None:
        """Rank-staggered coordinator takeover: every member senior to us has
        stayed silent past its own (shorter) takeover deadline, so presume
        the whole senior prefix dead and lead a view excluding it."""
        assert self.view is not None
        rank = self.view.rank(self.address)
        if self.config.require_majority and len(self.view) - rank < self.view.majority():
            # we cannot see a majority: never seize leadership from a
            # minority side — wait for the partition to heal instead
            self.emit(
                "isis.quorum_blocked",
                group=self.group,
                survivors=len(self.view) - rank,
                needed=self.view.majority(),
            )
            self._last_coord_seen = self.now  # back off; re-check later
            return
        presumed_dead = self.view.members[:rank]
        self.emit(
            "isis.takeover",
            group=self.group,
            new_coordinator=str(self.address),
            presumed_dead=[str(m) for m in presumed_dead],
        )
        self._acting_coordinator = True
        self._queued_leaves.update(presumed_dead)
        self._last_coord_seen = self.now  # don't re-trigger while changing
        self._maybe_start_view_change()

    def _on_rival_coordinator(self, beat: CoordBeat) -> None:
        """Two coordinators lead disjoint groups (concurrent takeovers or a
        healed partition without quorum). Deterministic resolution: the
        higher view id wins; ties go to the lexicographically smaller
        address. The loser dissolves its group, redirecting every member
        (itself included) to rejoin the winner."""
        assert self.view is not None
        i_lose = beat.view_id > self.view.view_id or (
            beat.view_id == self.view.view_id
            and str(beat.sender) < str(self.address)
        )
        if not i_lose:
            # tell the rival about us; it will dissolve on receipt
            self.send(
                beat.sender,
                CoordBeat(self.address, self.view.view_id, self._ab_next_assign),
                size=self.config.control_size,
            )
            return
        self.emit(
            "isis.group_merge",
            group=self.group,
            dissolved_view=self.view.view_id,
            into=str(beat.sender),
        )
        order = Evicted(self.view.view_id, beat.sender)
        for member in self.view.members:
            if member != self.address:
                self.send(member, order, size=self.config.control_size)
        self._on_evicted(order)

    def _flush_timed_out(self) -> None:
        """Survivors that never acknowledged the flush are treated as failed:
        restart the change without them."""
        change = self._change
        if change is None:
            return
        stragglers = set(change.waiting_on)
        self._change = None
        for m in sorted(stragglers, key=str):
            self.emit("isis.flush_straggler", group=self.group, member=str(m))
        self._queued_leaves.update(stragglers)
        # Preserve the joins the aborted proposal carried.
        if self.view is not None:
            for m in change.proposed.members:
                if m not in self.view and m not in self._queued_joins:
                    self._queued_joins.append(m)
        self._maybe_start_view_change()

    def _retransmit_unacked(self) -> None:
        if not self.joined or self.view is None:
            return
        live = self.view.member_set
        members = self.view.members
        for msg_id in list(self._unacked):
            msg, pending, size = self._unacked[msg_id]
            pending &= live  # departed members never need to ack
            if not pending:
                del self._unacked[msg_id]
                continue
            # view-order fan-out, never set order (determinism)
            for member in members:
                if member in pending:
                    self.send(member, msg, size=size)
        for req, size in list(self._ab_pending.values()):
            if self.is_coordinator:
                self._sequence_abcast(req)
            else:
                self.send(self.view.coordinator, req, size=size)
        if self._unacked or self._ab_pending:
            self.set_timer(self.config.retransmit_interval, "rtx")

    def _nack_abcast_gap(self) -> None:
        if not self.joined or self.view is None:
            return
        behind_high = self._ab_known_high > self._ab_next_deliver
        if behind_high or (
            self._ab_holdback and min(self._ab_holdback) > self._ab_next_deliver
        ):
            self.send(
                self.view.coordinator,
                AbcastNack(self._ab_next_deliver, self.address, self.view.view_id),
                size=self.config.control_size,
            )
            # keep probing until the gap closes
            self.set_timer(self.config.retransmit_interval, "abgap")

    def _on_abcast_nack(self, msg: AbcastNack) -> None:
        if self.view is None or msg.view_id != self.view.view_id or not self.is_coordinator:
            return
        for entry in self._ab_history:
            if entry.seq >= msg.from_seq:
                self.send(msg.requester, entry)

    # ------------------------------------------------------------- multicast

    def _on_cbcast_msg(self, msg: CBcastMsg) -> None:
        if self.view is None or msg.view_id != self.view.view_id:
            return  # stale or early; flush replay covers the gap
        # ack every copy (including duplicates: the original ack was lost)
        self.send(msg.sender, CBcastAck(msg.msg_id, self.address),
                  size=self.config.control_size)
        if msg.msg_id in self._delivered_ids or msg.msg_id in self._received_ids:
            return
        self._received_ids.add(msg.msg_id)
        self._cb_holdback.append(msg)
        self._drain_cb_holdback()

    def _drain_cb_holdback(self) -> None:
        progress = True
        while progress:
            progress = False
            for msg in list(self._cb_holdback):
                if self._vc.can_deliver_from(msg.sender, msg.clock):
                    self._cb_holdback.remove(msg)
                    self._vc.increment(msg.sender)
                    self._vc.merge(msg.clock)
                    self._deliver_cbcast(msg)
                    progress = True

    def _deliver_cbcast(self, msg: CBcastMsg) -> None:
        self._delivered_ids.add(msg.msg_id)
        self._replay.append(ReplayRecord(msg.msg_id, msg.sender, msg.kind, msg.payload))
        self._dispatch(msg.sender, msg.kind, msg.payload, ordered=False)

    def _sequence_abcast(self, req: AbcastReq) -> None:
        assert self.view is not None
        if req.msg_id in self._ab_sequenced:
            return  # duplicate request (the sender's ack — its own delivery — was delayed)
        self._ab_sequenced.add(req.msg_id)
        seq = self._ab_next_assign
        self._ab_next_assign += 1
        out = AbcastSeq(seq, req.msg_id, req.sender, self.view.view_id, req.kind, req.payload)
        self._ab_history.append(out)
        for member in self.view.members:
            if member != self.address:
                self.send(member, out)
        self._on_abcast_seq(out)

    def _on_abcast_req(self, req: AbcastReq) -> None:
        if self.view is None or req.view_id != self.view.view_id or not self.is_coordinator:
            return
        self._sequence_abcast(req)

    def _on_abcast_seq(self, msg: AbcastSeq) -> None:
        if self.view is None or msg.view_id != self.view.view_id:
            return
        if msg.seq < self._ab_next_deliver:
            return
        self._ab_holdback[msg.seq] = msg
        if msg.seq > self._ab_next_deliver and not self.has_timer("abgap"):
            # a gap: give the missing copies one retransmit interval to
            # arrive, then NACK the sequencer
            self.set_timer(self.config.retransmit_interval, "abgap")
        while self._ab_next_deliver in self._ab_holdback:
            ready = self._ab_holdback.pop(self._ab_next_deliver)
            self._ab_next_deliver += 1
            self._ab_pending.pop(ready.msg_id, None)  # our send got through
            self._delivered_ids.add(ready.msg_id)
            self._replay.append(
                ReplayRecord(ready.msg_id, ready.sender, ready.kind, ready.payload)
            )
            self._dispatch(ready.sender, ready.kind, ready.payload, ordered=True)

    def _dispatch(self, sender: Address, kind: str, payload: Any, ordered: bool) -> None:
        if kind == "__request__":
            request: GroupRequest = payload

            def reply(value: Any) -> None:
                self.send(
                    request.requester,
                    GroupReply(request.req_id, self.address, value),
                    size=self.config.control_size,
                )

            self.on_group_request(request.requester, request.body, reply)
        elif ordered:
            self.on_abcast(sender, kind, payload)
        else:
            self.on_cbcast(sender, kind, payload)

    # ---------------------------------------------------------- request/reply

    def _on_group_reply(self, msg: GroupReply) -> None:
        pending = self._pending_requests.get(msg.req_id)
        if pending is None or pending.done:
            return
        pending.replies.append((msg.sender, msg.body))
        if len(pending.replies) >= pending.wanted:
            self._finish_request(pending, timed_out=False)

    def _request_timed_out(self, req_id: str) -> None:
        pending = self._pending_requests.get(req_id)
        if pending is not None and not pending.done:
            self._finish_request(pending, timed_out=True)

    def _finish_request(self, pending: _PendingRequest, timed_out: bool) -> None:
        pending.done = True
        self.cancel_timer(f"req:{pending.req_id}")
        del self._pending_requests[pending.req_id]
        pending.on_done(list(pending.replies), timed_out)
