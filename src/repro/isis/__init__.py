"""A from-scratch Isis-style virtual-synchrony toolkit.

The paper's prototype scheduler/dispatcher "has been constructed using the
Isis Distributed Toolkit" and relies on four Isis facilities:

1. **Process groups** with dynamic membership ("machines can enter or leave
   the group at any time").
2. **bcast / reply** primitives with reply collection (the group leader
   broadcasts a request and gathers bids).
3. **Error notification**, used so "the oldest surviving member of the group
   [can] assume the role of group leader in case the group leader fails".
4. Ordered multicast delivery (Isis cbcast/abcast).

This package implements those facilities over the ``repro.netsim`` kernel:

- :class:`View` — a numbered membership snapshot ordered by seniority; the
  coordinator (group leader) is the oldest member.
- :class:`VectorClock` — causal-delivery bookkeeping for CBCAST.
- :class:`IsisMember` — the actor base class giving subclasses ``cbcast``,
  ``abcast``, ``group_request``/``reply`` (Isis bcast-and-collect-replies),
  heartbeat failure detection, and coordinator-driven view changes with a
  flush round that re-multicasts recently delivered messages so that view
  changes approximate view-synchronous delivery.

Simplifications relative to full Isis (documented in DESIGN.md): stability
tracking is replaced by a bounded replay window exchanged during flush, and
concurrent-partition (split-brain) membership is resolved only when the
partition heals — adequate for the crash/recovery experiments the paper's
prototype targets.
"""

from repro.isis.views import View
from repro.isis.vclock import VectorClock
from repro.isis.member import ALL, MAJORITY, IsisConfig, IsisMember

__all__ = ["View", "VectorClock", "IsisMember", "IsisConfig", "ALL", "MAJORITY"]
