"""Vector clocks for causal (CBCAST) delivery.

The clock maps member addresses to counters of *delivered* messages from
each member. A message multicast by ``s`` carries the clock ``s`` held after
incrementing its own entry; a receiver ``r`` may deliver it once

- ``msg.vc[s] == r.vc[s] + 1``  (it is the next message from ``s``), and
- ``msg.vc[k] <= r.vc[k]`` for every ``k != s``  (``r`` has already
  delivered everything the message causally depends on).

This is the standard Birman–Schiper–Stephenson condition used by Isis.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping


class VectorClock:
    """A mutable vector clock over hashable member keys.

    Missing entries are implicitly zero, so membership changes need no
    resizing ceremony.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[Hashable, int] | None = None) -> None:
        self._counts: dict[Hashable, int] = {k: v for k, v in (counts or {}).items() if v}

    def get(self, key: Hashable) -> int:
        return self._counts.get(key, 0)

    def increment(self, key: Hashable) -> None:
        self._counts[key] = self._counts.get(key, 0) + 1

    def merge(self, other: "VectorClock") -> None:
        """Pointwise maximum, in place."""
        for key, value in other._counts.items():
            if value > self._counts.get(key, 0):
                self._counts[key] = value

    def snapshot(self) -> "VectorClock":
        """An independent copy (what a multicast message carries)."""
        return VectorClock(self._counts)

    def can_deliver_from(self, sender: Hashable, msg_clock: "VectorClock") -> bool:
        """The BSS causal-delivery condition (see module docstring)."""
        if msg_clock.get(sender) != self.get(sender) + 1:
            return False
        for key, value in msg_clock._counts.items():
            if key != sender and value > self.get(key):
                return False
        return True

    def keys(self) -> Iterable[Hashable]:
        return self._counts.keys()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._counts == other._counts

    def __le__(self, other: "VectorClock") -> bool:
        """Happened-before-or-equal: every entry <= other's."""
        return all(v <= other.get(k) for k, v in self._counts.items())

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self != other

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not (self <= other) and not (other <= self)

    def __repr__(self) -> str:  # pragma: no cover
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self._counts.items(), key=str))
        return f"VC({inner})"
