"""Group views.

A :class:`View` is an immutable, numbered snapshot of group membership.
Members are ordered by *seniority* (join order): the first element is the
oldest member and acts as coordinator/group leader — exactly the paper's
"first instance of the scheduler/dispatcher program to come on-line assumes
the role of group leader ... the oldest surviving member of the group
assume[s] the role ... in case the group leader fails".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.host import Address


@dataclass(frozen=True, slots=True)
class View:
    """An immutable membership snapshot.

    Attributes:
        view_id: monotonically increasing view number (first view is 1).
        members: addresses ordered oldest-first.

    Membership tests and rank lookups are O(1): views are consulted on every
    heartbeat, multicast, and delivery, and a linear ``tuple.index`` showed
    up as a top cost in large-cluster profiles.
    """

    view_id: int
    members: tuple[Address, ...]
    _member_set: frozenset = field(init=False, repr=False, compare=False)
    _ranks: dict = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_member_set", frozenset(self.members))
        object.__setattr__(
            self, "_ranks", {m: i for i, m in enumerate(self.members)}
        )

    @property
    def coordinator(self) -> Address:
        """The group leader: the oldest member."""
        return self.members[0]

    def rank(self, member: Address) -> int:
        """Seniority rank (0 = coordinator). Raises ValueError if absent."""
        rank = self._ranks.get(member)
        if rank is None:
            raise ValueError(f"{member} is not in view {self.view_id}")
        return rank

    def __contains__(self, member: Address) -> bool:
        return member in self._member_set

    @property
    def member_set(self) -> frozenset:
        """Members as a frozenset, for bulk set algebra (no per-call build)."""
        return self._member_set

    def __len__(self) -> int:
        return len(self.members)

    def without(self, *gone: Address) -> tuple[Address, ...]:
        """Membership tuple with *gone* removed, order preserved."""
        return tuple(m for m in self.members if m not in gone)

    def majority(self) -> int:
        """Smallest count that is a strict majority of this view."""
        return len(self.members) // 2 + 1

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        names = ", ".join(str(m) for m in self.members)
        return f"View#{self.view_id}[{names}]"
