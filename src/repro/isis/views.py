"""Group views.

A :class:`View` is an immutable, numbered snapshot of group membership.
Members are ordered by *seniority* (join order): the first element is the
oldest member and acts as coordinator/group leader — exactly the paper's
"first instance of the scheduler/dispatcher program to come on-line assumes
the role of group leader ... the oldest surviving member of the group
assume[s] the role ... in case the group leader fails".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.host import Address


@dataclass(frozen=True, slots=True)
class View:
    """An immutable membership snapshot.

    Attributes:
        view_id: monotonically increasing view number (first view is 1).
        members: addresses ordered oldest-first.
    """

    view_id: int
    members: tuple[Address, ...]

    @property
    def coordinator(self) -> Address:
        """The group leader: the oldest member."""
        return self.members[0]

    def rank(self, member: Address) -> int:
        """Seniority rank (0 = coordinator). Raises ValueError if absent."""
        return self.members.index(member)

    def __contains__(self, member: Address) -> bool:
        return member in self.members

    def __len__(self) -> int:
        return len(self.members)

    def without(self, *gone: Address) -> tuple[Address, ...]:
        """Membership tuple with *gone* removed, order preserved."""
        return tuple(m for m in self.members if m not in gone)

    def majority(self) -> int:
        """Smallest count that is a strict majority of this view."""
        return len(self.members) // 2 + 1

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        names = ", ".join(str(m) for m in self.members)
        return f"View#{self.view_id}[{names}]"
