"""Process-independent hashing and consistent-hash rings.

Two subsystems partition work by consistent hash and must agree on the
technique (and stay reproducible across interpreter runs, which rules out
the per-process-salted builtin ``hash``):

- the sharded simulation backend assigns hosts to event-heap shards
  (:mod:`repro.netsim.sharded`), and
- hierarchical group leaders assign bid requests to sub-leader cells
  (:mod:`repro.scheduler.hierarchy`).

Both build a :class:`ConsistentHashRing`: each node contributes
``replicas`` virtual points at ``stable_hash(f"{node}#{replica}")`` and a
key maps to the owner of the first ring point clockwise of
``stable_hash(key)``.  Adding or removing one node therefore only moves
the keys that fall in that node's arcs — the stability property the
scale tests pin down.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Sequence

#: virtual nodes per ring member; enough that member counts in the
#: hundreds spread within a few percent of even
RING_REPLICAS = 64


def stable_hash(key: str) -> int:
    """Process-independent 64-bit hash (``hash()`` is salted per process,
    which would make ring assignment irreproducible)."""
    return int.from_bytes(hashlib.md5(key.encode()).digest()[:8], "big")


class ConsistentHashRing:
    """A consistent-hash ring over named nodes.

    Args:
        nodes: ring member names (order-insensitive; duplicate names
            collapse to one member).
        replicas: virtual points per member.
    """

    def __init__(self, nodes: Sequence[str], replicas: int = RING_REPLICAS) -> None:
        if not nodes:
            raise ValueError("a consistent-hash ring needs at least one node")
        points = sorted(
            (stable_hash(f"{node}#{replica}"), node)
            for node in dict.fromkeys(nodes)
            for replica in range(replicas)
        )
        self._keys = [point for point, _ in points]
        self._nodes = [node for _, node in points]

    def lookup(self, key: str) -> str:
        """The node owning *key* (first ring point clockwise of its hash)."""
        i = bisect.bisect(self._keys, stable_hash(key)) % len(self._keys)
        return self._nodes[i]
