"""Shared utilities for the VCE reproduction.

This package holds the small, dependency-free building blocks used by every
other subsystems: the exception hierarchy, deterministic id generation,
seeded random-number streams, and the structured event log that all
simulated components write to (and that the metrics layer reads from).
"""

from repro.util.errors import (
    VCEError,
    ConfigurationError,
    AllocationError,
    CompilationError,
    MigrationError,
    CommunicationError,
    ScriptError,
    TaskGraphError,
    MembershipError,
    SimulationError,
)
from repro.util.ids import IdGenerator, fresh_id
from repro.util.rng import RngStreams
from repro.util.eventlog import EventLog, LogRecord

__all__ = [
    "VCEError",
    "ConfigurationError",
    "AllocationError",
    "CompilationError",
    "MigrationError",
    "CommunicationError",
    "ScriptError",
    "TaskGraphError",
    "MembershipError",
    "SimulationError",
    "IdGenerator",
    "fresh_id",
    "RngStreams",
    "EventLog",
    "LogRecord",
]
