"""Seeded random-number streams.

Every source of randomness in a simulation draws from a named substream of a
single root seed, so that (a) runs are exactly reproducible and (b) changing
how one subsystem consumes randomness does not perturb the draws seen by any
other subsystem. This is the standard "common random numbers" discipline for
discrete-event simulation experiments: comparing two scheduler policies under
the same root seed exposes both to identical background-load traces and
network jitter.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """A factory of independent, deterministic ``random.Random`` streams.

    Substreams are derived by hashing ``(root_seed, name)``; requesting the
    same name twice returns the same stream object.

    >>> streams = RngStreams(42)
    >>> a = streams.stream("network.jitter")
    >>> b = streams.stream("load.host-3")
    >>> a is streams.stream("network.jitter")
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, random.Random] = {}

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.root_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the substream called *name*."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive_seed(name))
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child factory whose substreams are independent of the
        parent's (used when a component internally needs many streams)."""
        return RngStreams(self._derive_seed(f"spawn:{name}"))
