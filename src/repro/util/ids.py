"""Deterministic identifier generation.

The simulator must be fully reproducible, so ids are sequential per prefix
rather than random. A module-level generator is provided for convenience;
components that need isolated id spaces create their own
:class:`IdGenerator`.
"""

from __future__ import annotations

import itertools
from collections import defaultdict


class IdGenerator:
    """Produces ids of the form ``"<prefix>-<n>"`` with a per-prefix counter.

    >>> gen = IdGenerator()
    >>> gen.next("task")
    'task-0'
    >>> gen.next("task")
    'task-1'
    >>> gen.next("chan")
    'chan-0'
    """

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = defaultdict(itertools.count)

    def next(self, prefix: str) -> str:
        return f"{prefix}-{next(self._counters[prefix])}"

    def next_int(self, prefix: str) -> int:
        """Like :meth:`next` but returns the bare integer counter value."""
        return next(self._counters[prefix])

    def reset(self) -> None:
        """Forget all counters (used between independent simulations)."""
        self._counters.clear()


_GLOBAL = IdGenerator()


def fresh_id(prefix: str) -> str:
    """Draw from the process-global id space.

    Only suitable for objects whose identity never feeds back into simulated
    behaviour (log records, exception tags); simulation components must use a
    per-simulation :class:`IdGenerator` for reproducibility.
    """
    return _GLOBAL.next(prefix)
